//! Run-archive acceptance: seal → unseal → load must re-export
//! byte-identically to the live `sor export` artifacts, at one worker
//! and at eight, and the byte codecs underneath must round-trip
//! arbitrary registries, rings, and sketches exactly.

use proptest::prelude::*;
use sor_durable::{seal, unseal, ArtifactError};
use sor_obs::query::causal_tree;
use sor_obs::sample::{sample_trace, SamplePolicy};
use sor_obs::{MetricsRegistry, Recorder, RunArchive, SpaceSaving, WindowRing};
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

/// The live export artifacts exactly as `sor export` derives them, plus
/// the sealed archive of the same run.
struct LiveRun {
    trace_json: String,
    metrics_json: String,
    windows_json: String,
    health_txt: String,
    tree: String,
    sealed: Vec<u8>,
}

/// `set_threads` is process-global; tests that touch it must not
/// interleave or `meta.threads` would record a racing override.
static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn run_once(threads: usize) -> LiveRun {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sor_par::set_threads(threads);
    let rec = Recorder::enabled();
    let cfg = FieldTestConfig::quick(3);
    let out = run_coffee_field_test_traced(cfg, rec.clone()).expect("field test");
    // Rebuild the live export by hand — independently of the archive
    // hook — so the byte-identity below compares two separate paths.
    let raw = rec.trace_snapshot().expect("trace");
    let (sampled, stats) = sample_trace(&raw, &SamplePolicy::from_env(cfg.seed));
    let mut metrics = rec.metrics_snapshot().expect("metrics");
    stats.record_into(&mut metrics);
    let (archive, _) =
        out.archive(&rec, &cfg, "coffee_field_test", "test-sha").expect("archive hook");
    sor_par::set_threads(0);
    LiveRun {
        trace_json: sampled.to_json(),
        metrics_json: metrics.to_json(),
        windows_json: out.windows.as_ref().map(WindowRing::summary_json).unwrap_or_default(),
        health_txt: out.health.as_ref().map(|h| h.render()).unwrap_or_default(),
        tree: sampled.render_tree(),
        sealed: seal(&archive.to_bytes()),
    }
}

#[test]
fn archived_run_reexports_byte_identically_at_one_and_eight_workers() {
    let mut reexports = Vec::new();
    for threads in [1usize, 8] {
        let live = run_once(threads);
        let payload = unseal(&live.sealed).expect("seal roundtrip");
        let back = RunArchive::from_bytes(payload).expect("archive parses");
        assert_eq!(
            back.trace.to_json(),
            live.trace_json,
            "trace re-export differs at {threads} workers"
        );
        assert_eq!(
            back.metrics.to_json(),
            live.metrics_json,
            "metrics re-export differs at {threads} workers"
        );
        assert_eq!(
            back.windows.as_ref().map(WindowRing::summary_json).unwrap_or_default(),
            live.windows_json,
            "window summary differs at {threads} workers"
        );
        assert_eq!(
            back.health.as_ref().map(|h| h.render()).unwrap_or_default(),
            live.health_txt,
            "health report differs at {threads} workers"
        );
        // The archived causal tree reconstructs the live renderer
        // byte-for-byte, and provenance recorded the worker count.
        assert_eq!(causal_tree(&back.trace, None), live.tree);
        assert_eq!(back.meta.threads, threads as u32);
        assert_eq!(back.meta.scenario, "coffee_field_test");
        assert_eq!(back.meta.seed, 3);
        // Serialization is a fixed point: re-encoding changes nothing.
        assert_eq!(seal(&back.to_bytes()), live.sealed);
        reexports.push((live.trace_json, live.metrics_json));
    }
    // The run itself is worker-count invariant (the golden-trace
    // contract), so the archives agree across 1 and 8 workers too.
    assert_eq!(reexports[0], reexports[1], "archive content depends on worker count");
}

#[test]
fn tampered_seals_never_parse() {
    let live = run_once(1);
    let mut torn = live.sealed.clone();
    torn.truncate(torn.len() - 3);
    assert!(matches!(unseal(&torn), Err(ArtifactError::Frame(_))));
    let mut flipped = live.sealed.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert!(
        unseal(&flipped).is_err() || RunArchive::from_bytes(unseal(&flipped).unwrap()).is_none(),
        "bit flip at byte {mid} survived both the CRC and the parser"
    );
}

fn registry_strategy() -> impl Strategy<Value = MetricsRegistry> {
    (
        proptest::collection::vec(("[a-z]{1,6}\\.[a-z_]{1,10}", 0u64..1000), 0..8),
        proptest::collection::vec(("[a-z]{1,6}\\.[a-z_]{1,10}", -1e9f64..1e9), 0..8),
        proptest::collection::vec(
            ("[a-z]{1,6}\\.[a-z_]{1,10}", proptest::collection::vec(-1e6f64..1e6, 1..16)),
            0..4,
        ),
    )
        .prop_map(|(counters, gauges, observations)| {
            let mut m = MetricsRegistry::new();
            for (name, n) in counters {
                m.count(&name, n);
            }
            for (name, v) in gauges {
                m.gauge(&name, v);
            }
            for (name, vs) in observations {
                for v in vs {
                    m.observe(&name, v);
                }
            }
            m
        })
}

proptest! {
    /// Registry bytes round-trip exactly: equality, JSON export, and
    /// CSV export all survive.
    #[test]
    fn registry_bytes_roundtrip(m in registry_strategy()) {
        let back = MetricsRegistry::from_bytes(&m.to_bytes()).expect("roundtrip");
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(back.to_json(), m.to_json());
        prop_assert_eq!(back.to_csv(), m.to_csv());
    }

    /// Window rings round-trip through bytes with every closed window,
    /// eviction counter, and roll cursor intact — a restored ring keeps
    /// rolling identically to the original.
    #[test]
    fn window_ring_bytes_roundtrip(
        m in registry_strategy(),
        capacity in 1usize..6,
        rolls in 1usize..10,
    ) {
        let mut ring = WindowRing::new(capacity);
        let mut live = m;
        for i in 0..rolls {
            live.count("tick.rolls_done", 1);
            ring.roll(i as f64 * 30.0, &live);
        }
        let back = WindowRing::from_bytes(&ring.to_bytes()).expect("roundtrip");
        prop_assert_eq!(back.summary_json(), ring.summary_json());
        prop_assert_eq!(back.evicted(), ring.evicted());
        let mut a = ring;
        let mut b = back;
        live.count("tick.rolls_done", 1);
        a.roll(1e6, &live);
        b.roll(1e6, &live);
        prop_assert_eq!(a.summary_json(), b.summary_json());
    }

    /// Top-k sketches round-trip with slot order preserved, so restored
    /// sketches evict identically under further offers.
    #[test]
    fn topk_bytes_roundtrip(
        offers in proptest::collection::vec(("[a-z]{1,4}", 1u64..100), 0..32),
        k in 1usize..6,
    ) {
        let mut s = SpaceSaving::new(k);
        for (key, w) in &offers {
            s.offer(key, *w);
        }
        let back = SpaceSaving::from_bytes(&s.to_bytes()).expect("roundtrip");
        prop_assert_eq!(&back, &s);
        let mut a = s;
        let mut b = back;
        a.offer("zz", 1);
        b.offer("zz", 1);
        prop_assert_eq!(a.render("t"), b.render("t"));
    }
}
