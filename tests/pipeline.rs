//! Cross-crate integration: the full SOR pipeline from barcode scan to
//! ranking, through the real codec, script interpreter, sensor stack,
//! store, scheduler and ranker.

use std::sync::Arc;

use sor::frontend::MobileFrontend;
use sor::proto::Message;
use sor::sensors::environment::presets;
use sor::sensors::{SensorKind, SensorManager, SimulatedProvider};
use sor::server::{ApplicationSpec, SensingServer};
use sor::sim::scenario::{coffee_features, COFFEE_SCRIPT};
use sor::sim::{SorWorld, Transport, TransportConfig};

fn shop_app(app_id: u64, name: &str, lat: f64, lon: f64) -> ApplicationSpec {
    ApplicationSpec {
        app_id,
        name: name.into(),
        creator: "it".into(),
        category: "coffee-shop".into(),
        latitude: lat,
        longitude: lon,
        radius_m: 300.0,
        script: COFFEE_SCRIPT.into(),
        period_seconds: 1800.0,
        instants: 180,
        features: coffee_features(),
    }
}

fn build_world(transport: Transport) -> SorWorld {
    let mut server = SensingServer::new().unwrap();
    let shops = presets::coffee_shops(5);
    for (i, shop) in shops.iter().enumerate() {
        use sor::sensors::Environment;
        let (lat, lon) = shop.location();
        server.register_application(shop_app(i as u64 + 1, shop.name(), lat, lon)).unwrap();
    }
    let mut world = SorWorld::new(server, transport);
    for (i, shop) in shops.into_iter().enumerate() {
        let env = Arc::new(shop);
        for p in 0..3u64 {
            let mut mgr = SensorManager::new();
            for kind in [
                SensorKind::Temperature,
                SensorKind::Light,
                SensorKind::Microphone,
                SensorKind::WifiRssi,
                SensorKind::Gps,
            ] {
                mgr.register(SimulatedProvider::new(kind, env.clone()));
            }
            let idx = world.add_phone(MobileFrontend::new((i as u64 + 1) * 100 + p, mgr));
            world.schedule_scan(p as f64 * 120.0, idx, i as u64 + 1, 10, 1500.0);
            world.schedule_sweeps(idx, 1.0, 15.0, 1800.0);
        }
    }
    world
}

#[test]
fn full_pipeline_scan_to_ranking() {
    let mut world = build_world(Transport::perfect());
    world.run_until(1900.0);
    world.server.process_data().unwrap();

    assert!(world.stats.uploads_accepted > 0);
    assert_eq!(world.stats.decode_failures, 0);
    assert_eq!(world.stats.server_rejections, 0);

    // Every shop has every feature.
    for app_id in 1..=3u64 {
        for f in ["temperature", "brightness", "noise", "wifi"] {
            assert!(
                world.server.feature_value(app_id, f).unwrap().is_some(),
                "missing {f} for app {app_id}"
            );
        }
    }

    // Ranking works and differs by preference.
    use sor::core::ranking::Preference;
    use sor::core::UserPreferences;
    let warm = UserPreferences::new(
        "warm",
        vec![
            Preference::value(75.0, 5),
            Preference::largest(0),
            Preference::largest(0),
            Preference::largest(0),
        ],
    );
    let bright = UserPreferences::new(
        "bright",
        vec![
            Preference::value(75.0, 0),
            Preference::largest(5),
            Preference::largest(0),
            Preference::largest(0),
        ],
    );
    let rw = world.server.rank("coffee-shop", &warm).unwrap();
    let rb = world.server.rank("coffee-shop", &bright).unwrap();
    assert_eq!(rw.order[0], "Starbucks", "warmest shop: {:?}", rw.order);
    assert_eq!(rb.order[0], "Tim Hortons", "brightest shop: {:?}", rb.order);
}

#[test]
fn pipeline_survives_lossy_network() {
    let mut world = build_world(Transport::new(TransportConfig {
        loss_rate: 0.25,
        corruption_rate: 0.05,
        seed: 11,
        ..Default::default()
    }));
    world.run_until(1900.0);
    world.server.process_data().unwrap();
    // Corruption must be detected, never ingested silently.
    assert!(world.stats.decode_failures > 0);
    assert!(world.stats.uploads_accepted > 0);
    // With three phones per shop something still gets through for the
    // robust mean features.
    assert!(world.server.feature_value(1, "temperature").unwrap().is_some());
}

#[test]
fn schedule_times_respect_budget_and_stay() {
    let mut world = build_world(Transport::perfect());
    world.run_until(1900.0);
    // Phones never execute more sense times than their budget.
    for phone in &world.phones {
        for task in phone.tasks() {
            assert!(
                task.sense_times.len() <= 10,
                "schedule exceeds budget: {} times",
                task.sense_times.len()
            );
        }
    }
}

#[test]
fn wire_roundtrip_preserves_upload_payloads() {
    // End-to-end check that record payloads survive phone→server.
    let env = Arc::new(presets::starbucks(9));
    let mut mgr = SensorManager::new();
    mgr.register(SimulatedProvider::new(SensorKind::Microphone, env));
    let mut phone = MobileFrontend::new(50, mgr);
    phone.handle_message(&Message::ScheduleAssignment {
        task_id: 1,
        script: "get_noise_readings(4)".into(),
        sense_times: vec![5.0],
    });
    let out = phone.advance_to(10.0);
    let Message::SensedDataUpload { records, .. } = &out[0] else { panic!("{out:?}") };
    let original = records.clone();
    // Encode/decode across the "network".
    let frame = out[0].encode();
    let Message::SensedDataUpload { records: decoded, .. } = Message::decode(&frame).unwrap()
    else {
        panic!()
    };
    assert_eq!(original, decoded);
    assert_eq!(decoded[0].values.len(), 4);
}
