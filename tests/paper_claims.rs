//! The paper's headline claims, asserted against this implementation:
//!
//! 1. Table I — trail rankings for Alice / Bob / Chris.
//! 2. Table II — coffee-shop rankings for David / Emma.
//! 3. Fig. 14 — the greedy scheduler beats the every-10s baseline by a
//!    large margin (paper: 65% on average) with lower variance.
//! 4. §III — greedy is a 1/2-approximation (validated on brute-forceable
//!    instances elsewhere; here: monotone in users and budget).
//! 5. §IV-B — the footrule-optimal ranking 2-approximates Kemeny.

use sor::sim::scenario::{
    alice, bob, chris, david, emma, run_coffee_field_test, run_scheduling_sim,
    run_trail_field_test, FieldTestConfig, SchedulingConfig,
};

#[test]
fn table_one_hiking_trail_rankings() {
    let out = run_trail_field_test(FieldTestConfig::trails()).unwrap();
    let cases = [
        (alice(), ["Cliff Trail", "Long Trail", "Green Lake Trail"]),
        (bob(), ["Long Trail", "Cliff Trail", "Green Lake Trail"]),
        (chris(), ["Green Lake Trail", "Long Trail", "Cliff Trail"]),
    ];
    for (prefs, expected) in cases {
        let ranking = out.server.rank("hiking-trail", &prefs).unwrap();
        assert_eq!(
            ranking.order,
            expected.to_vec(),
            "Table I mismatch for {} (gamma: {:?})",
            prefs.name,
            ranking.outcome.gamma
        );
    }
}

#[test]
fn table_two_coffee_shop_rankings() {
    let out = run_coffee_field_test(FieldTestConfig::coffee()).unwrap();
    let cases = [
        (david(), ["Starbucks", "B&N Cafe", "Tim Hortons"]),
        (emma(), ["B&N Cafe", "Tim Hortons", "Starbucks"]),
    ];
    for (prefs, expected) in cases {
        let ranking = out.server.rank("coffee-shop", &prefs).unwrap();
        assert_eq!(
            ranking.order,
            expected.to_vec(),
            "Table II mismatch for {} (matrix: {:?})",
            prefs.name,
            ranking.matrix
        );
    }
}

#[test]
fn fig14_greedy_beats_baseline_substantially() {
    // The paper's mid-range point: 30 users, budget 17.
    let out =
        run_scheduling_sim(SchedulingConfig { runs: 5, ..SchedulingConfig::paper(30, 17, 7) });
    let improvement = out.improvement();
    assert!(
        improvement > 0.35,
        "expected a large greedy advantage, got {:.0}% (greedy {:.3}, baseline {:.3})",
        improvement * 100.0,
        out.greedy_mean,
        out.baseline_mean
    );
    // Stability claim: the greedy's coverage profile is far more even
    // across the period than the baseline's clustered one.
    assert!(
        out.greedy_instant_var < out.baseline_instant_var,
        "greedy instant variance {} vs baseline {}",
        out.greedy_instant_var,
        out.baseline_instant_var
    );
}

#[test]
fn fig14_coverage_saturates_with_many_users() {
    // "when 55 users participate in sensing, our algorithm leads to
    // almost 100% coverage".
    let out =
        run_scheduling_sim(SchedulingConfig { runs: 3, ..SchedulingConfig::paper(55, 17, 3) });
    assert!(out.greedy_mean > 0.9, "greedy coverage {:.3}", out.greedy_mean);
}

#[test]
fn footrule_aggregation_two_approximates_kemeny_on_field_data() {
    use sor::core::ranking::{aggregate, individual_rankings, weighted_kemeny, AggregationMethod};
    let out = run_coffee_field_test(FieldTestConfig::quick(13)).unwrap();
    for prefs in [david(), emma()] {
        let gamma = sor::core::ranking::distance_matrix(&out.matrix, &prefs).unwrap();
        let rankings = individual_rankings(&gamma);
        let weights = prefs.weights();
        let foot = aggregate(&rankings, &weights, AggregationMethod::FootruleFlow).unwrap();
        let exact = aggregate(&rankings, &weights, AggregationMethod::KemenyExact).unwrap();
        let foot_cost = weighted_kemeny(&foot, &rankings, &weights);
        let best_cost = weighted_kemeny(&exact, &rankings, &weights);
        assert!(
            foot_cost <= 2.0 * best_cost + 1e-9,
            "{}: footrule κ_K {} > 2 × {}",
            prefs.name,
            foot_cost,
            best_cost
        );
    }
}

#[test]
fn rankings_are_personal_not_global() {
    // Same sensed data, different users, different orders — the core
    // §IV claim.
    let out = run_coffee_field_test(FieldTestConfig::quick(21)).unwrap();
    let d = out.server.rank("coffee-shop", &david()).unwrap();
    let e = out.server.rank("coffee-shop", &emma()).unwrap();
    assert_ne!(d.order, e.order);
}
