//! The script admission pipeline end to end: the server's static
//! verification at task admission, the phone's independent
//! re-verification before execution, and the agreement between the
//! two capability vocabularies.

use std::sync::Arc;

use sor::frontend::{MobileFrontend, TaskStatus};
use sor::proto::Message;
use sor::script::analysis::{analyze, CapabilitySet, Severity};
use sor::sensors::environment::presets;
use sor::sensors::{SensorKind, SensorManager, SimulatedProvider};
use sor::server::feature::{Extractor, FeatureSpec};
use sor::server::{ApplicationSpec, SensingServer, ServerError};

fn app_with_script(app_id: u64, script: &str) -> ApplicationSpec {
    ApplicationSpec {
        app_id,
        name: format!("app-{app_id}"),
        creator: "owner".into(),
        category: "coffee-shop".into(),
        latitude: 43.05,
        longitude: -76.15,
        radius_m: 150.0,
        script: script.into(),
        period_seconds: 3600.0,
        instants: 360,
        features: vec![FeatureSpec::new(
            "temperature",
            "°F",
            Extractor::Mean { sensor: SensorKind::Temperature.wire_id() },
            60.0,
        )],
    }
}

fn join_request(token: u64, app_id: u64) -> Message {
    Message::ParticipationRequest {
        token,
        app_id,
        latitude: 43.0501,
        longitude: -76.1501,
        budget: 3,
        stay_seconds: 1800.0,
    }
}

fn phone(token: u64) -> MobileFrontend {
    let env = Arc::new(presets::bn_cafe(3));
    let mut mgr = SensorManager::new();
    for kind in [SensorKind::Temperature, SensorKind::Light, SensorKind::Gps] {
        mgr.register(SimulatedProvider::new(kind, env.clone()));
    }
    MobileFrontend::new(token, mgr)
}

#[test]
fn server_rejects_forbidden_script_before_scheduling() {
    let mut server = SensingServer::new().unwrap();
    server
        .register_application(app_with_script(1, "get_light_readings(2)\nsteal_contacts()"))
        .unwrap();

    let err = server.handle_message(&join_request(7, 1)).unwrap_err();
    let ServerError::ScriptRejected { app_id, report } = &err else {
        panic!("expected ScriptRejected, got {err:?}")
    };
    assert_eq!(*app_id, 1);
    assert!(report.contains("non-whitelisted"), "{report}");
    assert!(report.contains("steal_contacts"), "{report}");
    assert!(report.contains("E003"), "{report}");

    // Rejection happened before any admission side effect: no task
    // slot, no stored schedule, nothing to distribute.
    assert!(server.participation().task(0).is_none());
    assert!(server.stored_schedule(0).unwrap().is_empty());
}

#[test]
fn server_rejects_unparseable_and_undefined_scripts() {
    for (id, script) in [(1u64, "local = broken ("), (2, "return never_defined + 1")] {
        let mut server = SensingServer::new().unwrap();
        server.register_application(app_with_script(id, script)).unwrap();
        let err = server.handle_message(&join_request(7, id)).unwrap_err();
        assert!(
            matches!(err, ServerError::ScriptRejected { .. }),
            "script {script:?} should be rejected, got {err:?}"
        );
    }
}

#[test]
fn clean_script_flows_from_admission_to_upload() {
    let mut server = SensingServer::new().unwrap();
    let script = "return mean(get_temperature_readings(3))";
    server.register_application(app_with_script(1, script)).unwrap();

    let replies = server.handle_message(&join_request(7, 1)).unwrap();
    assert_eq!(replies.len(), 1, "admitted and scheduled: {replies:?}");
    let (token, assignment) = &replies[0];
    assert_eq!(*token, 7);

    // The phone re-verifies, then executes and uploads.
    let mut p = phone(7);
    p.handle_message(assignment);
    let out = p.advance_to(3600.0);
    assert!(out.iter().any(|m| matches!(m, Message::SensedDataUpload { .. })), "{out:?}");
    assert!(matches!(out.last(), Some(Message::TaskComplete { status: 0, .. })));
}

#[test]
fn phone_reverifies_even_when_server_is_bypassed() {
    // A compromised or out-of-date server could ship anything; the
    // phone's own pre-execution pass still refuses to run it.
    let mut p = phone(7);
    p.handle_message(&Message::ScheduleAssignment {
        task_id: 9,
        script: "steal_contacts()".into(),
        sense_times: vec![1.0],
    });
    let out = p.advance_to(2.0);
    assert!(matches!(out[0], Message::TaskComplete { task_id: 9, status: 1 }));
    let TaskStatus::Error(msg) = &p.task(9).unwrap().status else { panic!() };
    assert!(msg.contains("non-whitelisted"), "{msg}");
    assert!(
        !out.iter().any(|m| matches!(m, Message::SensedDataUpload { .. })),
        "no sensing effort on a rejected script: {out:?}"
    );
}

#[test]
fn admission_verdict_reports_structured_positions() {
    let caps = CapabilitySet::standard_sensing();
    let report = analyze("local x = 1\nsteal_contacts()", &caps);
    assert!(report.has_errors());
    let err = report.errors().next().unwrap();
    assert_eq!(err.severity, Severity::Error);
    assert_eq!((err.pos.line, err.pos.col), (2, 15), "call sites anchor at the paren");
    assert_eq!(err.code.as_str(), "E003");
}
