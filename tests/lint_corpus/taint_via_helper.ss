-- Raw high-sensitivity data laundered through a pass-through helper
-- is still raw; the diagnostic traces the path through `passthru`.
local function passthru(x)
    return x
end
local noise = get_noise_readings(32)
return passthru(noise)
