-- The histogram builtin is a declared aggregator: bucket counts leave
-- the phone, raw waveforms do not.
local noise = get_noise_readings(64)
return histogram(noise, 8)
