-- A loop whose trip count is only visible through the interval
-- domain: `n` is a local constant, not a literal in the `for` header.
-- Before the dataflow pass this was W402 (statically unbounded).
local n = 16
local sum = 0
for i = 1, n do
    sum = sum + i
end
return sum
