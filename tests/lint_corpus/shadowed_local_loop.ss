local n = 100
if clock() > 0 then local n = 1
n = n + 1
else local n = 1
n = n + 2
end
for i = 1, n do print(i) end
return n
