-- Raw wifi scans are medium sensitivity: a warning, not a rejection.
local scans = get_wifi_readings(4)
return scans
