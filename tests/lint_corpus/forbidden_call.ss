-- Not on the capability whitelist: E003.
return steal_contacts()
