-- The initialiser is overwritten on every path before any read: W204.
local reading = 0
reading = mean(get_light_readings(4))
return reading
