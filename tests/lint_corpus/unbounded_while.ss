-- Data-dependent loop: no static trip count exists, so the cost pass
-- must keep its W402 verdict.
local level = mean(get_light_readings(1))
while level > 10 do
    level = mean(get_light_readings(1))
end
return level
