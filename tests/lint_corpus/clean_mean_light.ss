-- Aggregated low-sensitivity sensing: nothing to report.
local samples = get_light_readings(16)
return mean(samples)
