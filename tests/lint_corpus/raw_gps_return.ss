-- Returning raw GPS fixes uploads a location trace: E004.
local track = get_gps_readings(8)
return track
