-- `totl` is a typo for `total`: E002.
local total = 5
return totl
