-- The same acquisition as raw_gps_return.ss, but aggregated before
-- the sink: admitted.
local track = get_gps_readings(8)
return mean(track)
