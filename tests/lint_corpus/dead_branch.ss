-- The condition folds to false, so the arm can never run: W203.
local x = 1
if 1 > 2 then
    x = 10
end
return x
