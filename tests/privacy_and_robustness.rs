//! Privacy and robustness behaviours of the full system.

use std::sync::Arc;

use sor::frontend::MobileFrontend;
use sor::proto::Message;
use sor::sensors::environment::presets;
use sor::sensors::{Environment, SensorKind, SensorManager, SimulatedProvider};
use sor::server::{ApplicationSpec, SensingServer, ServerError};
use sor::sim::scenario::{coffee_features, trail_features, COFFEE_SCRIPT, TRAIL_SCRIPT};

fn coffee_manager(env: &Arc<sor::sensors::environment::place::PlaceEnvironment>) -> SensorManager {
    let mut mgr = SensorManager::new();
    for kind in [
        SensorKind::Temperature,
        SensorKind::Light,
        SensorKind::Microphone,
        SensorKind::WifiRssi,
        SensorKind::Gps,
    ] {
        mgr.register(SimulatedProvider::new(kind, env.clone() as Arc<dyn Environment>));
    }
    mgr
}

fn cafe_server(env: &Arc<sor::sensors::environment::place::PlaceEnvironment>) -> SensingServer {
    let mut server = SensingServer::new().unwrap();
    let (lat, lon) = env.location();
    server
        .register_application(ApplicationSpec {
            app_id: 1,
            name: env.name().to_string(),
            creator: "t".into(),
            category: "coffee-shop".into(),
            latitude: lat,
            longitude: lon,
            radius_m: 200.0,
            script: COFFEE_SCRIPT.into(),
            period_seconds: 1200.0,
            instants: 120,
            features: coffee_features(),
        })
        .unwrap();
    server
}

#[test]
fn gps_veto_blocks_participation() {
    // A user who refuses to share location cannot be verified as
    // actually being at the place — the Participation Manager must
    // refuse them (§II-B's truthfulness check).
    let env = Arc::new(presets::bn_cafe(31));
    let mut server = cafe_server(&env);
    let mut phone = MobileFrontend::new(1, coffee_manager(&env));
    phone.preferences_mut().disallow(SensorKind::Gps);
    let scan = phone.scan_barcode(1, 5, 600.0);
    let err = server.handle_message(&scan).unwrap_err();
    assert!(matches!(err, ServerError::LocationMismatch { .. }), "{err:?}");
}

#[test]
fn gps_veto_still_allows_non_location_sensing() {
    // Once admitted (e.g. scanned before changing preferences), a
    // GPS-vetoing phone still contributes every other sensor; the GPS
    // records simply never appear.
    let env = Arc::new(presets::bn_cafe(32));
    let mut server = cafe_server(&env);
    let mut phone = MobileFrontend::new(1, coffee_manager(&env));
    let scan = phone.scan_barcode(1, 5, 1200.0);
    let replies = server.handle_message(&scan).unwrap();
    phone.preferences_mut().disallow(SensorKind::Gps);
    for (_, m) in &replies {
        phone.handle_message(m);
    }
    let out = phone.advance_to(1200.0);
    let mut saw_upload = false;
    for m in &out {
        if let Message::SensedDataUpload { records, .. } = m {
            saw_upload = true;
            assert!(records.iter().all(|r| r.sensor != SensorKind::Gps.wire_id()));
            server.tick(1200.0);
            server.handle_message(m).unwrap();
        }
    }
    assert!(saw_upload);
    server.process_data().unwrap();
    assert!(server.feature_value(1, "temperature").unwrap().is_some());
}

#[test]
fn early_departure_cancels_future_sensing() {
    let env = Arc::new(presets::starbucks(33));
    let mut server = cafe_server(&env);
    let phone = MobileFrontend::new(2, coffee_manager(&env));
    let scan = phone.scan_barcode(1, 10, 300.0); // stays 5 minutes only
    let replies = server.handle_message(&scan).unwrap();
    let (_, Message::ScheduleAssignment { sense_times, .. }) = &replies[0] else { panic!() };
    // All scheduled readings are inside the declared stay.
    for &t in sense_times {
        assert!(t <= 300.0 + 1e-9, "reading at {t} after departure");
    }
    // After the stay, the participation manager finishes the task.
    server.tick(400.0);
    assert!(matches!(
        server.participation().task(0).unwrap().status,
        sor::server::ParticipantStatus::Finished
    ));
}

#[test]
fn one_server_hosts_multiple_categories() {
    // §IV-A: "SOR can certainly deal with multiple categories by using
    // multiple such matrices."
    let mut server = SensingServer::new().unwrap();
    let shop = presets::bn_cafe(41);
    let trail = presets::green_lake_trail(42);
    let (slat, slon) = shop.location();
    let (tlat, tlon) = trail.location();
    server
        .register_application(ApplicationSpec {
            app_id: 1,
            name: shop.name().to_string(),
            creator: "t".into(),
            category: "coffee-shop".into(),
            latitude: slat,
            longitude: slon,
            radius_m: 200.0,
            script: COFFEE_SCRIPT.into(),
            period_seconds: 600.0,
            instants: 60,
            features: coffee_features(),
        })
        .unwrap();
    server
        .register_application(ApplicationSpec {
            app_id: 2,
            name: trail.name().to_string(),
            creator: "t".into(),
            category: "hiking-trail".into(),
            latitude: tlat,
            longitude: tlon,
            radius_m: 5000.0,
            script: TRAIL_SCRIPT.into(),
            period_seconds: 600.0,
            instants: 60,
            features: trail_features(),
        })
        .unwrap();
    assert_eq!(server.applications().by_category("coffee-shop").len(), 1);
    assert_eq!(server.applications().by_category("hiking-trail").len(), 1);
    // Category isolation: ranking an unknown category errors, known
    // categories do not leak each other's apps.
    let prefs = sor::core::UserPreferences::new("x", vec![]);
    assert!(server.rank("museum", &prefs).is_err());
}

#[test]
fn wakeup_roundtrip_reestablishes_contact() {
    // The Google-Cloud-Messaging fallback (§II-A): the server pages a
    // quiet phone; the phone pings back.
    let env = Arc::new(presets::tim_hortons(51));
    let mut phone = MobileFrontend::new(77, coffee_manager(&env));
    phone.advance_to(120.0);
    let replies = phone.handle_message(&Message::WakeUp { token: 77 });
    let [Message::Ping { token, uptime_ms }] = replies.as_slice() else { panic!("{replies:?}") };
    assert_eq!(*token, 77);
    assert_eq!(*uptime_ms, 120_000);
}

#[test]
fn flaky_sensor_fails_task_but_not_the_system() {
    use sor::sensors::FlakyProvider;
    let env = Arc::new(presets::bn_cafe(71));
    let mut server = cafe_server(&env);

    // Phone A: microphone dies on its second acquisition.
    let mut mgr_a = SensorManager::new();
    for kind in [SensorKind::Temperature, SensorKind::Light, SensorKind::WifiRssi, SensorKind::Gps]
    {
        mgr_a.register(SimulatedProvider::new(kind, env.clone() as Arc<dyn Environment>));
    }
    mgr_a.register(FlakyProvider::every(
        SimulatedProvider::new(SensorKind::Microphone, env.clone() as Arc<dyn Environment>),
        2,
    ));
    let mut phone_a = MobileFrontend::new(1, mgr_a);
    // Phone B: healthy.
    let mut phone_b = MobileFrontend::new(2, coffee_manager(&env));

    for phone in [&mut phone_a, &mut phone_b] {
        let scan = phone.scan_barcode(1, 6, 1200.0);
        let replies = server.handle_message(&scan).unwrap();
        for (token, m) in &replies {
            if *token == phone.token() {
                phone.handle_message(m);
            }
        }
    }
    let mut a_failed = false;
    for m in phone_a.advance_to(1200.0) {
        server.tick(1200.0);
        if let Message::TaskComplete { status, .. } = m {
            a_failed |= status != 0;
        }
        let _ = server.handle_message(&m);
    }
    assert!(a_failed, "the flaky phone must report a task error");
    for m in phone_b.advance_to(1200.0) {
        server.tick(1200.0);
        server.handle_message(&m).unwrap();
    }
    server.process_data().unwrap();
    // The healthy phone's data still yields every feature.
    for f in ["temperature", "brightness", "noise", "wifi"] {
        assert!(server.feature_value(1, f).unwrap().is_some(), "missing {f}");
    }
}

#[test]
fn rescan_after_finish_starts_a_fresh_task() {
    let env = Arc::new(presets::bn_cafe(81));
    let mut server = cafe_server(&env);
    let mut phone = MobileFrontend::new(3, coffee_manager(&env));

    // First visit: short stay, small budget.
    let scan = phone.scan_barcode(1, 2, 200.0);
    let replies = server.handle_message(&scan).unwrap();
    let first_task = match &replies[0] {
        (_, Message::ScheduleAssignment { task_id, .. }) => *task_id,
        other => panic!("{other:?}"),
    };
    for (_, m) in &replies {
        phone.handle_message(m);
    }
    for m in phone.advance_to(250.0) {
        server.tick(250.0);
        let _ = server.handle_message(&m);
    }
    server.tick(300.0); // departure sweep ends the first task

    // Second visit, same device token.
    let scan = phone.scan_barcode(1, 3, 600.0);
    let replies = server.handle_message(&scan).unwrap();
    let second_task = replies
        .iter()
        .find_map(|(t, m)| match m {
            Message::ScheduleAssignment { task_id, .. } if *t == 3 => Some(*task_id),
            _ => None,
        })
        .expect("re-scan must produce a fresh assignment");
    assert_ne!(first_task, second_task, "re-arrival mints a new task id");
    for (_, m) in &replies {
        phone.handle_message(m);
    }
    let uploads = phone
        .advance_to(1000.0)
        .iter()
        .filter(|m| matches!(m, Message::SensedDataUpload { .. }))
        .count();
    assert!(uploads > 0, "the second visit senses again");
}

#[test]
fn budget_zero_user_contributes_nothing_but_is_admitted() {
    let env = Arc::new(presets::bn_cafe(61));
    let mut server = cafe_server(&env);
    let phone = MobileFrontend::new(9, coffee_manager(&env));
    let scan = phone.scan_barcode(1, 0, 600.0);
    let replies = server.handle_message(&scan).unwrap();
    let (_, Message::ScheduleAssignment { sense_times, .. }) = &replies[0] else { panic!() };
    assert!(sense_times.is_empty());
}
