//! Smaller cross-crate seams: script ↔ sensors, proto ↔ store,
//! core ↔ flow.

use std::sync::Arc;

use sor::script::{Interpreter, Value};
use sor::sensors::environment::presets;
use sor::sensors::{SensorKind, SensorManager, SimulatedProvider};

#[test]
fn script_interpreter_drives_real_sensor_manager() {
    let env = Arc::new(presets::green_lake_trail(3));
    let mut mgr = SensorManager::new();
    mgr.register(SimulatedProvider::new(SensorKind::Temperature, env.clone()));
    mgr.register(SimulatedProvider::new(SensorKind::Humidity, env));
    let mgr = Arc::new(mgr);

    let mut interp = Interpreter::new();
    for (name, kind) in [
        ("get_temperature_readings", SensorKind::Temperature),
        ("get_humidity_readings", SensorKind::Humidity),
    ] {
        let mgr = Arc::clone(&mgr);
        interp.host_mut().register(name, move |ctx, args| {
            let n = args.first().and_then(Value::as_number).unwrap_or(1.0) as usize;
            let readings = mgr.acquire(kind, n, ctx.virtual_time).map_err(|e| e.to_string())?;
            ctx.virtual_time += n as f64 * 0.5;
            Ok(Value::number_array(&readings.iter().map(|r| r[0]).collect::<Vec<_>>()))
        });
    }
    let v = interp
        .run(
            r#"
            local t = get_temperature_readings(10)
            local h = get_humidity_readings(10)
            -- late-fall lake weather: cool and humid
            assert(mean(t) > 35 and mean(t) < 55, "temp " .. mean(t))
            assert(mean(h) > 45, "humidity " .. mean(h))
            return mean(t)
        "#,
        )
        .unwrap();
    assert!(v.as_number().unwrap() > 35.0);
}

#[test]
fn store_holds_proto_frames_byte_exact() {
    use sor::proto::{Message, SensedRecord};
    use sor::store::{ColumnType, Database, Predicate, Schema, Value as Sv};

    let mut db = Database::new();
    db.create_table(
        Schema::new("inbox").column("id", ColumnType::Int).column("frame", ColumnType::Bytes),
    )
    .unwrap();

    let msg = Message::SensedDataUpload {
        task_id: 3,
        records: vec![SensedRecord {
            timestamp: 1.5,
            window: 2.0,
            sensor: 4,
            values: vec![1.0, -2.5, 1e9],
        }],
    };
    db.insert("inbox", vec![Sv::Int(1), Sv::Bytes(msg.encode())]).unwrap();

    // Snapshot + restore, then decode the frame out of the restored db.
    let restored = Database::restore(&db.snapshot()).unwrap();
    let rows = restored.scan("inbox", &Predicate::True).unwrap();
    let bytes = rows[0].values[1].as_bytes().unwrap();
    assert_eq!(Message::decode(bytes).unwrap(), msg);
}

#[test]
fn ranking_matches_direct_flow_solution() {
    // The §IV-B construction: aggregating through the public ranking API
    // equals solving the assignment problem manually on sor-flow.
    use sor::core::ranking::{aggregate, AggregationMethod, PlaceId, Ranking};
    use sor::flow::assignment::{solve, Backend};

    let rankings = vec![
        Ranking::from_order(vec![2, 0, 1, 3]).unwrap(),
        Ranking::from_order(vec![0, 1, 3, 2]).unwrap(),
        Ranking::from_order(vec![1, 0, 2, 3]).unwrap(),
    ];
    let weights = [3.0, 1.0, 2.0];
    let agg = aggregate(&rankings, &weights, AggregationMethod::FootruleFlow).unwrap();

    // Manual cost matrix (integer weights → exact).
    let n = 4;
    let cost: Vec<Vec<i64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|p| {
                    rankings
                        .iter()
                        .zip(weights)
                        .map(|(r, w)| (w as i64) * (r.position_of(PlaceId(i)).abs_diff(p) as i64))
                        .sum()
                })
                .collect()
        })
        .collect();
    let sol = solve(&cost, Backend::Hungarian).unwrap();
    let manual_cost: i64 = sol.total_cost;
    let api_cost: f64 = rankings
        .iter()
        .zip(weights)
        .map(|(r, w)| w * sor::core::ranking::footrule_distance(&agg, r) as f64)
        .sum();
    assert_eq!(api_cost as i64, manual_cost);
}

#[test]
fn frontend_uploads_decode_into_server_feature_pipeline() {
    use sor::frontend::MobileFrontend;
    use sor::proto::Message;
    use sor::server::{ApplicationSpec, SensingServer};
    use sor::sim::scenario::coffee_features;

    let env = Arc::new(presets::tim_hortons(8));
    let mut mgr = SensorManager::new();
    for kind in [
        SensorKind::Temperature,
        SensorKind::Light,
        SensorKind::Microphone,
        SensorKind::WifiRssi,
        SensorKind::Gps,
    ] {
        mgr.register(SimulatedProvider::new(kind, env.clone()));
    }
    let mut phone = MobileFrontend::new(70, mgr);

    let mut server = SensingServer::new().unwrap();
    use sor::sensors::Environment;
    let (lat, lon) = env.location();
    server
        .register_application(ApplicationSpec {
            app_id: 1,
            name: "Tim Hortons".into(),
            creator: "it".into(),
            category: "coffee-shop".into(),
            latitude: lat,
            longitude: lon,
            radius_m: 300.0,
            script: sor::sim::scenario::fieldtest::COFFEE_SCRIPT.into(),
            period_seconds: 600.0,
            instants: 60,
            features: coffee_features(),
        })
        .unwrap();

    // Scan → assignment → execute → upload → process → feature.
    let scan = phone.scan_barcode(1, 5, 600.0);
    let replies = server.handle_message(&scan).unwrap();
    for (_, msg) in &replies {
        phone.handle_message(msg);
    }
    let uploads = phone.advance_to(600.0);
    assert!(uploads.iter().any(|m| matches!(m, Message::SensedDataUpload { .. })));
    for m in &uploads {
        server.tick(600.0);
        let _ = server.handle_message(m);
    }
    server.process_data().unwrap();
    let brightness = server.feature_value(1, "brightness").unwrap().unwrap();
    assert!(brightness > 800.0, "Tim Hortons is very bright, got {brightness}");
}
