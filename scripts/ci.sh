#!/usr/bin/env sh
# Offline CI gate: build, tests, lints, formatting.
#
# Runs entirely against the vendored dependency stubs in vendor/ — no
# network or registry access is required (--offline makes cargo fail
# fast instead of hanging if a lockfile change would need one).
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo fmt --check

echo "==> CI OK"
