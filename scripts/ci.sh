#!/usr/bin/env sh
# Offline CI gate: build, tests, lints, formatting.
#
# Runs entirely against the vendored dependency stubs in vendor/ — no
# network or registry access is required (--offline makes cargo fail
# fast instead of hanging if a lockfile change would need one).
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo fmt --check

# Observability smoke: a traced field test must produce parseable
# exports, and the disabled recorder must stay under its overhead budget.
run cargo run --release --offline -p sor-bench --bin obs_smoke
run cargo bench --offline -p sor-bench --bench obs_overhead

# Durability smoke: a field test crashed twice mid-window must recover
# every acked upload and rank identically to the crash-free run, and
# write-ahead logging must stay under its overhead budget.
run cargo run --release --offline -p sor-bench --bin recovery_smoke
run cargo bench --offline -p sor-bench --bench wal_overhead

echo "==> CI OK"
