#!/usr/bin/env sh
# Offline CI gate: build, tests, lints, formatting.
#
# Runs entirely against the vendored dependency stubs in vendor/ — no
# network or registry access is required (--offline makes cargo fail
# fast instead of hanging if a lockfile change would need one).
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
# The whole suite at one worker and at four: SOR_THREADS must never
# change what any test observes, only how fast it runs.
run env SOR_THREADS=1 cargo test -q --offline --workspace
run env SOR_THREADS=4 cargo test -q --offline --workspace
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo fmt --check

# Static-analysis gates: every corpus script's diagnostics must match
# its golden .expected file, and the three-way optdiff (tree-walker vs
# optimized tree-walker vs bytecode VM on both programs) must report
# zero divergences on the whole corpus — values, error kinds, print
# output, and instruction counts all have to agree.
run cargo test -q --offline -p sor-script --test lint_corpus
run cargo test -q --offline -p sor-script --test vm_corpus
run cargo run --release --offline -p sor-script --bin optdiff -- tests/lint_corpus

# Observability smoke: a traced field test must produce parseable
# exports, and the disabled recorder must stay under its overhead budget.
# Both smokes run twice — one worker, then four — and their deterministic
# summaries (trace/metrics digest, final ranking) must not diverge.
smoke_diverged() {
    # $1: binary name. Compares full stdout across SOR_THREADS=1 and 4.
    one=$(env SOR_THREADS=1 cargo run --release --offline -p sor-bench --bin "$1")
    four=$(env SOR_THREADS=4 cargo run --release --offline -p sor-bench --bin "$1")
    if [ "$one" != "$four" ]; then
        echo "FAIL $1 output diverges between SOR_THREADS=1 and 4" >&2
        printf '%s\n--- vs ---\n%s\n' "$one" "$four" >&2
        return 1
    fi
    echo "==> $1 deterministic across SOR_THREADS=1/4"
}
smoke_diverged obs_smoke
run cargo bench --offline -p sor-bench --bench obs_overhead
# Metro-scale guard: the always-on sampled layer (tail sampler, window
# rolls, top-k offers) must stay <2% of the pipeline at 10x users.
run cargo bench --offline -p sor-bench --bench obs_scale

# Trace lint: export the deterministic field-test golden trace and fail
# on structural defects — orphan parent ids, spans that close before
# they open, and cross-component (phone <-> server) spans missing a
# trace id. The same export is then graded against the SLO catalog.
trace_dir=$(mktemp -d)
top_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir" "$top_dir"' EXIT
run env SOR_THREADS=1 cargo run --release --offline -p sor --bin sor -- export "$trace_dir"
run cargo run --release --offline -p sor --bin sor -- lint "$trace_dir/trace.json"
run cargo run --release --offline -p sor --bin sor -- health "$trace_dir/trace.json"

# Dashboard golden smoke: re-export at four workers and byte-compare
# the rendered `sor top` dashboards — worker count must never change
# what the operator sees.
run env SOR_THREADS=4 cargo run --release --offline -p sor --bin sor -- export "$top_dir"
top_one=$(cargo run --release --offline -p sor --bin sor -- top "$trace_dir")
top_four=$(cargo run --release --offline -p sor --bin sor -- top "$top_dir")
if [ "$top_one" != "$top_four" ]; then
    echo "FAIL sor top dashboard diverges between SOR_THREADS=1 and 4 exports" >&2
    printf '%s\n--- vs ---\n%s\n' "$top_one" "$top_four" >&2
    exit 1
fi
printf '%s\n' "$top_one"
echo "==> sor top dashboard deterministic across SOR_THREADS=1/4"

# Run-archive gates. Both exports above sealed a run.sorar; the two runs
# share a seed, so:
#  1. `sor diff` across them must report zero regressions and exit 0
#     (worker count is provenance, not behaviour);
#  2. `sor query trace` must re-emit the live trace.json byte-for-byte;
#  3. the archived causal tree must reconstruct the dispatch -> commit
#     chain and the rank pass from the sealed blob alone;
#  4. a synthetic 5x upload_commit_p95 degradation injected with
#     `sor degrade` must flip the diff gate to a nonzero exit.
run cargo run --release --offline -p sor --bin sor -- diff "$trace_dir/run.sorar" "$top_dir/run.sorar"
cargo run --release --offline -p sor --bin sor -- query "$trace_dir/run.sorar" trace > "$trace_dir/reexport.json"
if ! cmp -s "$trace_dir/reexport.json" "$trace_dir/trace.json"; then
    echo "FAIL archived trace re-export is not byte-identical to the live trace.json" >&2
    exit 1
fi
echo "==> archived trace re-export byte-identical to live export"
tree_out=$(cargo run --release --offline -p sor --bin sor -- query "$trace_dir/run.sorar" tree handle_message)
for span in server.task_dispatch processor.commit; do
    if ! printf '%s\n' "$tree_out" | grep -q "$span"; then
        echo "FAIL archived causal tree is missing the $span span" >&2
        exit 1
    fi
done
full_tree=$(cargo run --release --offline -p sor --bin sor -- query "$trace_dir/run.sorar" tree)
if ! printf '%s\n' "$full_tree" | grep -q "server.rank"; then
    echo "FAIL archived causal tree is missing the server.rank span" >&2
    exit 1
fi
echo "==> archived causal tree reconstructs dispatch -> commit -> rank"
run cargo run --release --offline -p sor --bin sor -- degrade "$trace_dir/run.sorar" \
    "$trace_dir/degraded.sorar" pipeline.upload_commit_latency_s 5
if cargo run --release --offline -p sor --bin sor -- diff "$trace_dir/run.sorar" "$trace_dir/degraded.sorar"; then
    echo "FAIL sor diff did not flag a synthetic 5x upload_commit_latency_s degradation" >&2
    exit 1
fi
echo "==> diff gate catches an injected 5x latency degradation"

# Durability smoke: a field test crashed twice mid-window must recover
# every acked upload and rank identically to the crash-free run, and
# write-ahead logging must stay under its overhead budget.
smoke_diverged recovery_smoke
run cargo bench --offline -p sor-bench --bench wal_overhead

# Parallel-speedup guard: rank_many over 64 users on 8 workers must beat
# the sequential path by >=1.5x, and a warm rank-cache hit must beat a
# cold rank by >=10x. The thread-scaling check needs real hardware
# parallelism, so it is skipped on a single-core machine; the cache
# check always runs.
rank_out=$(cargo bench --offline -p sor-bench --bench rank_scale)
printf '%s\n' "$rank_out"
ns_of() { printf '%s\n' "$rank_out" | awk -v id="$1" '$2 == id { print substr($3, 2) }'; }
cold=$(ns_of rank_scale/cold)
hit=$(ns_of rank_scale/cache_hit)
if [ "$((cold / hit))" -lt 10 ]; then
    echo "FAIL warm cache hit (${hit} ns) is not >=10x faster than cold rank (${cold} ns)" >&2
    exit 1
fi
echo "==> rank cache hit speedup OK (${cold} ns cold vs ${hit} ns hit)"
if [ "$(nproc 2>/dev/null || echo 1)" -gt 1 ]; then
    seq64=$(ns_of rank_scale/seq/users=64)
    par64=$(ns_of rank_scale/par8/users=64)
    # 1.5x without floats: 2*seq >= 3*par.
    if [ "$((2 * seq64))" -lt "$((3 * par64))" ]; then
        echo "FAIL par8 rank_many (${par64} ns) is not >=1.5x faster than sequential (${seq64} ns)" >&2
        exit 1
    fi
    echo "==> rank_many parallel speedup OK (${seq64} ns seq vs ${par64} ns par8)"
else
    echo "==> skipping rank_many speedup guard (single hardware thread)"
fi

# Script-engine speedup guard: a warm-cache VM dispatch skips the
# per-dispatch parse + analyze + compile entirely, so it must beat a
# full tree-walker dispatch by >=3x.
exec_out=$(cargo bench --offline -p sor-bench --bench script_exec)
printf '%s\n' "$exec_out"
exec_ns_of() { printf '%s\n' "$exec_out" | awk -v id="$1" '$2 == id { print substr($3, 2) }'; }
tree=$(exec_ns_of script_exec/tree_walk)
warm=$(exec_ns_of script_exec/vm_warm)
if [ "$((tree / warm))" -lt 3 ]; then
    echo "FAIL warm-cache VM dispatch (${warm} ns) is not >=3x faster than tree-walk dispatch (${tree} ns)" >&2
    exit 1
fi
echo "==> script VM warm-cache speedup OK (${tree} ns tree vs ${warm} ns vm_warm)"

# Scheduler solver gate: CELF must be invisible at the outcome level —
# the field test under SOR_SCHED_SOLVER=exact and =celf must print
# byte-identical outcome digests (CELF is bit-identical to the plain
# greedy by construction). The stochastic solver may schedule
# differently but must still pass the SLO health grade the smoke
# enforces internally.
exact_out=$(env SOR_SCHED_SOLVER=exact cargo run --release --offline -p sor-bench --bin sched_smoke)
celf_out=$(env SOR_SCHED_SOLVER=celf cargo run --release --offline -p sor-bench --bin sched_smoke)
if [ "$exact_out" != "$celf_out" ]; then
    echo "FAIL sched_smoke outcomes diverge between exact and CELF solvers" >&2
    printf '%s\n--- vs ---\n%s\n' "$exact_out" "$celf_out" >&2
    exit 1
fi
printf '%s\n' "$celf_out"
echo "==> sched_smoke outcome identical across exact/celf solvers"
run env SOR_SCHED_SOLVER=stochastic cargo run --release --offline -p sor-bench --bin sched_smoke

# Churn-replanning guard: incremental CELF re-planning must do at most
# 10% of the full-replan marginal-gain evaluations at n=4096. The
# `*_evals` lines are deterministic work counts, not wall time, so the
# guard is safe on single-core hosts.
churn_out=$(cargo bench --offline -p sor-bench --bench sched_churn)
printf '%s\n' "$churn_out"
churn_ns_of() { printf '%s\n' "$churn_out" | awk -v id="$1" '$2 == id { print substr($3, 2) }'; }
full_evals=$(churn_ns_of sched_churn/full_evals/n=4096)
incr_evals=$(churn_ns_of sched_churn/incr_evals/n=4096)
if [ "$((incr_evals * 10))" -gt "$full_evals" ]; then
    echo "FAIL incremental re-planning (${incr_evals} evals) exceeds 10% of full re-plan (${full_evals} evals) at n=4096" >&2
    exit 1
fi
echo "==> churn guard OK (${incr_evals} incremental vs ${full_evals} full-replan evals at n=4096)"

echo "==> CI OK"
