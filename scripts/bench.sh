#!/usr/bin/env sh
# Runs the pipeline-level benches and writes BENCH_pipeline.json at the
# repo root: one median-ish ns figure per bench id (the vendored
# criterion stub reports a mean over 20 iterations), plus the worker
# count, hardware core count, and git revision the numbers came from.
# Each run also appends the same record as one JSON line to
# results/bench_history.jsonl, keyed by git SHA, so the perf trajectory
# accumulates across PRs instead of being overwritten.
#
# Usage: scripts/bench.sh
#   SOR_THREADS=8 scripts/bench.sh   # pin the recorded worker count
set -eu

cd "$(dirname "$0")/.."

rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
cores=$(nproc 2>/dev/null || echo 1)
threads=${SOR_THREADS:-$cores}
# History schema: bump when the line format changes incompatibly.
# `sor diff --against` only baselines across entries with equal
# schema_version/host/threads/cores/skew, so cross-host (or
# cross-schema) comparisons are skipped instead of mis-flagged.
schema_version=2
host=$(uname -sm 2>/dev/null | tr ' ' '-' || echo unknown)
# On a single hardware thread the par8 figures measure scheduling
# overhead, not parallelism, so par8 ~= seq is expected; annotate the
# record so cross-host comparisons don't read that as a regression.
if [ "$cores" -eq 1 ]; then
    note="single-core host: par8 figures approximate seq (no hardware parallelism)"
    skew=true
else
    note=""
    skew=false
fi
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for bench in pipeline rank_scale script_analysis script_exec obs_scale sched_churn; do
    echo "==> cargo bench --offline -p sor-bench --bench $bench" >&2
    cargo bench --offline -p sor-bench --bench "$bench" | tee -a "$raw" >&2
done

# Stub criterion lines look like:
#   bench rank_scale/seq/users=64    ~45815770 ns/iter (stub criterion, 20 iters)
awk -v rev="$rev" -v threads="$threads" -v cores="$cores" -v note="$note" '
BEGIN {
    printf "{\n  \"git_rev\": \"%s\",\n  \"threads\": %s,\n  \"cores\": %s,\n", rev, threads, cores
    if (note != "") printf "  \"note\": \"%s\",\n", note
    printf "  \"benches\": {\n"
}
/^bench .*ns\/iter/ {
    if (n++) printf ",\n"
    printf "    \"%s\": %s", $2, substr($3, 2)
}
END { printf "\n  }\n}\n" }
' "$raw" > BENCH_pipeline.json

echo "==> wrote BENCH_pipeline.json ($(grep -c ':' BENCH_pipeline.json) lines)"
cat BENCH_pipeline.json

# Append the run to the cross-PR history as a single JSON line. The full
# (non-short) SHA is the key; stamp is wall-clock so reruns at the same
# revision stay distinguishable.
mkdir -p results
sha=$(git rev-parse HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
awk -v sha="$sha" -v stamp="$stamp" -v threads="$threads" -v cores="$cores" -v note="$note" \
    -v schema="$schema_version" -v host="$host" -v skew="$skew" '
BEGIN {
    printf "{\"git_sha\": \"%s\", \"recorded_at\": \"%s\", \"schema_version\": %s, \"host\": \"%s\", \"threads\": %s, \"cores\": %s, \"single_core_skew\": %s, ", sha, stamp, schema, host, threads, cores, skew
    if (note != "") printf "\"note\": \"%s\", ", note
    printf "\"benches\": {"
}
/^bench .*ns\/iter/ {
    if (n++) printf ", "
    printf "\"%s\": %s", $2, substr($3, 2)
}
END { printf "}}\n" }
' "$raw" >> results/bench_history.jsonl
echo "==> appended run $sha to results/bench_history.jsonl ($(wc -l < results/bench_history.jsonl) total)"
