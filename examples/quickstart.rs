//! Quickstart: the two SOR algorithms on a toy problem, no simulation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sor::core::coverage::GaussianCoverage;
use sor::core::ranking::{Feature, FeatureMatrix, PersonalizableRanker, Preference};
use sor::core::schedule::{baseline, greedy, Participant, ScheduleProblem, UserId};
use sor::core::time::TimeGrid;
use sor::core::UserPreferences;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Sensing scheduling (§III): one hour, readings stay valid ~30 s.
    // ------------------------------------------------------------------
    let grid = TimeGrid::new(0.0, 3600.0, 360)?;
    let participants = vec![
        Participant::new(UserId(0), 0.0, 3600.0, 6), // stays the whole hour
        Participant::new(UserId(1), 0.0, 1200.0, 4), // first 20 minutes
        Participant::new(UserId(2), 1800.0, 3600.0, 4), // second half
    ];
    let problem = ScheduleProblem::new(grid, GaussianCoverage::new(30.0), participants);

    let plan = greedy(&problem);
    let naive = baseline(&problem);
    println!("— sensing schedule —");
    for user in [UserId(0), UserId(1), UserId(2)] {
        let times: Vec<String> = plan
            .for_user(user)
            .iter()
            .map(|&i| format!("{:.0}s", problem.grid().time_of(i)))
            .collect();
        println!("  {user}: {}", times.join(", "));
    }
    println!(
        "  average coverage: greedy {:.3} vs every-10s baseline {:.3}\n",
        problem.average_coverage(&plan),
        problem.average_coverage(&naive),
    );

    // ------------------------------------------------------------------
    // 2. Personalizable ranking (§IV): same data, different users.
    // ------------------------------------------------------------------
    let h = FeatureMatrix::new(
        vec!["Tim Hortons".into(), "B&N Cafe".into(), "Starbucks".into()],
        vec![
            Feature::new("temperature", "°F"),
            Feature::new("brightness", "lux"),
            Feature::new("noise", ""),
        ],
        vec![vec![66.0, 1100.0, 0.10], vec![71.0, 520.0, 0.12], vec![74.0, 180.0, 0.40]],
    )?;

    let social = UserPreferences::new(
        "social David",
        vec![
            Preference::value(75.0, 4), // warm
            Preference::smallest(4),    // cosy lighting
            Preference::largest(0),     // noise: don't care
        ],
    );
    let studious = UserPreferences::new(
        "studious Emma",
        vec![
            Preference::value(70.0, 5), // comfortable
            Preference::largest(1),     // light to read
            Preference::smallest(3),    // quiet
        ],
    );

    println!("— personalizable ranking —");
    let ranker = PersonalizableRanker::new();
    for prefs in [social, studious] {
        let outcome = ranker.rank(&h, &prefs)?;
        println!("  {:<14} → {}", prefs.name, outcome.named_order(&h).join(" > "));
    }
    Ok(())
}
