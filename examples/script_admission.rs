//! The script admission pipeline: static verification from the
//! linter, the server's admission gate, and the phone's independent
//! re-check.
//!
//! ```sh
//! cargo run --example script_admission
//! ```

use std::sync::Arc;

use sor::frontend::MobileFrontend;
use sor::proto::Message;
use sor::script::analysis::{analyze, CapabilitySet};
use sor::sensors::environment::presets;
use sor::sensors::{SensorKind, SensorManager, SimulatedProvider};
use sor::server::feature::{Extractor, FeatureSpec};
use sor::server::{ApplicationSpec, SensingServer, ServerError};

fn cafe_app(app_id: u64, name: &str, script: &str) -> ApplicationSpec {
    ApplicationSpec {
        app_id,
        name: name.into(),
        creator: "owner".into(),
        category: "coffee-shop".into(),
        latitude: 43.05,
        longitude: -76.15,
        radius_m: 150.0,
        script: script.into(),
        period_seconds: 3600.0,
        instants: 360,
        features: vec![FeatureSpec::new(
            "temperature",
            "°F",
            Extractor::Mean { sensor: SensorKind::Temperature.wire_id() },
            60.0,
        )],
    }
}

fn join(token: u64, app_id: u64) -> Message {
    Message::ParticipationRequest {
        token,
        app_id,
        latitude: 43.0501,
        longitude: -76.1501,
        budget: 3,
        stay_seconds: 1800.0,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. The analyzer on its own: what `sorlint` prints.
    // ------------------------------------------------------------------
    let rogue = "local t = get_temperature_readings(3)\nsteal_contacts(t)";
    let report = analyze(rogue, &CapabilitySet::standard_sensing());
    println!("— sorlint view of a rogue script —");
    print!("{}", report.render("rogue.lua"));
    println!("  static cost: {}\n", report.cost);

    // ------------------------------------------------------------------
    // 2. The server refuses the task at admission, before scheduling.
    // ------------------------------------------------------------------
    let mut server = SensingServer::new()?;
    server.register_application(cafe_app(1, "rogue cafe", rogue))?;
    server.register_application(cafe_app(
        2,
        "honest cafe",
        "return mean(get_temperature_readings(5))",
    ))?;

    println!("— admission —");
    match server.handle_message(&join(7, 1)) {
        Err(ServerError::ScriptRejected { app_id, report }) => {
            println!("  app {app_id} rejected before any task slot was spent:");
            for line in report.lines() {
                println!("    {line}");
            }
        }
        other => println!("  unexpected: {other:?}"),
    }

    let replies = server.handle_message(&join(8, 2))?;
    let (token, assignment) = &replies[0];
    println!("  app 2 admitted: schedule assigned to phone {token}\n");

    // ------------------------------------------------------------------
    // 3. The phone re-verifies before spending sensing effort.
    // ------------------------------------------------------------------
    let env = Arc::new(presets::bn_cafe(3));
    let mut mgr = SensorManager::new();
    mgr.register(SimulatedProvider::new(SensorKind::Temperature, env));
    let mut phone = MobileFrontend::new(8, mgr);
    phone.handle_message(assignment);
    let out = phone.advance_to(3600.0);
    println!("— phone —");
    for m in &out {
        match m {
            Message::SensedDataUpload { task_id, records } => {
                println!("  task {task_id}: uploaded {} record(s)", records.len());
            }
            Message::TaskComplete { task_id, status } => {
                println!("  task {task_id}: complete with status {status}");
            }
            _ => {}
        }
    }
    Ok(())
}
