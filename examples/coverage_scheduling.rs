//! Online coverage scheduling in action: users scan in and out of a
//! place while the Sensing Scheduler keeps revising the future plan
//! (§II-B + §III). Ends with one Fig. 14-style comparison point.
//!
//! ```sh
//! cargo run --release --example coverage_scheduling
//! ```

use sor::core::coverage::GaussianCoverage;
use sor::core::schedule::online::OnlineScheduler;
use sor::core::schedule::{baseline, lazy_greedy, Participant, ScheduleProblem, UserId};
use sor::core::time::TimeGrid;
use sor::server::viz::sparkline_fit;
use sor::sim::scenario::{run_scheduling_sim, SchedulingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Online arrivals over a 30-minute period.
    // ------------------------------------------------------------------
    let grid = TimeGrid::new(0.0, 1800.0, 180)?;
    let mut sched = OnlineScheduler::new(grid, GaussianCoverage::new(10.0));

    println!("— online rescheduling —");
    let arrivals =
        [(UserId(0), 0.0, 1800.0, 8), (UserId(1), 300.0, 1200.0, 6), (UserId(2), 900.0, 1800.0, 6)];
    for (user, t, dep, budget) in arrivals {
        sched.arrive(user, t, dep, budget);
        println!(
            "  t={t:>6.0}s  {user} joins (budget {budget})  → plan covers {:.1}% of the period",
            100.0 * sched.coverage() / grid.len() as f64
        );
    }
    sched.depart(UserId(1), 1000.0);
    println!(
        "  t=1000.0s  u1 leaves early                → plan covers {:.1}%",
        100.0 * sched.coverage() / grid.len() as f64
    );
    let plan = sched.current_schedule();
    for (user, ..) in arrivals {
        println!("  {user} senses at instants {:?}", plan.for_user(user).len());
    }

    // ------------------------------------------------------------------
    // Coverage profiles: where in the period readings actually land.
    // ------------------------------------------------------------------
    let grid = TimeGrid::new(0.0, 10_800.0, 1080)?;
    let participants: Vec<Participant> =
        (0..12).map(|k| Participant::new(UserId(k), k as f64 * 800.0, 10_800.0, 17)).collect();
    let problem = ScheduleProblem::new(grid, GaussianCoverage::new(10.0), participants);
    println!("\n— coverage profiles over the 3-hour period (12 staggered users) —");
    println!("  greedy   {}", sparkline_fit(&problem.coverage_profile(&lazy_greedy(&problem)), 72));
    println!("  baseline {}", sparkline_fit(&problem.coverage_profile(&baseline(&problem)), 72));

    // ------------------------------------------------------------------
    // One point of Fig. 14(a): 40 users, budget 17, 10 runs.
    // ------------------------------------------------------------------
    println!("\n— Fig. 14 comparison point (40 users, budget 17) —");
    let out = run_scheduling_sim(SchedulingConfig::paper(40, 17, 1));
    println!(
        "  greedy   : {:.3} ± {:.3}\n  baseline : {:.3} ± {:.3}\n  improvement: {:.0}%",
        out.greedy_mean,
        out.greedy_std,
        out.baseline_mean,
        out.baseline_std,
        100.0 * out.improvement()
    );
    Ok(())
}
