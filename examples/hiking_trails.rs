//! The §V-A hiking-trail field test: simulated hikers walk three
//! Syracuse trails while their phones sample temperature, humidity,
//! accelerometer and GPS; the server extracts Fig. 6's five features and
//! ranks the trails for Alice, Bob and Chris (Table I).
//!
//! ```sh
//! cargo run --release --example hiking_trails
//! ```

use sor::server::viz::{to_csv, FeaturePanel};
use sor::sim::scenario::{alice, bob, chris, run_trail_field_test, FieldTestConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("running the hiking-trail field test (3 trails × 7 phones × 3 h)…");
    let out = run_trail_field_test(FieldTestConfig::trails())?;
    println!(
        "  uploads accepted: {}   decode failures: {}\n",
        out.stats.uploads_accepted, out.stats.decode_failures
    );

    use sor::core::ranking::{FeatureId, PlaceId};
    let mut panels = Vec::new();
    for j in 0..out.matrix.n_features() {
        let bars: Vec<(String, f64)> = (0..out.matrix.n_places())
            .map(|i| {
                (
                    out.matrix.place_name(PlaceId(i)).to_string(),
                    out.matrix.value(PlaceId(i), FeatureId(j)),
                )
            })
            .collect();
        panels.push(FeaturePanel::new(out.matrix.feature(FeatureId(j)).to_string(), bars));
    }
    for p in &panels {
        print!("{}", p.render(40));
        println!();
    }
    println!("Fig. 6 feature data as CSV:\n{}", to_csv(&panels));

    println!("Table I — rankings computed by SOR:");
    println!("  {:<8} {:<18} {:<18} {:<18}", "User", "No. 1", "No. 2", "No. 3");
    for prefs in [alice(), bob(), chris()] {
        let ranking = out.server.rank("hiking-trail", &prefs)?;
        println!(
            "  {:<8} {:<18} {:<18} {:<18}",
            prefs.name, ranking.order[0], ranking.order[1], ranking.order[2]
        );
    }
    Ok(())
}
