//! SenseScript, the Lua-like sensing-task language (§II-A): custom host
//! functions, the security whitelist, the privacy veto, and the
//! instruction budget.
//!
//! ```sh
//! cargo run --example sensing_script
//! ```

use sor::script::{Interpreter, ScriptError, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // A task description like the paper's Fig. 4: sample, process,
    // report — paced with a *virtual* sleep.
    // ------------------------------------------------------------------
    let mut interp = Interpreter::new();
    interp.host_mut().register("get_light_readings", |ctx, args| {
        let n = args.first().and_then(Value::as_number).unwrap_or(1.0) as usize;
        ctx.virtual_time += 0.2 * n as f64;
        // A fake noisy sensor.
        Ok(Value::number_array(
            &(0..n).map(|i| 400.0 + 7.0 * ((i * 37) % 10) as f64).collect::<Vec<_>>(),
        ))
    });
    interp.host_mut().register("report", |ctx, args| {
        ctx.output.push(format!("REPORT {}", args[0].display()));
        Ok(Value::Nil)
    });

    let script = r#"
        -- take three paced samples of ambient light and report stats
        local samples = {}
        for i = 1, 3 do
            local batch = get_light_readings(5)
            insert(samples, mean(batch))
            sleep(2)
        end
        report("light mean=" .. mean(samples) .. " sd=" .. stddev(samples))
        return #samples
    "#;
    let result = interp.run(script)?;
    println!("script returned {}", result.display());
    println!("virtual time elapsed: {:.1}s", interp.virtual_time());
    for line in interp.output() {
        println!("output: {line}");
    }

    // ------------------------------------------------------------------
    // The whitelist: anything unregistered is refused.
    // ------------------------------------------------------------------
    let err = interp.run("read_sms_inbox()").unwrap_err();
    println!("\nwhitelist rejection: {err}");
    assert!(matches!(err, ScriptError::ForbiddenFunction { .. }));

    // ------------------------------------------------------------------
    // The instruction budget stops runaway tasks.
    // ------------------------------------------------------------------
    let mut bounded = Interpreter::new();
    bounded.set_budget(50_000);
    let err = bounded.run("while true do end").unwrap_err();
    println!("runaway script: {err}");
    assert!(matches!(err, ScriptError::BudgetExhausted { .. }));
    Ok(())
}
