//! The §V-B coffee-shop field test, end to end: 12 simulated phones per
//! shop collect sensor data over 3 hours through the real wire protocol;
//! the server extracts Fig. 10's features and ranks the shops for David
//! and Emma (Table II).
//!
//! ```sh
//! cargo run --release --example coffee_shop_ranking
//! ```

use sor::server::viz::FeaturePanel;
use sor::sim::scenario::{david, emma, run_coffee_field_test, FieldTestConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("running the coffee-shop field test (3 shops × 12 phones × 3 h)…");
    let out = run_coffee_field_test(FieldTestConfig::coffee())?;
    println!(
        "  uploads accepted: {}   decode failures: {}\n",
        out.stats.uploads_accepted, out.stats.decode_failures
    );

    // Fig. 10: the four feature panels.
    use sor::core::ranking::{FeatureId, PlaceId};
    for j in 0..out.matrix.n_features() {
        let bars: Vec<(String, f64)> = (0..out.matrix.n_places())
            .map(|i| {
                (
                    out.matrix.place_name(PlaceId(i)).to_string(),
                    out.matrix.value(PlaceId(i), FeatureId(j)),
                )
            })
            .collect();
        let title = out.matrix.feature(FeatureId(j)).to_string();
        print!("{}", FeaturePanel::new(title, bars).render(40));
        println!();
    }

    // Table II: rankings for the two virtual customers.
    println!("Table II — rankings computed by SOR:");
    println!("  {:<8} {:<14} {:<14} {:<14}", "User", "No. 1", "No. 2", "No. 3");
    for prefs in [david(), emma()] {
        let ranking = out.server.rank("coffee-shop", &prefs)?;
        println!(
            "  {:<8} {:<14} {:<14} {:<14}",
            prefs.name, ranking.order[0], ranking.order[1], ranking.order[2]
        );
    }

    // Why did Emma get this order? Per-feature breakdown.
    let prefs = emma();
    let ranking = out.server.rank("coffee-shop", &prefs)?;
    println!("\nWhy ({}):", prefs.name);
    for explanation in ranking.outcome.explain(&ranking.matrix, &prefs) {
        print!("{explanation}");
    }
    Ok(())
}
