//! Offline stub of the `rand` crate.
//!
//! Implements the exact surface the SOR workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform range
//! sampling via [`RngExt::random_range`]. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: yields raw 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, monomorphised over the range type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore> RngExt for G {}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: splitmix64. Statistically
    /// fine for simulations and tests; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&x));
            let y = rng.random_range(0.0f64..10.0);
            assert!((0.0..10.0).contains(&y));
            let z = rng.random_range(3usize..=3);
            assert_eq!(z, 3);
            let w = rng.random_range(2.0f64..=4.0);
            assert!((2.0..=4.0).contains(&w));
        }
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
