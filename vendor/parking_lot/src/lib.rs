//! Offline stub of the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s panic-free locking
//! API (no `Result` from `lock()`; a poisoned mutex is recovered
//! transparently, matching `parking_lot`'s no-poisoning semantics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
