//! Runner configuration, RNG, and failure type for the stub engine.

use std::fmt;

/// How a property run is configured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — a quarter of the real crate's 256, chosen so the full
    /// workspace property suite stays fast in CI.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Real-proptest-compatible alias for [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator (splitmix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1) }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Generates an arbitrary value, mirroring `rand::Rng::random` on
    /// the RNG handed to `prop_perturb` closures.
    pub fn random<T: crate::arbitrary::Arbitrary>(&mut self) -> T {
        T::arbitrary(self)
    }
}

/// FNV-1a over `bytes` — seeds each property from its test name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(3);
        let mut b = TestRng::new(3);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let u = rng.next_unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a(b"foo"), fnv1a(b"bar"));
    }
}
