//! Offline stub of the `proptest` crate.
//!
//! A deterministic mini property-testing engine implementing the API
//! surface the SOR workspace uses: the [`proptest!`] macro family,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`,
//! range/tuple/[`strategy::Just`]/string-pattern strategies,
//! [`collection::vec`], [`arbitrary::any`], [`sample::Index`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate (see `vendor/README.md`): 64 cases
//! per property by default and no shrinking — a failure panics with
//! the generated inputs rendered via `Debug`. Generation is
//! deterministic per (test name, case index), so failures reproduce
//! exactly from the test output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Defines property tests.
///
/// ```no_run
/// use proptest::prelude::*;
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __fn_seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::new(__fn_seed ^ (u64::from(__case) << 17));
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let __generated =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push(::std::format!(
                        "{} = {:?}",
                        stringify!($pat),
                        __generated
                    ));
                    let $pat = __generated;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__e)) => {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __e,
                            __inputs.join(", "),
                        );
                    }
                    ::std::result::Result::Err(__panic) => {
                        ::std::eprintln!(
                            "property `{}` panicked at case {}/{}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __inputs.join(", "),
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with its inputs reported) instead of panicking bare.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
                            stringify!($lhs),
                            stringify!($rhs),
                            __l,
                            __r
                        )),
                    );
                }
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{}` != `{}`\n  both: {:?}",
                            stringify!($lhs),
                            stringify!($rhs),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}

/// Picks uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
