//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_spec() {
        let mut rng = TestRng::new(5);
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
        let incl = vec(0u32..10, 0..=1);
        for _ in 0..50 {
            assert!(incl.generate(&mut rng).len() <= 1);
        }
    }
}
