//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Applies `f` to every generated value together with a fresh RNG
    /// split off the test case's RNG.
    fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> U,
    {
        Perturb { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        let child = TestRng::new(rng.next_u64());
        (self.f)(self.inner.generate(rng), child)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(1234)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let a = (0u8..8).generate(&mut r);
            assert!(a < 8);
            let b = (1u8..=5).generate(&mut r);
            assert!((1..=5).contains(&b));
            let c = (-1000i32..1000).generate(&mut r);
            assert!((-1000..1000).contains(&c));
            let d = (-1e6f64..1e6).generate(&mut r);
            assert!((-1e6..1e6).contains(&d));
        }
    }

    #[test]
    fn just_clones() {
        let s = Just(vec![1, 2, 3]);
        assert_eq!(s.generate(&mut rng()), vec![1, 2, 3]);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s = (1usize..=4)
            .prop_flat_map(|n| crate::collection::vec(0i64..10, n).prop_map(move |v| (n, v)));
        let mut r = rng();
        for _ in 0..100 {
            let (n, v) = s.generate(&mut r);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let u: Union<u8> = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = (0u16..3, 10i64..=12, Just("x"));
        let (a, b, c) = s.generate(&mut rng());
        assert!(a < 3);
        assert!((10..=12).contains(&b));
        assert_eq!(c, "x");
    }
}
