//! Glob-import surface matching `proptest::prelude`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// The `prop` namespace (`prop::sample::Index`, `prop::collection`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}
