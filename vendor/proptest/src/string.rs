//! String strategies from regex-like patterns.
//!
//! The workspace uses three pattern shapes — `".{0,200}"`, `".{0,60}"`
//! and `"[a-e]{0,4}"` — so this module implements exactly the grammar
//! `atom '{' lo ',' hi '}'` where `atom` is `.` (any printable char,
//! biased to ASCII with some multibyte/control sprinkled in) or a
//! bracket class of chars and `a-z` ranges. Patterns outside that
//! grammar fall back to fully arbitrary strings of length 0..=32,
//! which keeps never-panic properties meaningful.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.`: any character.
    AnyChar,
    /// `[...]`: explicit alternatives.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Pattern {
    atom: Atom,
    lo: usize,
    hi: usize,
}

fn parse_pattern(pat: &str) -> Option<Pattern> {
    let mut chars = pat.chars().peekable();
    let atom = match chars.next()? {
        '.' => Atom::AnyChar,
        '[' => {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match chars.next()? {
                    ']' => break,
                    '-' => {
                        let start = prev?;
                        let end = chars.next()?;
                        if end == ']' {
                            return None;
                        }
                        for c in (start as u32 + 1)..=(end as u32) {
                            set.push(char::from_u32(c)?);
                        }
                        prev = None;
                    }
                    c => {
                        set.push(c);
                        prev = Some(c);
                    }
                }
            }
            if set.is_empty() {
                return None;
            }
            Atom::Class(set)
        }
        _ => return None,
    };
    if chars.next()? != '{' {
        return None;
    }
    let rest: String = chars.collect();
    let body = rest.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.parse().ok()?;
    let hi: usize = hi.parse().ok()?;
    if lo > hi {
        return None;
    }
    Some(Pattern { atom, lo, hi })
}

fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.next_u64() % 8 {
        // Mostly printable ASCII, the lexer's common case.
        0..=4 => (b' ' + (rng.next_u64() % 95) as u8) as char,
        5 => ['\n', '\t', '\r', '"', '\'', '\\', '\0'][rng.below(7)],
        6 => char::from_u32(0x80 + (rng.next_u64() % 0x700) as u32).unwrap_or('¿'),
        _ => char::from_u32((rng.next_u64() % 0xD7FF) as u32).unwrap_or('\u{FFFD}'),
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some(p) => {
                let len = p.lo + rng.below(p.hi - p.lo + 1);
                (0..len)
                    .map(|_| match &p.atom {
                        Atom::AnyChar => arbitrary_char(rng),
                        Atom::Class(set) => set[rng.below(set.len())],
                    })
                    .collect()
            }
            None => {
                let len = rng.below(33);
                (0..len).map(|_| arbitrary_char(rng)).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_pattern_respects_length() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = ".{0,60}".generate(&mut rng);
            assert!(s.chars().count() <= 60);
        }
    }

    #[test]
    fn class_pattern_limits_alphabet() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-e]{0,4}".generate(&mut rng);
            assert!(s.chars().count() <= 4);
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn unknown_pattern_falls_back() {
        let mut rng = TestRng::new(4);
        // Not in the supported grammar: still generates something.
        let s = "(foo|bar)+".generate(&mut rng);
        assert!(s.chars().count() <= 32);
    }
}
