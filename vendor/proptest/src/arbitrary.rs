//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation recipe.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for f64 {
    /// Finite-biased: mostly uniform magnitudes, occasionally special
    /// values (0, ±∞, NaN are the interesting decoder inputs).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 16 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            _ => (rng.next_unit_f64() * 2.0 - 1.0) * 1e9,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias towards ASCII but include multibyte code points.
        match rng.next_u64() % 4 {
            0..=2 => (b' ' + (rng.next_u64() % 95) as u8) as char,
            _ => char::from_u32((rng.next_u64() % 0xD7FF) as u32).unwrap_or('\u{FFFD}'),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(77);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
        let _ = any::<bool>().generate(&mut rng);
        let _ = any::<f64>().generate(&mut rng);
        let _ = any::<char>().generate(&mut rng);
    }
}
