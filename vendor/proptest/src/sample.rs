//! Index sampling (`prop::sample::Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An abstract index resolvable against any non-empty length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Resolves against a concrete collection length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let ix = Index::arbitrary(&mut rng);
            assert!(ix.index(7) < 7);
            assert_eq!(ix.index(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "Index::index(0)")]
    fn zero_len_panics() {
        Index(3).index(0);
    }
}
