//! Offline stub of `serde_derive`.
//!
//! The SOR workspace derives `Serialize`/`Deserialize` on its public
//! data types but never serializes in-tree (the derives document
//! wire-readiness). These no-op derive macros keep the attribute
//! positions compiling without a registry dependency.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
