//! Offline stub of the `criterion` benchmarking crate.
//!
//! Keeps the workspace's `[[bench]]` targets compiling and runnable
//! without registry access. Measurement is a coarse wall-clock mean
//! over a fixed number of iterations — enough to spot order-of-
//! magnitude regressions by eye, not a statistics engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Iterations each benchmark body runs (after one warm-up call).
const STUB_ITERS: u32 = 20;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts and ignores CLI configuration (API compatibility).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepts and ignores the warm-up time (API compatibility).
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepts and ignores the measurement time (API compatibility).
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepts and ignores the sample size (API compatibility).
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepts and ignores the sample size (API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { rendered: format!("{function_name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Timer handed to benchmark bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
    iters: u32,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            black_box(routine());
        }
        self.elapsed = Some(start.elapsed());
        self.iters = STUB_ITERS;
    }

    fn report(&self, label: &str) {
        match self.elapsed {
            Some(total) => {
                let per_iter = total.as_nanos() / u128::from(self.iters.max(1));
                println!(
                    "bench {label:<48} ~{per_iter} ns/iter (stub criterion, {} iters)",
                    self.iters
                );
            }
            None => println!("bench {label:<48} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Declares a group-runner function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default().sample_size(5).configure_from_args();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }
}
