//! Offline stub of the `serde` crate.
//!
//! Provides the `Serialize`/`Deserialize` trait names and (behind the
//! `derive` feature) no-op derive macros. The workspace only *derives*
//! these traits to mark types wire-ready; nothing in-tree serializes,
//! so empty traits suffice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
