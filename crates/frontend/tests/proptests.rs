//! Property tests for the mobile frontend: whatever schedule the server
//! sends, the phone executes each sense time at most once, never
//! exceeds its task list, and always reports completion exactly once.

use std::sync::Arc;

use proptest::prelude::*;
use sor_frontend::{MobileFrontend, TaskStatus};
use sor_proto::Message;
use sor_sensors::environment::presets;
use sor_sensors::{SensorKind, SensorManager, SimulatedProvider};

fn phone(seed: u64) -> MobileFrontend {
    let env = Arc::new(presets::bn_cafe(seed));
    let mut mgr = SensorManager::new();
    for kind in [SensorKind::Temperature, SensorKind::Light, SensorKind::Microphone] {
        mgr.register(SimulatedProvider::new(kind, env.clone()));
    }
    MobileFrontend::new(seed, mgr)
}

proptest! {
    /// Arbitrary sense-time lists (unsorted, duplicated, out of range)
    /// produce exactly one upload per *executed* time and exactly one
    /// completion, regardless of how the clock advances.
    #[test]
    fn uploads_match_executed_times(
        times in proptest::collection::vec(0.0f64..1000.0, 0..12),
        steps in proptest::collection::vec(1.0f64..400.0, 1..6),
    ) {
        let mut p = phone(7);
        p.handle_message(&Message::ScheduleAssignment {
            task_id: 1,
            script: "get_light_readings(2)".into(),
            sense_times: times.clone(),
        });
        let mut uploads = 0usize;
        let mut completions = 0usize;
        let mut now = 0.0;
        for step in steps {
            now += step;
            for m in p.advance_to(now) {
                match m {
                    Message::SensedDataUpload { .. } => uploads += 1,
                    Message::TaskComplete { .. } => completions += 1,
                    _ => {}
                }
            }
        }
        let executed = times.iter().filter(|&&t| t <= now).count();
        prop_assert_eq!(uploads, executed, "times {:?} now {}", times, now);
        let all_done = executed == times.len();
        prop_assert_eq!(completions, usize::from(all_done));
        if all_done {
            prop_assert_eq!(&p.task(1).unwrap().status, &TaskStatus::Finished);
        }
    }

    /// Replacing a live task never causes double execution of a sense
    /// time that already ran.
    #[test]
    fn reassignment_never_reexecutes(
        first in proptest::collection::vec(0.0f64..500.0, 1..8),
        second in proptest::collection::vec(500.0f64..1000.0, 0..8),
        split in 1.0f64..499.0,
    ) {
        let mut p = phone(9);
        p.handle_message(&Message::ScheduleAssignment {
            task_id: 1,
            script: "get_light_readings(1)".into(),
            sense_times: first.clone(),
        });
        let early: usize = p
            .advance_to(split)
            .iter()
            .filter(|m| matches!(m, Message::SensedDataUpload { .. }))
            .count();
        // Server replans with strictly-future times.
        p.handle_message(&Message::ScheduleAssignment {
            task_id: 1,
            script: "get_light_readings(1)".into(),
            sense_times: second.clone(),
        });
        let late: usize = p
            .advance_to(1500.0)
            .iter()
            .filter(|m| matches!(m, Message::SensedDataUpload { .. }))
            .count();
        let expected_early = first.iter().filter(|&&t| t <= split).count();
        prop_assert_eq!(early, expected_early);
        // If the whole first schedule already executed, the task is
        // Finished and the reassignment is (intentionally) ignored —
        // the server would mint a fresh task id for a re-arrival.
        let finished_before_replan = expected_early == first.len();
        let expected_late = if finished_before_replan { 0 } else { second.len() };
        prop_assert_eq!(late, expected_late);
    }

    /// Preference updates through the wire always roundtrip.
    #[test]
    fn preference_updates_apply(disallowed in proptest::collection::vec(0u16..12, 0..12)) {
        let mut p = phone(11);
        let permissions: Vec<sor_proto::SensorPermission> = disallowed
            .iter()
            .map(|&s| sor_proto::SensorPermission { sensor: s, allowed: false })
            .collect();
        p.handle_message(&Message::PreferenceUpdate { token: 11, permissions });
        for &s in &disallowed {
            let kind = SensorKind::from_wire_id(s).unwrap();
            prop_assert!(!p.preferences_mut().is_allowed(kind));
        }
    }
}
