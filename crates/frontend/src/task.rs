//! Task instances (§II-A).
//!
//! "Each incoming task will be served by a task instance … A task
//! instance is a self-contained component, which maintains its own
//! status (e.g, running, waiting for data, etc), call proper API
//! functions to acquire data from sensors, and manages data collected
//! from sensors."

use sor_proto::{SensedRecord, TraceContext};

/// Lifecycle of a task instance, mirroring the paper's status list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Created, waiting for its first sense time.
    Pending,
    /// At least one sense time executed, more remain.
    Running,
    /// All sense times executed.
    Finished,
    /// Script or sensor failure; the message records why.
    Error(String),
}

/// One scheduled sensing task on the phone.
#[derive(Debug, Clone)]
pub struct TaskInstance {
    /// Server-assigned task id.
    pub task_id: u64,
    /// The SenseScript source.
    pub script: String,
    /// Wall-clock times at which to run the script (ascending).
    pub sense_times: Vec<f64>,
    /// Index of the next sense time to execute.
    pub next: usize,
    /// Current status.
    pub status: TaskStatus,
    /// Records collected so far but not yet uploaded.
    pub pending_records: Vec<SensedRecord>,
    /// Causal context of the `ScheduleAssignment` that created this
    /// instance (the server's dispatch span); carried back on every
    /// upload so the server can link the cross-device trace.
    pub origin: Option<TraceContext>,
}

impl TaskInstance {
    /// New pending task; sense times are sorted defensively.
    pub fn new(task_id: u64, script: String, mut sense_times: Vec<f64>) -> Self {
        sense_times.sort_by(f64::total_cmp);
        TaskInstance {
            task_id,
            script,
            sense_times,
            next: 0,
            status: TaskStatus::Pending,
            pending_records: Vec::new(),
            origin: None,
        }
    }

    /// The same instance with its originating trace context attached.
    pub fn with_origin(mut self, origin: Option<TraceContext>) -> Self {
        self.origin = origin;
        self
    }

    /// The next due sense time, if any.
    pub fn next_due(&self) -> Option<f64> {
        self.sense_times.get(self.next).copied()
    }

    /// Whether the task has executed everything.
    pub fn is_done(&self) -> bool {
        matches!(self.status, TaskStatus::Finished | TaskStatus::Error(_))
    }

    /// Marks one sense time executed and updates status.
    pub fn advance(&mut self) {
        self.next += 1;
        self.status = if self.next >= self.sense_times.len() {
            TaskStatus::Finished
        } else {
            TaskStatus::Running
        };
    }

    /// Takes the pending records for upload.
    pub fn drain_records(&mut self) -> Vec<SensedRecord> {
        std::mem::take(&mut self.pending_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = TaskInstance::new(1, "x = 1".into(), vec![20.0, 10.0]);
        assert_eq!(t.status, TaskStatus::Pending);
        assert_eq!(t.next_due(), Some(10.0)); // sorted
        t.advance();
        assert_eq!(t.status, TaskStatus::Running);
        assert_eq!(t.next_due(), Some(20.0));
        t.advance();
        assert_eq!(t.status, TaskStatus::Finished);
        assert!(t.is_done());
        assert_eq!(t.next_due(), None);
    }

    #[test]
    fn empty_schedule_finishes_on_first_advance_check() {
        let t = TaskInstance::new(2, "".into(), vec![]);
        assert_eq!(t.next_due(), None);
        assert!(!t.is_done()); // still Pending until the manager sweeps it
    }

    #[test]
    fn drain_takes_all_records() {
        let mut t = TaskInstance::new(3, "".into(), vec![1.0]);
        t.pending_records.push(SensedRecord {
            timestamp: 1.0,
            window: 0.5,
            sensor: 0,
            values: vec![1.0],
        });
        assert_eq!(t.drain_records().len(), 1);
        assert!(t.pending_records.is_empty());
    }
}
