//! The Local Preference Manager (§II-A).
//!
//! "SOR also allows a user to specify how sensors on his/her phone can
//! be used to participate in sensing activities. For example, a user may
//! not want to expose his/her exact locations to our system, then he/she
//! can disallow the phone to return locations provided by GPS."

use std::collections::HashSet;

use sor_proto::SensorPermission;
use sor_sensors::SensorKind;

/// Per-sensor opt-outs. Everything is allowed unless disallowed.
#[derive(Debug, Clone, Default)]
pub struct LocalPreferenceManager {
    disallowed: HashSet<SensorKind>,
}

impl LocalPreferenceManager {
    /// All sensors allowed.
    pub fn new() -> Self {
        LocalPreferenceManager::default()
    }

    /// Disallows a sensor.
    pub fn disallow(&mut self, kind: SensorKind) {
        self.disallowed.insert(kind);
    }

    /// Re-allows a sensor.
    pub fn allow(&mut self, kind: SensorKind) {
        self.disallowed.remove(&kind);
    }

    /// Whether the user permits this sensor.
    pub fn is_allowed(&self, kind: SensorKind) -> bool {
        !self.disallowed.contains(&kind)
    }

    /// The current opt-out list, for transmission to the server as a
    /// [`sor_proto::Message::PreferenceUpdate`].
    pub fn permissions(&self) -> Vec<SensorPermission> {
        let mut v: Vec<SensorPermission> = SensorKind::ALL
            .iter()
            .map(|&k| SensorPermission { sensor: k.wire_id(), allowed: self.is_allowed(k) })
            .collect();
        v.sort_by_key(|p| p.sensor);
        v
    }

    /// Applies permissions received in a preference message (e.g. the
    /// phone owner edited settings in the app UI).
    pub fn apply(&mut self, permissions: &[SensorPermission]) {
        for p in permissions {
            if let Some(kind) = SensorKind::from_wire_id(p.sensor) {
                if p.allowed {
                    self.allow(kind);
                } else {
                    self.disallow(kind);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_everything() {
        let p = LocalPreferenceManager::new();
        for k in SensorKind::ALL {
            assert!(p.is_allowed(k));
        }
    }

    #[test]
    fn disallow_and_reallow() {
        let mut p = LocalPreferenceManager::new();
        p.disallow(SensorKind::Gps);
        assert!(!p.is_allowed(SensorKind::Gps));
        assert!(p.is_allowed(SensorKind::Light));
        p.allow(SensorKind::Gps);
        assert!(p.is_allowed(SensorKind::Gps));
    }

    #[test]
    fn permissions_roundtrip_through_apply() {
        let mut a = LocalPreferenceManager::new();
        a.disallow(SensorKind::Gps);
        a.disallow(SensorKind::Microphone);
        let mut b = LocalPreferenceManager::new();
        b.apply(&a.permissions());
        assert!(!b.is_allowed(SensorKind::Gps));
        assert!(!b.is_allowed(SensorKind::Microphone));
        assert!(b.is_allowed(SensorKind::Light));
    }

    #[test]
    fn apply_ignores_unknown_wire_ids() {
        let mut p = LocalPreferenceManager::new();
        p.apply(&[SensorPermission { sensor: 999, allowed: false }]);
        for k in SensorKind::ALL {
            assert!(p.is_allowed(k));
        }
    }
}
