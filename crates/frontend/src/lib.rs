//! The SOR mobile frontend, simulated in-process.
//!
//! Fig. 3 of the paper: a Message Handler talks HTTP+binary to the
//! sensing server; incoming schedule assignments become *task
//! instances* tracked by the Sensing Task Manager; each task runs its
//! SenseScript through the Script Interpreter, whose data-acquisition
//! calls are routed by the Sensor Manager to per-sensor Providers; the
//! Local Preference Manager lets the phone's owner veto individual
//! sensors (e.g. never expose GPS fixes).
//!
//! This crate wires those exact components: [`sor_proto`] is the message
//! handler's codec, [`sor_script`] the interpreter, [`sor_sensors`] the
//! sensor manager/providers, and [`MobileFrontend`] the task manager
//! that drives scripts at their scheduled sense times and emits
//! [`sor_proto::Message::SensedDataUpload`]s.
//!
//! # Example
//!
//! ```
//! use sor_frontend::MobileFrontend;
//! use sor_sensors::environment::presets;
//! use sor_sensors::{SensorKind, SensorManager, SimulatedProvider};
//! use sor_proto::Message;
//! use std::sync::Arc;
//!
//! let shop = Arc::new(presets::starbucks(1));
//! let mut mgr = SensorManager::new();
//! mgr.register(SimulatedProvider::new(SensorKind::Microphone, shop));
//! let mut phone = MobileFrontend::new(7, mgr);
//!
//! phone.handle_message(&Message::ScheduleAssignment {
//!     task_id: 1,
//!     script: "get_noise_readings(3)".into(),
//!     sense_times: vec![10.0, 20.0],
//! });
//! let outgoing = phone.advance_to(25.0);
//! // Two sense times -> two uploads, plus the completion notice.
//! assert_eq!(outgoing.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod phone;
pub mod preferences;
pub mod task;

pub use phone::MobileFrontend;
// Re-exported so deployments (the sim world) can share one compilation
// cache across a phone fleet without depending on `sor-script` directly.
pub use preferences::LocalPreferenceManager;
pub use sor_script::ScriptCache;
pub use task::{TaskInstance, TaskStatus};
