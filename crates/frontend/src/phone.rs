//! The phone: message handling, the task manager loop, and the binding
//! of SenseScript data-acquisition functions to the sensor manager.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::Arc;

use sor_obs::{Recorder, SpaceSaving, SpanId};
use sor_proto::{Message, SensedRecord, TraceContext};
use sor_script::analysis::{analyze, analyze_block, CapabilitySet, Cost};
use sor_script::interp::DEFAULT_BUDGET;
use sor_script::optimize::optimize;
use sor_script::parser::parse;
use sor_script::{CacheOutcome, HostRegistry, Interpreter, Prepared, ScriptCache, Value, Vm};
use sor_sensors::{SensorKind, SensorManager};

use crate::preferences::LocalPreferenceManager;
use crate::task::{TaskInstance, TaskStatus};

/// A simulated participating smartphone.
pub struct MobileFrontend {
    token: u64,
    manager: Arc<SensorManager>,
    prefs: LocalPreferenceManager,
    tasks: Vec<TaskInstance>,
    now: f64,
    recorder: Recorder,
    script_opt: bool,
    script_vm: bool,
    /// Compilation cache for the bytecode path. Defaults to a private
    /// per-phone cache; the simulation world replaces it with one
    /// shared handle so the whole fleet compiles each script once.
    script_cache: ScriptCache,
    /// O(k) heavy-hitter sketch over this phone's script runs, keyed by
    /// task and weighted by instructions executed — bounded per-user
    /// state no matter how many tasks the phone churns through.
    hot_scripts: SpaceSaving,
}

impl std::fmt::Debug for MobileFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileFrontend")
            .field("token", &self.token)
            .field("now", &self.now)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

impl MobileFrontend {
    /// A phone with the given device token and sensor stack.
    ///
    /// The script optimizer defaults to the `SOR_SCRIPT_OPT`
    /// environment variable (`1`/`true`/`on` enables it); use
    /// [`MobileFrontend::set_script_optimizer`] to override per phone.
    /// The bytecode engine likewise defaults to `SOR_SCRIPT_VM`; see
    /// [`MobileFrontend::set_script_vm`].
    pub fn new(token: u64, manager: SensorManager) -> Self {
        let knob = |name: &str| {
            std::env::var(name)
                .map(|v| matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on"))
                .unwrap_or(false)
        };
        MobileFrontend {
            token,
            manager: Arc::new(manager),
            prefs: LocalPreferenceManager::new(),
            tasks: Vec::new(),
            now: 0.0,
            recorder: Recorder::disabled(),
            script_opt: knob("SOR_SCRIPT_OPT"),
            script_vm: knob("SOR_SCRIPT_VM"),
            script_cache: ScriptCache::new(),
            hot_scripts: SpaceSaving::new(8),
        }
    }

    /// The phone's hot-script sketch: which tasks burned the most
    /// interpreter instructions on this device (top-8, O(k) memory).
    pub fn hot_scripts(&self) -> &SpaceSaving {
        &self.hot_scripts
    }

    /// Enables or disables the AST optimizer for script runs. When on,
    /// scripts execute through [`sor_script::optimize`] (constant
    /// folding, dead-branch pruning, dead-store elimination) and the
    /// rewrite counts plus statically proven instruction savings are
    /// reported under `script.opt_*` metrics.
    pub fn set_script_optimizer(&mut self, on: bool) {
        self.script_opt = on;
    }

    /// Enables or disables the bytecode engine for script runs. When
    /// on, scripts are compiled (through the phone's [`ScriptCache`])
    /// and executed on [`sor_script::Vm`] with the static analyzer's
    /// cost bound wired in as the fuel limit; the tree-walking
    /// interpreter is bypassed entirely. Observable behaviour is
    /// identical — the `optdiff` gate holds values, error kinds and
    /// instruction counts equal across engines.
    pub fn set_script_vm(&mut self, on: bool) {
        self.script_vm = on;
    }

    /// Replaces this phone's compilation cache with a shared handle
    /// (clones of one [`ScriptCache`] share storage), so a fleet of
    /// phones dispatched the same script compiles it exactly once.
    pub fn set_script_cache(&mut self, cache: ScriptCache) {
        self.script_cache = cache;
    }

    /// The phone's script compilation cache handle.
    pub fn script_cache(&self) -> &ScriptCache {
        &self.script_cache
    }

    /// Attaches an observability recorder. Phone-side task
    /// transitions, script runs, and sensor acquisitions are recorded
    /// under `phone.*` / `script.*` names (see DESIGN.md).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The device token.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Current phone clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The phone owner's sensor preferences.
    pub fn preferences_mut(&mut self) -> &mut LocalPreferenceManager {
        &mut self.prefs
    }

    /// All task instances.
    pub fn tasks(&self) -> &[TaskInstance] {
        &self.tasks
    }

    /// Looks up a task.
    pub fn task(&self, task_id: u64) -> Option<&TaskInstance> {
        self.tasks.iter().find(|t| t.task_id == task_id)
    }

    /// The user scans a 2D barcode: produce the participation request
    /// that the Message Handler would POST to the sensing server. The
    /// reported location honours the GPS privacy preference (a
    /// disallowed GPS reports `(0, 0)`, which the server's Participation
    /// Manager will reject as unverifiable).
    pub fn scan_barcode(&self, app_id: u64, budget: u32, stay_seconds: f64) -> Message {
        let (latitude, longitude) = if self.prefs.is_allowed(SensorKind::Gps) {
            match self.manager.acquire(SensorKind::Gps, 1, self.now) {
                Ok(fix) if fix[0].len() >= 2 => (fix[0][0], fix[0][1]),
                _ => (0.0, 0.0),
            }
        } else {
            (0.0, 0.0)
        };
        Message::ParticipationRequest {
            token: self.token,
            app_id,
            latitude,
            longitude,
            budget,
            stay_seconds,
        }
    }

    /// Dispatches one incoming message (the Message Handler's job) and
    /// returns any immediate replies.
    pub fn handle_message(&mut self, msg: &Message) -> Vec<Message> {
        self.handle_message_ctx(msg, None)
    }

    /// [`MobileFrontend::handle_message`] with the causal
    /// [`TraceContext`] recovered from the wire frame: a
    /// `ScheduleAssignment`'s context is pinned to the task instance it
    /// creates, so every later script run and upload links back to the
    /// server's dispatch span.
    pub fn handle_message_ctx(&mut self, msg: &Message, ctx: Option<TraceContext>) -> Vec<Message> {
        match msg {
            Message::ScheduleAssignment { task_id, script, sense_times } => {
                // A re-assignment for a live task replaces its remaining
                // schedule (the server re-plans when participation
                // changes); finished tasks stay finished.
                let fresh = TaskInstance::new(*task_id, script.clone(), sense_times.clone())
                    .with_origin(ctx);
                match self.tasks.iter_mut().find(|t| t.task_id == *task_id) {
                    Some(existing) if !existing.is_done() => {
                        *existing = fresh;
                        self.recorder.count("phone.tasks_reassigned", 1);
                    }
                    Some(_) => {}
                    None => {
                        self.tasks.push(fresh);
                        self.recorder.count("phone.tasks_assigned", 1);
                        self.recorder.event_with("phone.task_assigned", self.now, || {
                            format!("task={task_id} sense_times={}", sense_times.len())
                        });
                    }
                }
                self.update_queue_gauges();
                Vec::new()
            }
            Message::WakeUp { token } if *token == self.token => {
                vec![Message::Ping { token: self.token, uptime_ms: (self.now * 1000.0) as u64 }]
            }
            Message::PreferenceUpdate { token, permissions } if *token == self.token => {
                self.prefs.apply(permissions);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// Advances the phone clock to `t`, executing every task sense time
    /// that falls due; returns the outgoing messages (uploads and
    /// completion notices).
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards.
    pub fn advance_to(&mut self, t: f64) -> Vec<Message> {
        self.advance_to_ctx(t).into_iter().map(|(m, _)| m).collect()
    }

    /// [`MobileFrontend::advance_to`], returning each outgoing message
    /// paired with the causal [`TraceContext`] to splice into its wire
    /// frame: the task's origin trace re-parented under the script-run
    /// span that produced the data.
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards.
    pub fn advance_to_ctx(&mut self, t: f64) -> Vec<(Message, Option<TraceContext>)> {
        assert!(t >= self.now, "phone time went backwards: {} -> {t}", self.now);
        self.now = t;
        let mut out = Vec::new();
        let manager = Arc::clone(&self.manager);
        let recorder = self.recorder.clone();
        let engine = EngineConfig {
            script_opt: self.script_opt,
            script_vm: self.script_vm,
            cache: self.script_cache.clone(),
        };
        let allowed: HashSet<SensorKind> =
            SensorKind::ALL.iter().copied().filter(|&k| self.prefs.is_allowed(k)).collect();
        for task in &mut self.tasks {
            if task.is_done() {
                continue;
            }
            while let Some(due) = task.next_due() {
                if due > t {
                    break;
                }
                // The run span hangs off the server's dispatch span (a
                // detached cross-component link, deterministic under
                // any sweep interleaving), tagged with the trace id the
                // wire context carried.
                let parent = task.origin.map_or(SpanId::NONE, |c| SpanId(c.parent_span));
                let span = recorder.span_start_with_parent("phone.script_run", due, parent);
                recorder.span_attr_with(span, "task", || task.task_id.to_string());
                if let Some(c) = task.origin {
                    recorder.span_attr_with(span, "trace_id", || c.trace_id.to_string());
                }
                recorder.count("script.runs_started", 1);
                match execute_script(&task.script, due, &manager, &allowed, &engine) {
                    Ok(run) => {
                        record_script_run(&recorder, span, &run);
                        recorder.span_end(span, due);
                        if recorder.is_enabled() {
                            self.hot_scripts.offer(
                                &format!("task{}", task.task_id),
                                run.instructions_used.max(1),
                            );
                        }
                        task.pending_records.extend(run.records);
                        task.advance();
                        let records = task.drain_records();
                        if !records.is_empty() {
                            let ctx = task.origin.map(|c| c.child(span.0));
                            out.push((
                                Message::SensedDataUpload { task_id: task.task_id, records },
                                ctx,
                            ));
                        }
                    }
                    Err(failure) => {
                        // Cache traffic happened even when the run did
                        // not (e.g. a cached static rejection).
                        if let Some(outcome) = &failure.cache {
                            record_cache_outcome(&recorder, outcome);
                        }
                        recorder.count("script.runs_failed", 1);
                        recorder.span_attr(span, "error", &failure.message);
                        recorder.span_end(span, due);
                        recorder.count("phone.tasks_errored", 1);
                        task.status = TaskStatus::Error(failure.message);
                        let ctx = task.origin.map(|c| c.child(span.0));
                        out.push((Message::TaskComplete { task_id: task.task_id, status: 1 }, ctx));
                        break;
                    }
                }
            }
            if task.status == TaskStatus::Finished {
                out.push((Message::TaskComplete { task_id: task.task_id, status: 0 }, task.origin));
                recorder.count("phone.tasks_finished", 1);
                // Mark so we do not re-announce completion next sweep.
                task.status = TaskStatus::Finished;
            }
            // Empty schedules complete immediately.
            if task.status == TaskStatus::Pending && task.sense_times.is_empty() {
                task.status = TaskStatus::Finished;
                recorder.count("phone.tasks_finished", 1);
                out.push((Message::TaskComplete { task_id: task.task_id, status: 0 }, task.origin));
            }
        }
        // Drop finished tasks that have announced completion... keep them
        // for inspection but avoid duplicate TaskComplete by tracking the
        // announced state through `next`.
        self.update_queue_gauges();
        out
    }

    /// Refreshes the per-task-instance queue-depth gauges
    /// (`phone.task_queue_depth.task<id>`): records buffered on the
    /// phone awaiting upload. Every live instance gets a gauge — the
    /// traced field test asserts the gauge count matches the number of
    /// task instances across all phones.
    fn update_queue_gauges(&self) {
        if !self.recorder.is_enabled() {
            return;
        }
        for task in &self.tasks {
            self.recorder.gauge(
                &format!("phone.task_queue_depth.task{}", task.task_id),
                task.pending_records.len() as f64,
            );
        }
    }
}

/// Data-acquisition vocabulary: script function name → sensor kind.
/// This is the whitelist the interpreter enforces (§II-A).
const ACQUISITION_FNS: &[(&str, SensorKind)] = &[
    ("get_temperature_readings", SensorKind::Temperature),
    ("get_humidity_readings", SensorKind::Humidity),
    ("get_light_readings", SensorKind::Light),
    ("get_noise_readings", SensorKind::Microphone),
    ("get_wifi_readings", SensorKind::WifiRssi),
    ("get_pressure_readings", SensorKind::Pressure),
    ("get_accel_readings", SensorKind::Accelerometer),
    ("get_gps_readings", SensorKind::Gps),
    ("get_compass_readings", SensorKind::Compass),
];

/// Which execution engine a phone runs scripts on, plus the shared
/// compilation cache the bytecode path draws from.
struct EngineConfig {
    script_opt: bool,
    script_vm: bool,
    cache: ScriptCache,
}

/// What one script execution produced, plus the cost evidence the
/// observability layer reports: the engine's exact instruction
/// count and the analyzer's static bound for the same script.
struct ScriptRun {
    records: Vec<SensedRecord>,
    instructions_used: u64,
    /// `analyze`'s static cost bound, when the script is bounded.
    static_bound: Option<u64>,
    /// Optimizer evidence, when the run executed the lowered program.
    opt: Option<OptRun>,
    /// Cache bookkeeping, when the run went through the bytecode VM.
    vm: Option<CacheOutcome>,
}

/// A failed script execution. Carries the cache outcome separately so
/// hit/miss counters survive runs that never produce a `ScriptRun`
/// (static rejections, runtime errors on the VM path).
struct ScriptFailure {
    message: String,
    cache: Option<CacheOutcome>,
}

impl From<String> for ScriptFailure {
    fn from(message: String) -> Self {
        ScriptFailure { message, cache: None }
    }
}

/// What the optimizer did to one script before execution.
struct OptRun {
    /// Individual rewrites applied (folds, prunes, removals).
    rewrites: u64,
    /// `bound(original) - bound(lowered)`, when both are finite: the
    /// statically proven instruction saving.
    bound_saved: Option<u64>,
}

/// Records one successful script run's metrics: instruction usage and
/// the static-bound-over-measured ratio (≥ 1 whenever the analyzer's
/// bound is sound — the regression test in `sor-sim` holds it there).
fn record_script_run(recorder: &Recorder, span: SpanId, run: &ScriptRun) {
    recorder.count("script.instructions_used", run.instructions_used);
    recorder.observe("script.instructions_per_run", run.instructions_used as f64);
    recorder.span_attr_with(span, "instructions", || run.instructions_used.to_string());
    recorder.count("phone.records_acquired", run.records.len() as u64);
    for r in &run.records {
        if let Some(kind) = SensorKind::from_wire_id(r.sensor) {
            recorder.count_labeled("phone.sensor_acquired", kind.metric_label(), 1);
        }
    }
    if let Some(bound) = run.static_bound {
        recorder.span_attr_with(span, "static_bound", || bound.to_string());
        if run.instructions_used > 0 {
            recorder
                .observe("script.bound_over_measured", bound as f64 / run.instructions_used as f64);
        }
    }
    if let Some(opt) = &run.opt {
        recorder.count("script.opt_runs", 1);
        recorder.count("script.opt_rewrites", opt.rewrites);
        recorder.span_attr_with(span, "opt_rewrites", || opt.rewrites.to_string());
        if let Some(saved) = opt.bound_saved {
            recorder.count("script.opt_bound_saved", saved);
        }
    }
    if let Some(outcome) = &run.vm {
        recorder.count("script.vm_runs", 1);
        record_cache_outcome(recorder, outcome);
    }
}

/// Records one compilation-cache lookup's traffic.
fn record_cache_outcome(recorder: &Recorder, outcome: &CacheOutcome) {
    recorder.count(if outcome.hit { "script.cache_hits" } else { "script.cache_misses" }, 1);
    if outcome.compiled {
        recorder.count("script.compile_runs", 1);
    }
    if outcome.evicted {
        recorder.count("script.cache_evictions", 1);
    }
}

/// Builds the host registry binding the data-acquisition vocabulary to
/// the sensor manager and the shared record sink. Engine-agnostic: the
/// same registry drives both the tree-walking interpreter and the
/// bytecode VM.
fn build_host(
    base_time: f64,
    manager: &Arc<SensorManager>,
    allowed: &HashSet<SensorKind>,
    records: &Rc<RefCell<Vec<SensedRecord>>>,
) -> HostRegistry {
    let mut host = HostRegistry::new();

    for &(name, kind) in ACQUISITION_FNS {
        let manager = Arc::clone(manager);
        let records = Rc::clone(records);
        let permitted = allowed.contains(&kind);
        let sample_interval = manager.sample_interval();
        host.register(name, move |ctx, args| {
            if !permitted {
                // Privacy veto: the phone silently returns no data.
                return Ok(Value::Nil);
            }
            let n =
                args.first().and_then(Value::as_number).map(|v| v.max(1.0) as usize).unwrap_or(1);
            let start = base_time + ctx.virtual_time;
            let readings = manager.acquire(kind, n, start).map_err(|e| e.to_string())?;
            let window = n as f64 * sample_interval;
            ctx.virtual_time += window;
            // Record the paper's (t, Δt, d) tuple.
            let flat: Vec<f64> = readings.iter().flatten().copied().collect();
            records.borrow_mut().push(SensedRecord {
                timestamp: start,
                window,
                sensor: kind.wire_id(),
                values: flat,
            });
            // Scripts see scalar streams; multi-axis sensors are exposed
            // as per-sample magnitudes (GPS as altitudes).
            let script_view: Vec<f64> = match kind {
                SensorKind::Accelerometer => readings
                    .iter()
                    .map(|r| (r[0] * r[0] + r[1] * r[1] + r[2] * r[2]).sqrt())
                    .collect(),
                SensorKind::Gps => readings.iter().map(|r| r[2]).collect(),
                _ => readings.iter().map(|r| r[0]).collect(),
            };
            Ok(Value::number_array(&script_view))
        });
    }

    // get_location(): one GPS fix as a {lat, lon, alt} table.
    {
        let manager = Arc::clone(manager);
        let records = Rc::clone(records);
        let permitted = allowed.contains(&SensorKind::Gps);
        host.register("get_location", move |ctx, _args| {
            if !permitted {
                return Ok(Value::Nil);
            }
            let start = base_time + ctx.virtual_time;
            let fix = manager.acquire(SensorKind::Gps, 1, start).map_err(|e| e.to_string())?;
            records.borrow_mut().push(SensedRecord {
                timestamp: start,
                window: 0.0,
                sensor: SensorKind::Gps.wire_id(),
                values: fix[0].clone(),
            });
            let mut hash = std::collections::HashMap::new();
            hash.insert("lat".to_string(), Value::Number(fix[0][0]));
            hash.insert("lon".to_string(), Value::Number(fix[0][1]));
            hash.insert("alt".to_string(), Value::Number(fix[0][2]));
            Ok(Value::table(Vec::new(), hash))
        });
    }

    host
}

/// Runs one script execution at wall-clock `base_time`, returning the
/// records it acquired.
fn execute_script(
    script: &str,
    base_time: f64,
    manager: &Arc<SensorManager>,
    allowed: &HashSet<SensorKind>,
    engine: &EngineConfig,
) -> Result<ScriptRun, ScriptFailure> {
    let records: Rc<RefCell<Vec<SensedRecord>>> = Rc::new(RefCell::new(Vec::new()));
    let host = build_host(base_time, manager, allowed, &records);
    // The phone does not trust the server's admission check: analysis
    // re-runs against the exact host registry this run executes under.
    let caps = CapabilitySet::from_registry(&host);

    if engine.script_vm {
        return execute_on_vm(script, host, records, engine, &caps);
    }

    let mut interp = Interpreter::with_host(host);

    // Pre-execution re-verification. An error-severity finding means
    // the run is statically doomed, so no sensing effort is spent on it.
    let verdict = analyze(script, &caps);
    if verdict.has_errors() {
        let findings: Vec<String> = verdict.errors().map(ToString::to_string).collect();
        return Err(format!("script rejected before execution: {}", findings.join("; ")).into());
    }
    let static_bound = match verdict.cost {
        Cost::Bounded(n) => Some(n),
        Cost::Unbounded => None,
    };

    // Behind the optimizer knob, the lowered AST runs instead of the
    // source; the lowering is semantics-preserving (see `optdiff`), so
    // the original's static bound still dominates the measured count.
    let (run_result, opt) = if engine.script_opt {
        // `verdict` carried no E001, so the script is known to parse.
        let block = parse(script).map_err(|e| e.to_string())?;
        let (lowered, stats) = optimize(&block);
        let bound_saved = match (static_bound, analyze_block(&lowered, &caps, verdict.budget).cost)
        {
            (Some(orig), Cost::Bounded(opt)) => Some(orig.saturating_sub(opt)),
            _ => None,
        };
        let opt = OptRun { rewrites: stats.total() as u64, bound_saved };
        (interp.run_block(&lowered).map_err(|e| e.to_string()), Some(opt))
    } else {
        (interp.run(script).map_err(|e| e.to_string()), None)
    };
    let instructions_used = interp.instructions_used();
    drop(interp); // releases the host closures' Rc clones
    run_result?;
    let records = Rc::try_unwrap(records)
        .expect("all other Rc holders dropped with the interpreter")
        .into_inner();
    Ok(ScriptRun { records, instructions_used, static_bound, opt, vm: None })
}

/// The bytecode path: the analyze→optimize→compile pipeline runs (or
/// hits) the shared [`ScriptCache`], then the module executes on the
/// VM with the compiled program's static cost bound wired in as the
/// fuel limit.
fn execute_on_vm(
    script: &str,
    host: HostRegistry,
    records: Rc<RefCell<Vec<SensedRecord>>>,
    engine: &EngineConfig,
    caps: &CapabilitySet,
) -> Result<ScriptRun, ScriptFailure> {
    let (prepared, outcome) = engine.cache.get_or_prepare(script, engine.script_opt, caps);
    let prepared = match prepared {
        Prepared::Ready(p) => p,
        // Cached static rejection: same refusal (and message) as the
        // tree-walking path, without re-running the analyzer.
        Prepared::Rejected(findings) => {
            return Err(ScriptFailure {
                message: format!("script rejected before execution: {findings}"),
                cache: Some(outcome),
            });
        }
    };

    let mut vm = Vm::with_host(host);
    // Fuel: the analyzer's bound for the program as compiled, clamped
    // to the interpreter's default budget. The bound is sound (it
    // dominates any dynamic instruction count), so a script the
    // tree-walker completes can never run out of fuel here — the
    // vm_corpus suite pins that across the whole lint corpus.
    vm.set_budget(prepared.exec_bound.unwrap_or(u64::MAX).min(DEFAULT_BUDGET));
    let run_result = vm.run_module(&prepared.module);
    let instructions_used = vm.instructions_used();
    drop(vm); // releases the host closures' Rc clones
    if let Err(e) = run_result {
        return Err(ScriptFailure { message: e.to_string(), cache: Some(outcome) });
    }
    let records =
        Rc::try_unwrap(records).expect("all other Rc holders dropped with the vm").into_inner();
    let opt = prepared
        .optimized
        .then(|| OptRun { rewrites: prepared.opt_rewrites, bound_saved: prepared.bound_saved });
    Ok(ScriptRun {
        records,
        instructions_used,
        static_bound: prepared.static_bound,
        opt,
        vm: Some(outcome),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_sensors::environment::presets;
    use sor_sensors::SimulatedProvider;

    fn phone() -> MobileFrontend {
        let env = Arc::new(presets::bn_cafe(3));
        let mut mgr = SensorManager::new();
        for kind in [
            SensorKind::Temperature,
            SensorKind::Light,
            SensorKind::Microphone,
            SensorKind::WifiRssi,
            SensorKind::Gps,
            SensorKind::Accelerometer,
        ] {
            mgr.register(SimulatedProvider::new(kind, env.clone()));
        }
        MobileFrontend::new(42, mgr)
    }

    fn assign(phone: &mut MobileFrontend, id: u64, script: &str, times: Vec<f64>) {
        phone.handle_message(&Message::ScheduleAssignment {
            task_id: id,
            script: script.into(),
            sense_times: times,
        });
    }

    #[test]
    fn schedule_creates_task() {
        let mut p = phone();
        assign(&mut p, 1, "get_light_readings(2)", vec![5.0]);
        assert_eq!(p.tasks().len(), 1);
        assert_eq!(p.task(1).unwrap().status, TaskStatus::Pending);
    }

    #[test]
    fn due_times_produce_uploads_and_completion() {
        let mut p = phone();
        assign(&mut p, 1, "get_light_readings(3)", vec![10.0, 20.0]);
        let out = p.advance_to(15.0);
        assert_eq!(out.len(), 1, "one sense time due: {out:?}");
        let Message::SensedDataUpload { task_id, records } = &out[0] else {
            panic!("expected upload, got {out:?}")
        };
        assert_eq!(*task_id, 1);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].values.len(), 3);
        assert_eq!(records[0].sensor, SensorKind::Light.wire_id());

        let out = p.advance_to(30.0);
        assert_eq!(out.len(), 2, "second upload + completion: {out:?}");
        assert!(matches!(out[1], Message::TaskComplete { task_id: 1, status: 0 }));
        assert_eq!(p.task(1).unwrap().status, TaskStatus::Finished);
    }

    #[test]
    fn multi_sensor_script_collects_all_records() {
        let mut p = phone();
        let script = r#"
            get_temperature_readings(2)
            get_noise_readings(4)
            get_location()
        "#;
        assign(&mut p, 7, script, vec![1.0]);
        let out = p.advance_to(2.0);
        let Message::SensedDataUpload { records, .. } = &out[0] else { panic!() };
        assert_eq!(records.len(), 3);
        let kinds: Vec<u16> = records.iter().map(|r| r.sensor).collect();
        assert!(kinds.contains(&SensorKind::Temperature.wire_id()));
        assert!(kinds.contains(&SensorKind::Microphone.wire_id()));
        assert!(kinds.contains(&SensorKind::Gps.wire_id()));
    }

    #[test]
    fn script_can_process_readings() {
        let mut p = phone();
        let script = r#"
            local t = get_temperature_readings(5)
            assert(#t == 5)
            local m = mean(t)
            assert(m > 50 and m < 90, "implausible cafe temperature: " .. m)
        "#;
        assign(&mut p, 2, script, vec![3.0]);
        let out = p.advance_to(5.0);
        assert!(matches!(out.last(), Some(Message::TaskComplete { status: 0, .. })));
        assert_eq!(p.task(2).unwrap().status, TaskStatus::Finished);
    }

    #[test]
    fn optimizer_knob_preserves_results_and_reports_savings() {
        let script = r#"
            local t = get_temperature_readings(4)
            local scale = 2 * 3 - 5
            if 1 > 2 then
                t = nil
            end
            return mean(t) * scale
        "#;
        // Same script, optimizer off vs on: identical upload payloads,
        // strictly fewer instructions, and `script.opt_*` metrics.
        let mut plain = phone();
        let rec_plain = Recorder::enabled();
        plain.set_recorder(rec_plain.clone());
        assign(&mut plain, 1, script, vec![1.0]);
        let out_plain = plain.advance_to(2.0);

        let mut opt = phone();
        let rec_opt = Recorder::enabled();
        opt.set_recorder(rec_opt.clone());
        opt.set_script_optimizer(true);
        assign(&mut opt, 1, script, vec![1.0]);
        let out_opt = opt.advance_to(2.0);

        let Message::SensedDataUpload { records: plain_records, .. } = &out_plain[0] else {
            panic!("{out_plain:?}")
        };
        let Message::SensedDataUpload { records: opt_records, .. } = &out_opt[0] else {
            panic!("{out_opt:?}")
        };
        assert_eq!(plain_records, opt_records, "optimizer changed the sensed data");
        assert_eq!(opt.task(1).unwrap().status, TaskStatus::Finished);

        assert_eq!(rec_plain.counter("script.opt_runs"), 0);
        assert_eq!(rec_opt.counter("script.opt_runs"), 1);
        assert!(rec_opt.counter("script.opt_rewrites") > 0, "folds + pruned branch expected");
        assert!(rec_opt.counter("script.opt_bound_saved") > 0);
        assert!(
            rec_opt.counter("script.instructions_used")
                < rec_plain.counter("script.instructions_used"),
            "optimized run should execute fewer instructions"
        );
    }

    #[test]
    fn vm_knob_preserves_results_and_counts_cache_traffic() {
        let script = r#"
            local t = get_temperature_readings(4)
            local sum = 0
            for i = 1, #t do
                sum = sum + t[i]
            end
            return sum / #t
        "#;
        let mut tree = phone();
        let rec_tree = Recorder::enabled();
        tree.set_recorder(rec_tree.clone());
        assign(&mut tree, 1, script, vec![1.0, 2.0, 3.0]);
        let out_tree = tree.advance_to(4.0);

        let mut vm = phone();
        let rec_vm = Recorder::enabled();
        vm.set_recorder(rec_vm.clone());
        vm.set_script_vm(true);
        assign(&mut vm, 1, script, vec![1.0, 2.0, 3.0]);
        let out_vm = vm.advance_to(4.0);

        assert_eq!(out_tree, out_vm, "engines must produce identical uploads and completions");
        assert_eq!(
            rec_tree.counter("script.instructions_used"),
            rec_vm.counter("script.instructions_used"),
            "instruction counts must agree across engines"
        );

        assert_eq!(rec_tree.counter("script.vm_runs"), 0);
        assert_eq!(rec_vm.counter("script.vm_runs"), 3);
        // One compile on first dispatch, then cache hits.
        assert_eq!(rec_vm.counter("script.cache_misses"), 1);
        assert_eq!(rec_vm.counter("script.compile_runs"), 1);
        assert_eq!(rec_vm.counter("script.cache_hits"), 2);
        assert_eq!(rec_vm.counter("script.cache_evictions"), 0);
    }

    #[test]
    fn fleet_shares_one_cache_across_phones() {
        let script = "return mean(get_light_readings(3))";
        let cache = ScriptCache::new();
        let rec = Recorder::enabled();
        let mut hits = 0u64;
        for token in 0..4 {
            let mut p = phone();
            p.set_recorder(rec.clone());
            p.set_script_vm(true);
            p.set_script_cache(cache.clone());
            assign(&mut p, 100 + token, script, vec![1.0]);
            p.advance_to(2.0);
            let stats = cache.stats();
            hits = stats.hits;
            assert_eq!(stats.compiles, 1, "fleet must compile the script once");
        }
        assert_eq!(hits, 3, "phones 2..4 must hit the first phone's compilation");
        assert_eq!(rec.counter("script.cache_hits"), 3);
        assert_eq!(rec.counter("script.compile_runs"), 1);
    }

    #[test]
    fn optimizer_flip_misses_the_cache() {
        let script = "local scale = 2 * 3\nreturn scale";
        let mut p = phone();
        p.set_script_vm(true);
        assign(&mut p, 1, script, vec![1.0]);
        p.advance_to(2.0);
        // Flip the optimizer knob: the cached unoptimized module must
        // not serve the optimized configuration.
        p.set_script_optimizer(true);
        assign(&mut p, 2, script, vec![3.0]);
        p.advance_to(4.0);
        let stats = p.script_cache().stats();
        assert_eq!(stats.misses, 2, "opt flip must recompile");
        assert_eq!(stats.hits, 0);
        assert_eq!(p.script_cache().len(), 2);
    }

    #[test]
    fn vm_rejection_matches_tree_walker_and_counts_cache() {
        let rec = Recorder::enabled();
        let mut p = phone();
        p.set_recorder(rec.clone());
        p.set_script_vm(true);
        assign(&mut p, 8, "get_light_readings(1)\nsteal_contacts()", vec![1.0]);
        let out = p.advance_to(2.0);
        assert!(!out.iter().any(|m| matches!(m, Message::SensedDataUpload { .. })), "{out:?}");
        let TaskStatus::Error(msg) = &p.task(8).unwrap().status else { panic!() };
        assert!(msg.contains("rejected before execution"), "{msg}");
        // The rejection itself is cached; a re-dispatch hits it.
        assign(&mut p, 9, "get_light_readings(1)\nsteal_contacts()", vec![3.0]);
        p.advance_to(4.0);
        assert_eq!(rec.counter("script.cache_misses"), 1);
        assert_eq!(rec.counter("script.cache_hits"), 1);
        assert_eq!(rec.counter("script.compile_runs"), 0, "rejections never compile");
        assert_eq!(rec.counter("script.vm_runs"), 0, "no run ever started");
        assert_eq!(rec.counter("script.runs_failed"), 2);
    }

    #[test]
    fn vm_metric_names_conform_to_convention() {
        let rec = Recorder::enabled();
        let mut p = phone();
        p.set_recorder(rec.clone());
        p.set_script_vm(true);
        assign(&mut p, 1, "return mean(get_light_readings(2))", vec![1.0, 2.0]);
        p.advance_to(3.0);
        let m = rec.metrics_snapshot().unwrap();
        for required in
            ["script.vm_runs", "script.compile_runs", "script.cache_misses", "script.cache_hits"]
        {
            assert!(m.counters().any(|(k, _)| k == required), "missing counter {required}");
        }
        let violations = sor_obs::naming::audit(&m);
        assert!(violations.is_empty(), "nonconforming names:\n{}", violations.join("\n"));
    }

    #[test]
    fn vm_runtime_error_fails_the_task_like_the_tree_walker() {
        let mut p = phone();
        p.set_script_vm(true);
        assign(&mut p, 4, "error('sensor exploded')", vec![1.0]);
        let out = p.advance_to(2.0);
        assert!(matches!(out[0], Message::TaskComplete { task_id: 4, status: 1 }));
        let TaskStatus::Error(msg) = &p.task(4).unwrap().status else { panic!() };
        assert!(msg.contains("sensor exploded"), "{msg}");
    }

    #[test]
    fn vm_with_optimizer_reports_opt_metrics() {
        let rec = Recorder::enabled();
        let mut p = phone();
        p.set_recorder(rec.clone());
        p.set_script_vm(true);
        p.set_script_optimizer(true);
        let script = r#"
            local t = get_temperature_readings(4)
            local scale = 2 * 3 - 5
            if 1 > 2 then
                t = nil
            end
            return mean(t) * scale
        "#;
        assign(&mut p, 1, script, vec![1.0]);
        let out = p.advance_to(2.0);
        assert!(matches!(out.last(), Some(Message::TaskComplete { status: 0, .. })), "{out:?}");
        assert_eq!(rec.counter("script.opt_runs"), 1);
        assert!(rec.counter("script.opt_rewrites") > 0);
        assert!(rec.counter("script.opt_bound_saved") > 0);
        assert_eq!(rec.counter("script.vm_runs"), 1);
    }

    #[test]
    fn privacy_veto_suppresses_gps_data() {
        let mut p = phone();
        p.preferences_mut().disallow(SensorKind::Gps);
        let script = r#"
            local loc = get_location()
            assert(loc == nil, "location must be vetoed")
            get_light_readings(1)
        "#;
        assign(&mut p, 3, script, vec![1.0]);
        let out = p.advance_to(2.0);
        let Message::SensedDataUpload { records, .. } = &out[0] else { panic!("{out:?}") };
        assert!(records.iter().all(|r| r.sensor != SensorKind::Gps.wire_id()));
    }

    #[test]
    fn barcode_scan_reports_location_unless_vetoed() {
        let mut p = phone();
        let Message::ParticipationRequest { latitude, token, budget, .. } =
            p.scan_barcode(5, 17, 1800.0)
        else {
            panic!()
        };
        assert_eq!(token, 42);
        assert_eq!(budget, 17);
        assert!((latitude - 43.0445).abs() < 0.01);

        p.preferences_mut().disallow(SensorKind::Gps);
        let Message::ParticipationRequest { latitude, .. } = p.scan_barcode(5, 17, 1800.0) else {
            panic!()
        };
        assert_eq!(latitude, 0.0);
    }

    #[test]
    fn script_error_marks_task_failed() {
        let mut p = phone();
        assign(&mut p, 4, "error('sensor exploded')", vec![1.0]);
        let out = p.advance_to(2.0);
        assert!(matches!(out[0], Message::TaskComplete { task_id: 4, status: 1 }));
        assert!(matches!(p.task(4).unwrap().status, TaskStatus::Error(_)));
    }

    #[test]
    fn unsupported_sensor_fails_the_task() {
        let mut p = phone();
        // Humidity has no provider in this phone's stack.
        assign(&mut p, 5, "get_humidity_readings(1)", vec![1.0]);
        let out = p.advance_to(2.0);
        assert!(matches!(out[0], Message::TaskComplete { task_id: 5, status: 1 }));
    }

    #[test]
    fn forbidden_function_fails_the_task() {
        let mut p = phone();
        assign(&mut p, 6, "steal_contacts()", vec![1.0]);
        let out = p.advance_to(2.0);
        assert!(matches!(out[0], Message::TaskComplete { status: 1, .. }));
        let TaskStatus::Error(msg) = &p.task(6).unwrap().status else { panic!() };
        assert!(msg.contains("non-whitelisted"), "{msg}");
    }

    #[test]
    fn standard_sensing_matches_phone_registry() {
        // The server verifies admissions against
        // `CapabilitySet::standard_sensing()`; the phone re-verifies
        // against its real registry. This pins the two vocabularies
        // together so the server can never admit a script the phone
        // will reject (or vice versa).
        let names: Vec<String> = {
            let mut v: Vec<String> = ACQUISITION_FNS.iter().map(|&(n, _)| n.to_string()).collect();
            v.push("get_location".to_string());
            v.sort();
            v
        };
        let standard: Vec<String> =
            CapabilitySet::standard_sensing().names().map(String::from).collect();
        assert_eq!(standard, names);
    }

    #[test]
    fn statically_rejected_script_spends_no_sensing_effort() {
        let mut p = phone();
        assign(&mut p, 8, "get_light_readings(1)\nsteal_contacts()", vec![1.0]);
        let out = p.advance_to(2.0);
        // The analyzer rejects before execution, so even the
        // whitelisted first line must not have sampled anything.
        assert!(!out.iter().any(|m| matches!(m, Message::SensedDataUpload { .. })), "{out:?}");
        assert!(matches!(out[0], Message::TaskComplete { task_id: 8, status: 1 }));
        let TaskStatus::Error(msg) = &p.task(8).unwrap().status else { panic!() };
        assert!(msg.contains("rejected before execution"), "{msg}");
    }

    #[test]
    fn reassignment_replaces_live_task_schedule() {
        let mut p = phone();
        assign(&mut p, 20, "get_light_readings(1)", vec![10.0, 20.0, 30.0]);
        p.advance_to(12.0);
        // Server replans: only one future reading now.
        assign(&mut p, 20, "get_light_readings(1)", vec![25.0]);
        let out = p.advance_to(40.0);
        let uploads = out
            .iter()
            .filter(|m| matches!(m, Message::SensedDataUpload { task_id: 20, .. }))
            .count();
        assert_eq!(uploads, 1, "{out:?}");
        assert_eq!(p.task(20).unwrap().status, TaskStatus::Finished);
    }

    #[test]
    fn wakeup_gets_ping_for_matching_token() {
        let mut p = phone();
        let replies = p.handle_message(&Message::WakeUp { token: 42 });
        assert!(matches!(replies[0], Message::Ping { token: 42, .. }));
        assert!(p.handle_message(&Message::WakeUp { token: 99 }).is_empty());
    }

    #[test]
    fn concurrent_tasks_execute_independently() {
        let mut p = phone();
        assign(&mut p, 10, "get_light_readings(1)", vec![5.0, 15.0]);
        assign(&mut p, 11, "get_noise_readings(1)", vec![7.0]);
        let out = p.advance_to(20.0);
        let uploads_10 = out
            .iter()
            .filter(|m| matches!(m, Message::SensedDataUpload { task_id: 10, .. }))
            .count();
        let uploads_11 = out
            .iter()
            .filter(|m| matches!(m, Message::SensedDataUpload { task_id: 11, .. }))
            .count();
        assert_eq!(uploads_10, 2);
        assert_eq!(uploads_11, 1);
    }

    #[test]
    fn records_are_time_stamped_at_due_time() {
        let mut p = phone();
        assign(&mut p, 12, "get_light_readings(1)", vec![33.0]);
        let out = p.advance_to(50.0);
        let Message::SensedDataUpload { records, .. } = &out[0] else { panic!() };
        assert_eq!(records[0].timestamp, 33.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn phone_time_monotonic() {
        let mut p = phone();
        p.advance_to(10.0);
        p.advance_to(5.0);
    }

    #[test]
    fn recorder_observes_script_runs_and_transitions() {
        let rec = Recorder::enabled();
        let mut p = phone();
        p.set_recorder(rec.clone());
        assign(&mut p, 1, "get_light_readings(2)\nget_noise_readings(1)", vec![5.0, 15.0]);
        p.advance_to(20.0);

        assert_eq!(rec.counter("phone.tasks_assigned"), 1);
        assert_eq!(rec.counter("phone.tasks_finished"), 1);
        assert_eq!(rec.counter("script.runs_started"), 2);
        assert_eq!(rec.counter("phone.records_acquired"), 4);
        assert_eq!(rec.counter("phone.sensor_acquired.light"), 2);
        assert_eq!(rec.counter("phone.sensor_acquired.microphone"), 2);
        assert!(rec.counter("script.instructions_used") > 0);

        // The bound/measured ratio was observed and is sound (≥ 1).
        let m = rec.metrics_snapshot().unwrap();
        let ratio = m.histogram("script.bound_over_measured").expect("ratio recorded");
        assert_eq!(ratio.count(), 2);
        assert!(ratio.min().unwrap() >= 1.0, "static bound below measured: {:?}", ratio.min());

        // Spans carry the instruction attribute at the due sim-times.
        let trace = rec.trace_snapshot().unwrap();
        let runs: Vec<_> = trace.spans_named("phone.script_run").collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].start, 5.0);
        assert_eq!(runs[1].start, 15.0);
        assert!(runs[0].attrs.iter().any(|(k, _)| k == "instructions"));
    }

    #[test]
    fn recorder_counts_failed_runs() {
        let rec = Recorder::enabled();
        let mut p = phone();
        p.set_recorder(rec.clone());
        assign(&mut p, 2, "error('sensor exploded')", vec![1.0]);
        p.advance_to(2.0);
        assert_eq!(rec.counter("script.runs_failed"), 1);
        assert_eq!(rec.counter("phone.tasks_errored"), 1);
        assert_eq!(rec.counter("phone.tasks_finished"), 0);
    }

    #[test]
    fn assignment_context_parents_runs_and_rides_on_uploads() {
        let rec = Recorder::enabled();
        let mut p = phone();
        p.set_recorder(rec.clone());
        // Simulate the server's dispatch span being span 90 of trace 8.
        let origin = TraceContext { trace_id: 8, parent_span: 90 };
        p.handle_message_ctx(
            &Message::ScheduleAssignment {
                task_id: 7,
                script: "get_light_readings(1)".into(),
                sense_times: vec![5.0],
            },
            Some(origin),
        );
        let out = p.advance_to_ctx(10.0);
        let (Message::SensedDataUpload { .. }, Some(upload_ctx)) = &out[0] else {
            panic!("expected traced upload, got {out:?}");
        };
        assert_eq!(upload_ctx.trace_id, 8, "trace id propagates");
        let trace = rec.trace_snapshot().unwrap();
        let run = trace.spans_named("phone.script_run").next().unwrap();
        assert_eq!(run.parent, Some(SpanId(90)), "run hangs off the dispatch span");
        assert!(run.attrs.iter().any(|(k, v)| k == "trace_id" && v == "8"));
        assert_eq!(upload_ctx.parent_span, run.id.0, "upload re-parented under the run");
        // The completion notice carries the origin context too.
        let (Message::TaskComplete { .. }, Some(done_ctx)) = &out[1] else { panic!("{out:?}") };
        assert_eq!(done_ctx.trace_id, 8);
    }

    #[test]
    fn queue_depth_gauges_cover_every_task_instance() {
        let rec = Recorder::enabled();
        let mut p = phone();
        p.set_recorder(rec.clone());
        assign(&mut p, 1, "get_light_readings(1)", vec![5.0]);
        assign(&mut p, 2, "get_noise_readings(1)", vec![7.0, 30.0]);
        p.advance_to(10.0);
        let m = rec.metrics_snapshot().unwrap();
        let gauges: Vec<&str> = m
            .gauges()
            .filter(|(k, _)| k.starts_with("phone.task_queue_depth."))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(gauges, vec!["phone.task_queue_depth.task1", "phone.task_queue_depth.task2"]);
        assert_eq!(gauges.len(), p.tasks().len());
    }
}
