//! Property tests for SenseScript: the toolchain must never panic on
//! arbitrary input, and evaluation must be deterministic.

use proptest::prelude::*;
use sor_script::{Interpreter, Value};

proptest! {
    /// The lexer+parser never panic, whatever bytes arrive (scripts come
    /// over the network from the sensing server).
    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = sor_script::parser::parse(&src);
    }

    /// Structured-ish garbage: random tokens glued together.
    #[test]
    fn token_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("local".to_string()),
                Just("if".to_string()),
                Just("then".to_string()),
                Just("end".to_string()),
                Just("while".to_string()),
                Just("do".to_string()),
                Just("for".to_string()),
                Just("return".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("=".to_string()),
                Just("==".to_string()),
                Just("..".to_string()),
                Just("+".to_string()),
                Just("x".to_string()),
                Just("1".to_string()),
                Just("\"s\"".to_string()),
            ],
            0..30
        )
    ) {
        let src = parts.join(" ");
        let mut interp = Interpreter::new();
        interp.set_budget(100_000);
        let _ = interp.run(&src);
    }

    /// Arithmetic evaluation is correct and deterministic for a
    /// generated family of expressions.
    #[test]
    fn arithmetic_matches_rust(a in -1000i32..1000, b in -1000i32..1000, c in 1i32..1000) {
        let src = format!("return {a} + {b} * {c} - {a} / {c}");
        let expected = a as f64 + b as f64 * c as f64 - a as f64 / c as f64;
        let mut interp = Interpreter::new();
        let v1 = interp.run(&src).unwrap();
        let v2 = interp.run(&src).unwrap();
        prop_assert_eq!(v1.clone(), v2);
        let got = v1.as_number().unwrap();
        prop_assert!((got - expected).abs() < 1e-9 * expected.abs().max(1.0));
    }

    /// Loops accumulate exactly as Rust does.
    #[test]
    fn loop_sums_match(n in 0u32..200) {
        let src = format!("local s = 0\nfor i = 1, {n} do s = s + i end\nreturn s");
        let expected = (n as f64) * (n as f64 + 1.0) / 2.0;
        let v = Interpreter::new().run(&src).unwrap();
        prop_assert_eq!(v, Value::Number(expected));
    }

    /// Table roundtrip: building an array in-script preserves order and
    /// values.
    #[test]
    fn table_roundtrip(values in proptest::collection::vec(-1e6f64..1e6, 0..20)) {
        let literals: Vec<String> = values.iter().map(|v| format!("{v:?}")).collect();
        let src = format!("return {{{}}}", literals.join(", "));
        let v = Interpreter::new().run(&src).unwrap();
        let arr = v.as_number_array().unwrap();
        prop_assert_eq!(arr.len(), values.len());
        for (got, want) in arr.iter().zip(&values) {
            prop_assert!((got - want).abs() < 1e-9);
        }
    }

    /// Whatever the script does, the instruction budget bounds runtime.
    #[test]
    fn budget_always_terminates(cond_n in 0u32..5) {
        let src = format!(
            "local i = 0\nwhile i >= {cond_n} or true do i = i + 1 end\nreturn i"
        );
        let mut interp = Interpreter::new();
        interp.set_budget(20_000);
        let r = interp.run(&src);
        prop_assert!(r.is_err());
    }
}
