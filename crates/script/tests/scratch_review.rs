use sor_script::analysis::{analyze_with_budget, CapabilitySet};
use sor_script::interp::Interpreter;
use sor_script::parser::parse;

fn probe(src: &str, budget: u64) {
    let v = analyze_with_budget(src, &CapabilitySet::standard_sensing(), budget);
    println!("--- budget {budget}\n{}", v.render("t"));
    println!("has_errors: {}", v.has_errors());
    let block = parse(src).unwrap();
    let mut i = Interpreter::new();
    i.set_budget(budget);
    let r = i.run_block(&block);
    println!("run: {:?}, instructions: {}", r.map(|x| format!("{x:?}")), i.instructions_used());
}

#[test]
fn shadowed_local_assign_underbounds_loop() {
    let src = "local n = 100\nif clock() > 0 then local n = 1\nn = n + 1\nelse local n = 1\nn = n + 2\nend\nfor i = 1, n do print(i) end\nreturn n";
    // Budget 50: actual run needs ~415 instructions. If the analyzer's
    // bound is sound it must emit W401 (bound exceeds budget) or W402.
    probe(src, 50);
}
