//! VM ↔ tree-walker corpus gate.
//!
//! Every parseable `tests/lint_corpus/*.ss` script runs through both
//! execution engines against the same fixed host and must agree on
//! value, error kind, `print` output, virtual time, and — on success —
//! the exact instruction count. A final test pins the fuel semantics:
//! a script whose static bound is within a few instructions of its
//! dynamic count must still complete when the VM's fuel limit is set
//! to that bound.

use std::path::PathBuf;
use std::sync::Arc;

use sor_script::analysis::{analyze, CapabilitySet, Cost};
use sor_script::parser::parse;
use sor_script::{compile, HostContext, HostRegistry, Interpreter, Value, Vm};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus")
}

fn corpus_scripts() -> Vec<PathBuf> {
    let mut scripts: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ss"))
        .collect();
    scripts.sort();
    assert!(!scripts.is_empty(), "lint corpus must not be empty");
    scripts
}

/// Same fixed host as the lint-corpus bound check: every standard
/// capability serves a small deterministic readings array.
fn fixed_host() -> HostRegistry {
    let mut host = HostRegistry::new();
    let serve = |ctx: &mut HostContext, args: &[Value]| {
        let n = args.first().and_then(Value::as_number).map(|v| v.max(1.0) as usize).unwrap_or(1);
        let vals: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        ctx.virtual_time += n as f64 * 0.1;
        Ok(Value::number_array(&vals))
    };
    for name in [
        "get_temperature_readings",
        "get_humidity_readings",
        "get_light_readings",
        "get_noise_readings",
        "get_wifi_readings",
        "get_pressure_readings",
        "get_accel_readings",
        "get_gps_readings",
        "get_compass_readings",
        "get_location",
    ] {
        host.register(name, serve);
    }
    host
}

/// Structural equality good enough for corpus return values (tables by
/// contents, NaN equal to itself, any function equals any function).
fn structurally_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x == y || (x.is_nan() && y.is_nan()),
        (Value::Table(x), Value::Table(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.array.len() == y.array.len()
                && x.hash.len() == y.hash.len()
                && x.array.iter().zip(y.array.iter()).all(|(a, b)| structurally_eq(a, b))
                && x.hash.iter().all(|(k, v)| y.hash.get(k).is_some_and(|w| structurally_eq(v, w)))
        }
        (Value::Function(_) | Value::Compiled(_), Value::Function(_) | Value::Compiled(_)) => true,
        _ => a == b,
    }
}

#[test]
fn corpus_runs_identically_on_both_engines() {
    let mut executed = 0usize;
    for script in corpus_scripts() {
        let name = script.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&script).expect("corpus script reads");
        // Unparseable corpus entries exercise the linter only; both
        // engines would reject them in the shared parser.
        let Ok(block) = parse(&src) else { continue };

        let mut interp = Interpreter::with_host(fixed_host());
        let tree = interp.run(&src);

        let module = Arc::new(compile(&block));
        let mut vm = Vm::with_host(fixed_host());
        let byte = vm.run_module(&module);

        assert_eq!(interp.output(), vm.output(), "{name}: print output diverges");
        assert!(
            (interp.virtual_time() - vm.virtual_time()).abs() < 1e-12,
            "{name}: virtual time diverges"
        );
        match (&tree, &byte) {
            (Ok(a), Ok(b)) => {
                assert!(
                    structurally_eq(a, b),
                    "{name}: values diverge: {} vs {}",
                    a.display(),
                    b.display()
                );
                assert_eq!(
                    interp.instructions_used(),
                    vm.instructions_used(),
                    "{name}: instruction counts diverge"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{name}: error kinds diverge: {a:?} vs {b:?}"
                );
                assert!(
                    vm.instructions_used() <= interp.instructions_used(),
                    "{name}: vm overcharged on error path"
                );
            }
            (a, b) => panic!("{name}: outcomes diverge: {a:?} vs {b:?}"),
        }
        executed += 1;
    }
    assert!(executed >= 10, "expected most of the corpus to execute, got {executed}");
}

#[test]
fn vm_completes_under_fuel_limit_pinned_to_static_bound() {
    // A straight-line script with no host calls: the analyzer's bound
    // counts exactly the nodes the engines charge, so the static bound
    // sits within a few instructions of the dynamic count — the
    // tightest fuel limit the frontend would ever impose.
    let src = "local a = 1\nlocal b = a + 2\nlocal c = b * b\nreturn c - a";
    let caps = CapabilitySet::standard_sensing();
    let report = analyze(src, &caps);
    let Cost::Bounded(bound) = report.cost else { panic!("straight-line script must bound") };

    let module = Arc::new(compile(&parse(src).unwrap()));
    let mut vm = Vm::with_host(fixed_host());
    vm.set_budget(bound);
    let v = vm.run_module(&module).expect("must complete within its own static bound");
    assert_eq!(v, Value::Number(8.0));
    let used = vm.instructions_used();
    assert!(used <= bound, "measured {used} > bound {bound}");
    assert!(
        bound - used <= 4,
        "test premise broken: bound {bound} is not near the dynamic count {used}; \
         pick a script the cost pass counts exactly"
    );

    // One instruction less than the dynamic count must fail — the fuel
    // limit is exact, not approximate.
    let mut starved = Vm::with_host(fixed_host());
    starved.set_budget(used - 1);
    assert!(matches!(
        starved.run_module(&module),
        Err(sor_script::ScriptError::BudgetExhausted { .. })
    ));
}

#[test]
fn bounded_corpus_scripts_respect_bounds_under_vm_fuel() {
    // The frontend clamps VM fuel to the analyzer's bound; this is only
    // sound if every bounded, runnable corpus script completes under
    // that exact fuel limit.
    let caps = CapabilitySet::standard_sensing();
    let mut checked = 0usize;
    for script in corpus_scripts() {
        let src = std::fs::read_to_string(&script).expect("corpus script reads");
        let report = analyze(&src, &caps);
        let Cost::Bounded(bound) = report.cost else { continue };
        let Ok(block) = parse(&src) else { continue };
        let module = Arc::new(compile(&block));
        // Only scripts that succeed on the tree-walker participate.
        if Interpreter::with_host(fixed_host()).run(&src).is_err() {
            continue;
        }
        let mut vm = Vm::with_host(fixed_host());
        vm.set_budget(bound);
        vm.run_module(&module).unwrap_or_else(|e| {
            panic!("{}: ran out of fuel under its own static bound: {e}", script.display())
        });
        checked += 1;
    }
    assert!(checked >= 5, "expected several bounded, runnable corpus scripts, got {checked}");
}
