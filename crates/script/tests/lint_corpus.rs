//! Golden-lint corpus gate.
//!
//! Every `tests/lint_corpus/*.ss` script at the repository root is
//! analyzed and its diagnostics must match the sibling `.expected`
//! file exactly (format: one `CODE line:col` per line, empty file =
//! clean). A second pass executes every *clean-parsing* corpus script
//! and checks the cost pass's bound-ratio invariant: measured
//! instructions never exceed a finite static bound.

use std::path::PathBuf;

use sor_script::analysis::{analyze, CapabilitySet, Cost};
use sor_script::{HostContext, HostRegistry, Interpreter, Value};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus")
}

fn corpus_scripts() -> Vec<PathBuf> {
    let mut scripts: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ss"))
        .collect();
    scripts.sort();
    assert!(!scripts.is_empty(), "lint corpus must not be empty");
    scripts
}

#[test]
fn corpus_diagnostics_match_goldens() {
    let caps = CapabilitySet::standard_sensing();
    let mut mismatches = Vec::new();
    for script in corpus_scripts() {
        let src = std::fs::read_to_string(&script).expect("corpus script reads");
        let expected_path = script.with_extension("expected");
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing golden file {}", expected_path.display()));
        let report = analyze(&src, &caps);
        let actual: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| format!("{} {}:{}", d.code.as_str(), d.pos.line, d.pos.col))
            .collect();
        let want: Vec<String> =
            expected.lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from).collect();
        if actual != want {
            mismatches.push(format!(
                "{}: expected {:?}, got {:?}",
                script.file_name().unwrap().to_string_lossy(),
                want,
                actual
            ));
        }
    }
    assert!(mismatches.is_empty(), "golden-lint mismatches:\n{}", mismatches.join("\n"));
}

/// Host that serves every standard capability a small fixed readings
/// array — enough to execute the corpus deterministically.
fn fixed_host() -> HostRegistry {
    let mut host = HostRegistry::new();
    let serve = |_: &mut HostContext, args: &[Value]| {
        let n = args.first().and_then(Value::as_number).map(|v| v.max(1.0) as usize).unwrap_or(1);
        let vals: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        Ok(Value::number_array(&vals))
    };
    for name in [
        "get_temperature_readings",
        "get_humidity_readings",
        "get_light_readings",
        "get_noise_readings",
        "get_wifi_readings",
        "get_pressure_readings",
        "get_accel_readings",
        "get_gps_readings",
        "get_compass_readings",
        "get_location",
    ] {
        host.register(name, serve);
    }
    host
}

#[test]
fn bounded_corpus_scripts_respect_their_static_bound() {
    let caps = CapabilitySet::standard_sensing();
    let mut bounded_and_ran = 0usize;
    for script in corpus_scripts() {
        let src = std::fs::read_to_string(&script).expect("corpus script reads");
        let report = analyze(&src, &caps);
        let Cost::Bounded(bound) = report.cost else { continue };
        let mut interp = Interpreter::with_host(fixed_host());
        let Ok(_) = interp.run(&src) else { continue };
        let used = interp.instructions_used();
        assert!(
            used <= bound,
            "{}: measured {} instructions > static bound {}",
            script.display(),
            used,
            bound
        );
        bounded_and_ran += 1;
    }
    assert!(bounded_and_ran >= 5, "expected several bounded, runnable corpus scripts");
}

#[test]
fn interval_domain_bounds_the_previously_unbounded_loop_script() {
    // The acceptance-criterion script: its `for` header reads a local,
    // so only the interval domain can prove the trip count.
    let src = std::fs::read_to_string(corpus_dir().join("loop_var_bound.ss")).unwrap();
    let report = analyze(&src, &CapabilitySet::standard_sensing());
    let Cost::Bounded(bound) = report.cost else {
        panic!("loop_var_bound.ss must get a finite bound from the interval domain");
    };
    assert!(
        !report.diagnostics.iter().any(|d| d.code.as_str() == "W402"),
        "no W402 expected: {:?}",
        report.diagnostics
    );
    let mut interp = Interpreter::with_host(fixed_host());
    interp.run(&src).expect("script runs");
    assert!(interp.instructions_used() <= bound);
}

#[test]
fn tight_budget_flags_shadowed_local_loop() {
    // Shadowed `local n` rebinds inside both `if` arms, so the loop
    // header still reads the outer n = 100: the true run needs ~400+
    // instructions. Against a budget of 50 the analyzer's bound must be
    // sound enough to warn (W401 bound-exceeds-budget, or W402 if it
    // cannot bound the loop at all) — the same script is clean under
    // the default budget, which the golden corpus pass checks.
    let src = std::fs::read_to_string(corpus_dir().join("shadowed_local_loop.ss")).unwrap();
    let caps = CapabilitySet::standard_sensing();
    let report = sor_script::analysis::analyze_with_budget(&src, &caps, 50);
    assert!(
        report.diagnostics.iter().any(|d| matches!(d.code.as_str(), "W401" | "W402")),
        "tight budget must flag the shadowed-local loop: {:?}",
        report.diagnostics
    );
    // And the static bound really is sound: the actual run overshoots
    // the tight budget by an order of magnitude.
    let mut interp = Interpreter::with_host(fixed_host());
    interp.run(&src).expect("script runs under the default budget");
    assert!(interp.instructions_used() > 50);
}
