//! Property tests for the static analyzer's two soundness claims:
//!
//! 1. **Admission soundness**: any script that *runs successfully*
//!    under a host registry is never rejected with an error-severity
//!    finding when analyzed against that registry's capability set.
//!    Error diagnostics are reserved for statically-certain failures,
//!    so a false positive here would mean the server refuses a task
//!    that would in fact have produced data.
//! 2. **Cost-bound soundness**: whenever the cost pass proves
//!    `Bounded(n)`, the interpreter's actual instruction count for the
//!    same script never exceeds `n`.

use proptest::prelude::*;
use sor_script::analysis::{analyze, CapabilitySet, Cost};
use sor_script::{Interpreter, Value};

/// An interpreter with a small sensing vocabulary, mirroring what the
/// frontend registers before executing a task.
fn sensing_interpreter() -> Interpreter {
    let mut interp = Interpreter::new();
    for name in ["get_light_readings", "get_temperature_readings", "get_noise_readings"] {
        interp.host_mut().register(name, move |_ctx, args| {
            let n =
                args.first().and_then(Value::as_number).map(|v| v.max(1.0) as usize).unwrap_or(1);
            Ok(Value::number_array(&vec![42.0; n]))
        });
    }
    interp
}

fn caps() -> CapabilitySet {
    CapabilitySet::from_names([
        "get_light_readings",
        "get_temperature_readings",
        "get_noise_readings",
    ])
}

/// Statements over a pre-declared `x` whose cost the analyzer can
/// bound (no `while`, no recursion).
fn bounded_stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i32..100).prop_map(|n| format!("x = x + {n}")),
        (1i32..10).prop_map(|n| format!("local t = get_light_readings({n})\nx = x + mean(t)")),
        (0i32..50).prop_map(|n| format!("if x > {n} then x = x - 1 else x = x + 1 end")),
        (0u32..12, 0i32..10).prop_map(|(n, k)| format!("for i = 1, {n} do x = x + i * {k} end")),
        (1i32..9).prop_map(|n| { format!("for _, v in {{{n}, {n}, {n}}} do x = x + v end") }),
    ]
}

/// Adds constructs the cost pass gives up on (⊤) but that still run
/// fine — these must produce warnings at most, never errors.
fn any_stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        bounded_stmt(),
        (1u32..8)
            .prop_map(|n| { format!("local c = {n}\nwhile c > 0 do c = c - 1\nx = x + c end") }),
    ]
}

fn program(stmts: &[String]) -> String {
    format!("local x = 0\n{}\nreturn x", stmts.join("\n"))
}

proptest! {
    /// Successfully-running scripts are never rejected with error
    /// severity (the admission gate has no false positives).
    #[test]
    fn successful_runs_are_never_rejected(
        stmts in proptest::collection::vec(any_stmt(), 0..6)
    ) {
        let src = program(&stmts);
        let mut interp = sensing_interpreter();
        if interp.run(&src).is_ok() {
            let report = analyze(&src, &caps());
            prop_assert!(
                !report.has_errors(),
                "script ran fine but was rejected:\n{src}\n{}",
                report.render("<gen>")
            );
        }
    }

    /// A proved static bound dominates the interpreter's actual
    /// instruction count.
    #[test]
    fn static_bound_dominates_actual_cost(
        stmts in proptest::collection::vec(bounded_stmt(), 0..6)
    ) {
        let src = program(&stmts);
        let report = analyze(&src, &caps());
        let Cost::Bounded(bound) = report.cost else {
            return Err(TestCaseError::fail(
                format!("generator is supposed to stay bounded:\n{src}")
            ));
        };
        let mut interp = sensing_interpreter();
        interp.run(&src).expect("generated script must run");
        let actual = interp.instructions_used();
        prop_assert!(
            actual <= bound,
            "actual {actual} > static bound {bound} for:\n{src}"
        );
    }
}

/// Hand-written bound-vs-actual checks with known shapes, so a
/// regression points at the construct that broke.
#[cfg(test)]
mod cost_bound_units {
    use super::*;

    fn bound_and_actual(src: &str) -> (u64, u64) {
        let report = analyze(src, &caps());
        let Cost::Bounded(bound) = report.cost else {
            panic!("expected a bounded script: {src}\n{:?}", report.diagnostics)
        };
        let mut interp = sensing_interpreter();
        interp.run(src).expect("script must run");
        (bound, interp.instructions_used())
    }

    #[test]
    fn straight_line_bound_is_exact() {
        let (bound, actual) = bound_and_actual("local x = 1 + 2\nreturn x * 3");
        assert_eq!(bound, actual, "no branches: the bound should be tight");
    }

    #[test]
    fn numeric_for_bound_covers_all_iterations() {
        let (bound, actual) =
            bound_and_actual("local s = 0\nfor i = 1, 50 do s = s + i end\nreturn s");
        assert!(actual <= bound, "{actual} > {bound}");
    }

    #[test]
    fn nested_loops_bound_holds() {
        let src = "local s = 0\nfor i = 1, 9 do for j = 1, 7 do s = s + i * j end end\nreturn s";
        let (bound, actual) = bound_and_actual(src);
        assert!(actual <= bound, "{actual} > {bound}");
    }

    #[test]
    fn untaken_branch_makes_bound_conservative() {
        // Only one arm executes; the static bound pays for the worst.
        let src = "local x = 1\nif x > 0 then x = x + 1 else x = x - 1\nx = x * 2 end\nreturn x";
        let (bound, actual) = bound_and_actual(src);
        assert!(actual <= bound, "{actual} > {bound}");
    }

    #[test]
    fn early_break_keeps_bound_valid() {
        let src = "local s = 0\nfor i = 1, 100 do if i > 3 then break end\ns = s + i end\nreturn s";
        let (bound, actual) = bound_and_actual(src);
        assert!(actual <= bound, "{actual} > {bound}");
    }

    #[test]
    fn script_function_calls_are_bounded() {
        let src = "local function twice(v) return v + v end\nreturn twice(twice(5))";
        let (bound, actual) = bound_and_actual(src);
        assert!(actual <= bound, "{actual} > {bound}");
    }

    #[test]
    fn host_calls_are_bounded() {
        let src = "local t = get_light_readings(5)\nreturn mean(t) + stddev(t)";
        let (bound, actual) = bound_and_actual(src);
        assert!(actual <= bound, "{actual} > {bound}");
    }

    #[test]
    fn generic_for_over_literal_is_bounded() {
        let src = "local s = 0\nfor _, v in {1, 2, 3, 4} do s = s + v end\nreturn s";
        let (bound, actual) = bound_and_actual(src);
        assert!(actual <= bound, "{actual} > {bound}");
    }
}
