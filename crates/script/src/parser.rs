//! Recursive-descent parser with Pratt-style expression parsing.

use crate::ast::{BinOp, Block, Expr, Stmt, TableKey, Target, UnOp};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use crate::{Pos, ScriptError};

/// Parses a full SenseScript source into a block.
///
/// # Errors
///
/// Lexer errors, or [`ScriptError::UnexpectedToken`] with position and
/// expectation.
pub fn parse(src: &str) -> Result<Block, ScriptError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    let block = p.block(&[TokenKind::Eof])?;
    p.expect_kind(&TokenKind::Eof, "end of input")?;
    Ok(block)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.i.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.i.min(self.tokens.len() - 1)].clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kind(
        &mut self,
        kind: &TokenKind,
        expected: &'static str,
    ) -> Result<Token, ScriptError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn unexpected(&self, expected: &'static str) -> ScriptError {
        ScriptError::UnexpectedToken {
            found: self.peek().kind.to_string(),
            expected,
            at: self.peek().pos,
        }
    }

    fn expect_ident(&mut self, expected: &'static str) -> Result<(String, Pos), ScriptError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(s) => Ok((s, t.pos)),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    /// Parses statements until one of the terminator kinds (not
    /// consumed).
    fn block(&mut self, terminators: &[TokenKind]) -> Result<Block, ScriptError> {
        let mut stmts = Vec::new();
        loop {
            while self.eat(&TokenKind::Semi) {}
            if terminators.iter().any(|t| self.at(t)) {
                return Ok(stmts);
            }
            stmts.push(self.statement()?);
        }
    }

    fn statement(&mut self) -> Result<Stmt, ScriptError> {
        match self.peek().kind.clone() {
            TokenKind::Local => self.local_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Break => {
                let t = self.bump();
                Ok(Stmt::Break(t.pos))
            }
            TokenKind::Return => {
                let t = self.bump();
                let value = if self.at(&TokenKind::End)
                    || self.at(&TokenKind::Eof)
                    || self.at(&TokenKind::Else)
                    || self.at(&TokenKind::Elseif)
                    || self.at(&TokenKind::Semi)
                {
                    None
                } else {
                    Some(self.expr()?)
                };
                Ok(Stmt::Return(value, t.pos))
            }
            _ => self.expr_or_assign(),
        }
    }

    fn local_stmt(&mut self) -> Result<Stmt, ScriptError> {
        let local = self.bump(); // `local`
        if self.at(&TokenKind::Function) {
            self.bump();
            let (name, _) = self.expect_ident("function name")?;
            let (params, body) = self.function_rest()?;
            return Ok(Stmt::LocalFunction { name, params, body, pos: local.pos });
        }
        let (name, _) = self.expect_ident("variable name after `local`")?;
        let init = if self.eat(&TokenKind::Assign) { Some(self.expr()?) } else { None };
        Ok(Stmt::Local { name, init, pos: local.pos })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.bump(); // `if`
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect_kind(&TokenKind::Then, "`then`")?;
        let body = self.block(&[TokenKind::Elseif, TokenKind::Else, TokenKind::End])?;
        arms.push((cond, body));
        let mut otherwise = None;
        loop {
            if self.eat(&TokenKind::Elseif) {
                let cond = self.expr()?;
                self.expect_kind(&TokenKind::Then, "`then`")?;
                let body = self.block(&[TokenKind::Elseif, TokenKind::Else, TokenKind::End])?;
                arms.push((cond, body));
            } else if self.eat(&TokenKind::Else) {
                otherwise = Some(self.block(&[TokenKind::End])?);
                self.expect_kind(&TokenKind::End, "`end`")?;
                break;
            } else {
                self.expect_kind(&TokenKind::End, "`end`")?;
                break;
            }
        }
        Ok(Stmt::If { arms, otherwise })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.bump(); // `while`
        let cond = self.expr()?;
        self.expect_kind(&TokenKind::Do, "`do`")?;
        let body = self.block(&[TokenKind::End])?;
        self.expect_kind(&TokenKind::End, "`end`")?;
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.bump(); // `for`
        let (var, _) = self.expect_ident("loop variable")?;
        // Generic for: `for k in expr` or `for k, v in expr`.
        if self.at(&TokenKind::Comma) || self.at(&TokenKind::Ident("in".into())) {
            let value_var = if self.eat(&TokenKind::Comma) {
                Some(self.expect_ident("second loop variable")?.0)
            } else {
                None
            };
            match self.bump() {
                Token { kind: TokenKind::Ident(kw), .. } if kw == "in" => {}
                _ => return Err(self.unexpected("`in`")),
            }
            let iterable = self.expr()?;
            self.expect_kind(&TokenKind::Do, "`do`")?;
            let body = self.block(&[TokenKind::End])?;
            self.expect_kind(&TokenKind::End, "`end`")?;
            return Ok(Stmt::GenericFor { key_var: var, value_var, iterable, body });
        }
        self.expect_kind(&TokenKind::Assign, "`=` in numeric for")?;
        let start = self.expr()?;
        self.expect_kind(&TokenKind::Comma, "`,` in numeric for")?;
        let stop = self.expr()?;
        let step = if self.eat(&TokenKind::Comma) { Some(self.expr()?) } else { None };
        self.expect_kind(&TokenKind::Do, "`do`")?;
        let body = self.block(&[TokenKind::End])?;
        self.expect_kind(&TokenKind::End, "`end`")?;
        Ok(Stmt::NumericFor { var, start, stop, step, body })
    }

    /// Either `target = expr` or a bare call expression.
    fn expr_or_assign(&mut self) -> Result<Stmt, ScriptError> {
        let expr = self.expr()?;
        if self.at(&TokenKind::Assign) {
            let eq = self.bump();
            let value = self.expr()?;
            let target = match expr {
                Expr::Var(name, _) => Target::Name(name),
                Expr::Index { table, key, .. } => Target::Index { table: *table, key: *key },
                other => {
                    return Err(ScriptError::UnexpectedToken {
                        found: "expression".to_string(),
                        expected: "assignable target (variable or index)",
                        at: other.pos(),
                    })
                }
            };
            return Ok(Stmt::Assign { target, value, pos: eq.pos });
        }
        match &expr {
            Expr::Call { .. } => Ok(Stmt::ExprStmt(expr)),
            other => Err(ScriptError::UnexpectedToken {
                found: "expression".to_string(),
                expected: "statement (calls are the only bare expressions)",
                at: other.pos(),
            }),
        }
    }

    fn function_rest(&mut self) -> Result<(Vec<String>, Block), ScriptError> {
        self.expect_kind(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (name, _) = self.expect_ident("parameter name")?;
                params.push(name);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect_kind(&TokenKind::RParen, "`)`")?;
        let body = self.block(&[TokenKind::End])?;
        self.expect_kind(&TokenKind::End, "`end`")?;
        Ok((params, body))
    }

    // --- expressions (precedence climbing) ---

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_bp: u8) -> Result<Expr, ScriptError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, l_bp, r_bp)) = binop_of(&self.peek().kind) {
            if l_bp < min_bp {
                break;
            }
            let tok = self.bump();
            let rhs = self.binary_expr(r_bp)?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos: tok.pos };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ScriptError> {
        let op = match self.peek().kind {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            TokenKind::Hash => Some(UnOp::Len),
            _ => None,
        };
        if let Some(op) = op {
            let tok = self.bump();
            // Unary binds tighter than any binary op except `^`.
            let expr = self.binary_expr(UNARY_BP)?;
            return Ok(Expr::Unary { op, expr: Box::new(expr), pos: tok.pos });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut expr = self.primary_expr()?;
        loop {
            match self.peek().kind {
                TokenKind::LParen => {
                    let tok = self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_kind(&TokenKind::RParen, "`)`")?;
                    expr = Expr::Call { callee: Box::new(expr), args, pos: tok.pos };
                }
                TokenKind::LBracket => {
                    let tok = self.bump();
                    let key = self.expr()?;
                    self.expect_kind(&TokenKind::RBracket, "`]`")?;
                    expr = Expr::Index { table: Box::new(expr), key: Box::new(key), pos: tok.pos };
                }
                TokenKind::Dot => {
                    let tok = self.bump();
                    let (name, npos) = self.expect_ident("field name after `.`")?;
                    expr = Expr::Index {
                        table: Box::new(expr),
                        key: Box::new(Expr::Str(name, npos)),
                        pos: tok.pos,
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ScriptError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Nil => {
                self.bump();
                Ok(Expr::Nil(tok.pos))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true, tok.pos))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false, tok.pos))
            }
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Number(n, tok.pos))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, tok.pos))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name, tok.pos))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::LBrace => self.table_expr(),
            TokenKind::Function => {
                self.bump();
                let (params, body) = self.function_rest()?;
                Ok(Expr::Function { params, body, pos: tok.pos })
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn table_expr(&mut self) -> Result<Expr, ScriptError> {
        let brace = self.bump(); // `{`
        let mut array = Vec::new();
        let mut hash = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::LBracket) {
                self.bump();
                let key = self.expr()?;
                self.expect_kind(&TokenKind::RBracket, "`]`")?;
                self.expect_kind(&TokenKind::Assign, "`=` in table entry")?;
                let value = self.expr()?;
                hash.push((TableKey::Expr(key), value));
            } else if matches!(self.peek().kind, TokenKind::Ident(_))
                && matches!(self.tokens.get(self.i + 1).map(|t| &t.kind), Some(TokenKind::Assign))
            {
                let (name, _) = self.expect_ident("field name")?;
                self.bump(); // `=`
                let value = self.expr()?;
                hash.push((TableKey::Name(name), value));
            } else {
                array.push(self.expr()?);
            }
            if !self.eat(&TokenKind::Comma) && !self.eat(&TokenKind::Semi) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RBrace, "`}`")?;
        Ok(Expr::Table { array, hash, pos: brace.pos })
    }
}

/// Binding power just above every binary operator except `^`.
const UNARY_BP: u8 = 21;

/// `(op, left bp, right bp)`; right > left gives left associativity.
fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8, u8)> {
    Some(match kind {
        TokenKind::Or => (BinOp::Or, 1, 2),
        TokenKind::And => (BinOp::And, 3, 4),
        TokenKind::Lt => (BinOp::Lt, 5, 6),
        TokenKind::Le => (BinOp::Le, 5, 6),
        TokenKind::Gt => (BinOp::Gt, 5, 6),
        TokenKind::Ge => (BinOp::Ge, 5, 6),
        TokenKind::EqEq => (BinOp::Eq, 5, 6),
        TokenKind::NotEq => (BinOp::Ne, 5, 6),
        // `..` is right associative in Lua.
        TokenKind::Concat => (BinOp::Concat, 9, 8),
        TokenKind::Plus => (BinOp::Add, 11, 12),
        TokenKind::Minus => (BinOp::Sub, 11, 12),
        TokenKind::Star => (BinOp::Mul, 13, 14),
        TokenKind::Slash => (BinOp::Div, 13, 14),
        TokenKind::Percent => (BinOp::Mod, 13, 14),
        // `^` is right associative and binds tighter than unary.
        TokenKind::Caret => (BinOp::Pow, 23, 22),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_local_and_call() {
        let b = parse("local x = f(1, 2)\ng(x)").unwrap();
        assert_eq!(b.len(), 2);
        assert!(matches!(&b[0], Stmt::Local { name, .. } if name == "x"));
        assert!(matches!(&b[1], Stmt::ExprStmt(Expr::Call { .. })));
    }

    #[test]
    fn precedence_mul_over_add() {
        let b = parse("local x = 1 + 2 * 3").unwrap();
        let Stmt::Local { init: Some(Expr::Binary { op, rhs, .. }), .. } = &b[0] else {
            panic!("{b:?}")
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn concat_is_right_associative() {
        let b = parse(r#"local x = "a" .. "b" .. "c""#).unwrap();
        let Stmt::Local { init: Some(Expr::Binary { op, lhs, .. }), .. } = &b[0] else { panic!() };
        assert_eq!(*op, BinOp::Concat);
        assert!(matches!(**lhs, Expr::Str(..)), "right assoc means lhs is the leaf");
    }

    #[test]
    fn pow_binds_tighter_than_unary_minus() {
        // -2^2 parses as -(2^2) in Lua.
        let b = parse("local x = -2^2").unwrap();
        let Stmt::Local { init: Some(Expr::Unary { op: UnOp::Neg, expr, .. }), .. } = &b[0] else {
            panic!("{b:?}")
        };
        assert!(matches!(**expr, Expr::Binary { op: BinOp::Pow, .. }));
    }

    #[test]
    fn if_elseif_else_chain() {
        let b = parse("if a then f() elseif b then g() elseif c then h() else i() end").unwrap();
        let Stmt::If { arms, otherwise } = &b[0] else { panic!() };
        assert_eq!(arms.len(), 3);
        assert!(otherwise.is_some());
    }

    #[test]
    fn numeric_for_with_step() {
        let b = parse("for i = 10, 1, -1 do f(i) end").unwrap();
        let Stmt::NumericFor { var, step, .. } = &b[0] else { panic!() };
        assert_eq!(var, "i");
        assert!(step.is_some());
    }

    #[test]
    fn table_constructor_mixed() {
        let b = parse("local t = {1, 2, x = 3, [4] = 5}").unwrap();
        let Stmt::Local { init: Some(Expr::Table { array, hash, .. }), .. } = &b[0] else {
            panic!()
        };
        assert_eq!(array.len(), 2);
        assert_eq!(hash.len(), 2);
    }

    #[test]
    fn index_and_dot_chains() {
        let b = parse("local x = t.a[1].b").unwrap();
        let Stmt::Local { init: Some(expr), .. } = &b[0] else { panic!() };
        // Outermost is .b index.
        assert!(matches!(expr, Expr::Index { .. }));
    }

    #[test]
    fn assignment_to_index_target() {
        let b = parse("t[1] = 5\nt.x = 6").unwrap();
        assert!(matches!(&b[0], Stmt::Assign { target: Target::Index { .. }, .. }));
        assert!(matches!(&b[1], Stmt::Assign { target: Target::Index { .. }, .. }));
    }

    #[test]
    fn local_function_and_anonymous() {
        let b = parse(
            "local function fib(n) if n < 2 then return n end return fib(n-1) + fib(n-2) end\nlocal f = function(x) return x end",
        )
        .unwrap();
        assert!(matches!(&b[0], Stmt::LocalFunction { name, .. } if name == "fib"));
        assert!(matches!(&b[1], Stmt::Local { init: Some(Expr::Function { .. }), .. }));
    }

    #[test]
    fn bare_non_call_expression_rejected() {
        assert!(matches!(parse("1 + 2"), Err(ScriptError::UnexpectedToken { .. })));
    }

    #[test]
    fn assignment_to_literal_rejected() {
        assert!(parse("5 = 3").is_err());
        assert!(parse("f() = 3").is_err());
    }

    #[test]
    fn missing_end_rejected() {
        // The parser keeps consuming statements looking for `end` and
        // trips on EOF: either diagnostic is an UnexpectedToken.
        assert!(matches!(parse("while true do f()"), Err(ScriptError::UnexpectedToken { .. })));
        assert!(matches!(
            parse("if x then f() else g()"),
            Err(ScriptError::UnexpectedToken { .. })
        ));
    }

    #[test]
    fn return_without_value() {
        let b = parse("return").unwrap();
        assert!(matches!(&b[0], Stmt::Return(None, _)));
        let b = parse("return 5").unwrap();
        assert!(matches!(&b[0], Stmt::Return(Some(_), _)));
    }

    #[test]
    fn semicolons_are_separators() {
        let b = parse("f();; g();").unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn fig4_style_script_parses() {
        let src = r#"
            -- acquire 5 light readings and the location, then report
            local light = get_light_readings(5)
            local loc = get_location()
            if #light > 0 then
                report("light", light, loc)
            end
        "#;
        let b = parse(src).unwrap();
        assert_eq!(b.len(), 3);
    }
}
