//! Tokens of the SenseScript lexer.

use crate::Pos;

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub pos: Pos,
}

/// Token kinds. Keywords are distinct kinds (the lexer resolves them).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal (all numbers are f64, as in Lua 5.1).
    Number(f64),
    /// String literal (escapes already processed).
    Str(String),
    /// Identifier.
    Ident(String),

    // Keywords
    /// `local`
    Local,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `elseif`
    Elseif,
    /// `end`
    End,
    /// `while`
    While,
    /// `for`
    For,
    /// `do`
    Do,
    /// `break`
    Break,
    /// `return`
    Return,
    /// `function`
    Function,
    /// `true`
    True,
    /// `false`
    False,
    /// `nil`
    Nil,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,

    // Operators / punctuation
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `#`
    Hash,
    /// `==`
    EqEq,
    /// `~=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Assign,
    /// `..`
    Concat,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Number(n) => write!(f, "number {n}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Local => write!(f, "`local`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Then => write!(f, "`then`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::Elseif => write!(f, "`elseif`"),
            TokenKind::End => write!(f, "`end`"),
            TokenKind::While => write!(f, "`while`"),
            TokenKind::For => write!(f, "`for`"),
            TokenKind::Do => write!(f, "`do`"),
            TokenKind::Break => write!(f, "`break`"),
            TokenKind::Return => write!(f, "`return`"),
            TokenKind::Function => write!(f, "`function`"),
            TokenKind::True => write!(f, "`true`"),
            TokenKind::False => write!(f, "`false`"),
            TokenKind::Nil => write!(f, "`nil`"),
            TokenKind::And => write!(f, "`and`"),
            TokenKind::Or => write!(f, "`or`"),
            TokenKind::Not => write!(f, "`not`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Hash => write!(f, "`#`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`~=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Concat => write!(f, "`..`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
