//! The SenseScript abstract syntax tree.

use crate::Pos;

/// A block: a sequence of statements.
pub type Block = Vec<Stmt>;

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `local name = expr` (expr optional: defaults to nil).
    Local {
        /// Variable name.
        name: String,
        /// Initialiser (None = nil).
        init: Option<Expr>,
        /// Position of the `local` keyword.
        pos: Pos,
    },
    /// Assignment to a variable or an index target.
    Assign {
        /// The assignment target.
        target: Target,
        /// The value expression.
        value: Expr,
        /// Position of the `=`.
        pos: Pos,
    },
    /// An expression evaluated for side effects (function call).
    ExprStmt(Expr),
    /// `if cond then block {elseif cond then block} [else block] end`.
    If {
        /// (condition, block) arms — the first matching arm runs.
        arms: Vec<(Expr, Block)>,
        /// The `else` block, if present.
        otherwise: Option<Block>,
    },
    /// `while cond do block end`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// Numeric `for name = start, stop [, step] do block end`.
    NumericFor {
        /// Loop variable (fresh scope per iteration).
        var: String,
        /// Start expression.
        start: Expr,
        /// Inclusive stop expression.
        stop: Expr,
        /// Step (None = 1).
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// Generic `for k, v in expr do block end` — `expr` must evaluate
    /// to a table; iterates the array part as (1-based index, value),
    /// then (for `pairs`-style iteration) the hash part as (key, value)
    /// in sorted key order.
    GenericFor {
        /// First loop variable (index / key).
        key_var: String,
        /// Second loop variable (value); optional in the source.
        value_var: Option<String>,
        /// The iterable expression.
        iterable: Expr,
        /// Loop body.
        body: Block,
    },
    /// `break`.
    Break(Pos),
    /// `return [expr]`.
    Return(Option<Expr>, Pos),
    /// `local function name(params) body end` — sugar kept explicit so
    /// recursion works (the name is in scope inside the body).
    LocalFunction {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body block.
        body: Block,
        /// Position of `function`.
        pos: Pos,
    },
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A plain variable.
    Name(String),
    /// `table[key]` or `table.field`.
    Index {
        /// The table expression.
        table: Expr,
        /// The key expression.
        key: Expr,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `nil`
    Nil(Pos),
    /// `true` / `false`
    Bool(bool, Pos),
    /// Numeric literal.
    Number(f64, Pos),
    /// String literal.
    Str(String, Pos),
    /// Variable reference.
    Var(String, Pos),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Operator position.
        pos: Pos,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Operator position.
        pos: Pos,
    },
    /// Function call `f(a, b)`.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Position of the `(`.
        pos: Pos,
    },
    /// Indexing `t[k]` / `t.k`.
    Index {
        /// The table.
        table: Box<Expr>,
        /// The key.
        key: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Table constructor `{a, b, key = v, [expr] = v}`.
    Table {
        /// Positional entries (array part, 1-based at runtime).
        array: Vec<Expr>,
        /// Keyed entries.
        hash: Vec<(TableKey, Expr)>,
        /// Position of `{`.
        pos: Pos,
    },
    /// Anonymous function `function(params) body end`.
    Function {
        /// Parameter names.
        params: Vec<String>,
        /// Body block.
        body: Block,
        /// Position of `function`.
        pos: Pos,
    },
}

/// Keys in table constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum TableKey {
    /// `name = value`.
    Name(String),
    /// `[expr] = value`.
    Expr(Expr),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical `not`.
    Not,
    /// Length `#`.
    Len,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^`
    Pow,
    /// `..`
    Concat,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
}

impl Stmt {
    /// Source position of the statement (for error messages and
    /// diagnostics). Statements without their own stored position
    /// report the position of their leading expression.
    pub fn pos(&self) -> Pos {
        match self {
            Stmt::Local { pos, .. }
            | Stmt::Assign { pos, .. }
            | Stmt::LocalFunction { pos, .. }
            | Stmt::Break(pos)
            | Stmt::Return(_, pos) => *pos,
            Stmt::ExprStmt(e) => e.pos(),
            // The parser guarantees at least one arm.
            Stmt::If { arms, .. } => arms.first().map(|(c, _)| c.pos()).unwrap_or_default(),
            Stmt::While { cond, .. } => cond.pos(),
            Stmt::NumericFor { start, .. } => start.pos(),
            Stmt::GenericFor { iterable, .. } => iterable.pos(),
        }
    }
}

impl Expr {
    /// Source position of the expression (for error messages).
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Nil(p)
            | Expr::Bool(_, p)
            | Expr::Number(_, p)
            | Expr::Str(_, p)
            | Expr::Var(_, p) => *p,
            Expr::Unary { pos, .. }
            | Expr::Binary { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::Table { pos, .. }
            | Expr::Function { pos, .. } => *pos,
        }
    }
}
