//! The host-function whitelist.
//!
//! §II-A: "security can be enforced here by only allowing a white list
//! of unharmful functions to be called." A [`HostRegistry`] *is* that
//! whitelist: scripts can only reach host functionality registered here
//! (plus the pure [`crate::stdlib`] builtins). The mobile frontend
//! registers its data-acquisition functions (`get_light_readings`,
//! `get_location`, …) and a `report` sink; everything else is a
//! [`crate::ScriptError::ForbiddenFunction`].

use std::collections::HashMap;
use std::rc::Rc;

use crate::value::Value;

/// Context handed to host functions during a call.
#[derive(Debug)]
pub struct HostContext {
    /// The script's virtual clock in seconds. `sleep()` advances it; host
    /// acquisition functions may too (a 5-sample light read takes time).
    pub virtual_time: f64,
    /// Captured `print` output (one entry per call).
    pub output: Vec<String>,
}

impl HostContext {
    /// A context at time zero with no output.
    pub fn new() -> Self {
        HostContext { virtual_time: 0.0, output: Vec::new() }
    }
}

impl Default for HostContext {
    fn default() -> Self {
        Self::new()
    }
}

/// A host (native) function callable from scripts.
///
/// Returns `Ok(value)` or a descriptive error string, surfaced to the
/// script runner as [`crate::ScriptError::HostError`].
pub type HostFn = Rc<dyn Fn(&mut HostContext, &[Value]) -> Result<Value, String>>;

/// The whitelist of host functions.
#[derive(Default, Clone)]
pub struct HostRegistry {
    fns: HashMap<String, HostFn>,
}

impl std::fmt::Debug for HostRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.fns.keys().collect();
        names.sort();
        f.debug_struct("HostRegistry").field("functions", &names).finish()
    }
}

impl HostRegistry {
    /// An empty whitelist.
    pub fn new() -> Self {
        HostRegistry::default()
    }

    /// Registers (or replaces) a host function under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&mut HostContext, &[Value]) -> Result<Value, String> + 'static,
    {
        self.fns.insert(name.into(), Rc::new(f));
    }

    /// Removes a function from the whitelist. Returns whether it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        self.fns.remove(name).is_some()
    }

    /// Looks up a function.
    pub fn get(&self, name: &str) -> Option<HostFn> {
        self.fns.get(name).cloned()
    }

    /// Whether `name` is whitelisted.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// Sorted names, for diagnostics.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.fns.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let mut reg = HostRegistry::new();
        reg.register("double", |_ctx, args| {
            let n = args[0].as_number().ok_or("expected number")?;
            Ok(Value::Number(n * 2.0))
        });
        assert!(reg.contains("double"));
        let f = reg.get("double").unwrap();
        let mut ctx = HostContext::new();
        assert_eq!(f(&mut ctx, &[Value::Number(4.0)]).unwrap(), Value::Number(8.0));
    }

    #[test]
    fn unregister_removes() {
        let mut reg = HostRegistry::new();
        reg.register("f", |_, _| Ok(Value::Nil));
        assert!(reg.unregister("f"));
        assert!(!reg.contains("f"));
        assert!(!reg.unregister("f"));
    }

    #[test]
    fn names_are_sorted() {
        let mut reg = HostRegistry::new();
        reg.register("zeta", |_, _| Ok(Value::Nil));
        reg.register("alpha", |_, _| Ok(Value::Nil));
        assert_eq!(reg.names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }

    #[test]
    fn host_fn_can_advance_clock() {
        let mut reg = HostRegistry::new();
        reg.register("slow_read", |ctx, _| {
            ctx.virtual_time += 3.0;
            Ok(Value::Number(42.0))
        });
        let mut ctx = HostContext::new();
        reg.get("slow_read").unwrap()(&mut ctx, &[]).unwrap();
        assert_eq!(ctx.virtual_time, 3.0);
    }
}
