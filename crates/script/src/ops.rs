//! Shared runtime semantics of SenseScript operators.
//!
//! Every observable operation that both execution engines — the
//! tree-walking [`crate::interp::Interpreter`] and the bytecode
//! [`crate::bytecode::Vm`] — must agree on bit-for-bit lives here:
//! unary/binary operators (including Lua's floored modulo and
//! NaN-compares-false ordering), table indexing, the table-constructor
//! numeric-key rule, and the generic-for iteration snapshot. The
//! `optdiff` three-way differential gate checks the engines against
//! each other; sharing the semantics kernel is what makes that gate
//! hold by construction rather than by parallel maintenance.

use std::cell::RefCell;
use std::rc::Rc;

use crate::ast::{BinOp, UnOp};
use crate::value::{Table, Value};
use crate::{Pos, ScriptError};

/// Applies a unary operator. `-` needs a number, `not` follows Lua
/// truthiness, `#` measures a table's array part or a string's chars.
///
/// # Errors
///
/// [`ScriptError::TypeError`] when the operand type does not fit.
pub fn apply_unary(op: UnOp, v: Value, pos: Pos) -> Result<Value, ScriptError> {
    match op {
        UnOp::Neg => {
            v.as_number().map(|n| Value::Number(-n)).ok_or_else(|| ScriptError::TypeError {
                message: format!("cannot negate a {}", v.type_name()),
                at: pos,
            })
        }
        UnOp::Not => Ok(Value::Bool(!v.truthy())),
        UnOp::Len => match &v {
            Value::Table(t) => Ok(Value::Number(t.borrow().array.len() as f64)),
            Value::Str(s) => Ok(Value::Number(s.chars().count() as f64)),
            other => Err(ScriptError::TypeError {
                message: format!("cannot take length of a {}", other.type_name()),
                at: pos,
            }),
        },
    }
}

/// Applies a non-short-circuit binary operator (`and`/`or` are control
/// flow and stay in the engines). Arithmetic follows Lua 5.1: floored
/// modulo, `^` via `powf`, `..` on strings and numbers only, ordering
/// on numbers and strings with NaN comparisons false.
///
/// # Errors
///
/// [`ScriptError::TypeError`] on operand type mismatches.
pub fn apply_binary(op: BinOp, l: Value, r: Value, pos: Pos) -> Result<Value, ScriptError> {
    use BinOp::*;
    let type_err = |msg: String| ScriptError::TypeError { message: msg, at: pos };
    match op {
        Add | Sub | Mul | Div | Mod | Pow => {
            let (a, b) = match (l.as_number(), r.as_number()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(type_err(format!(
                        "arithmetic on {} and {}",
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            let n = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a - (a / b).floor() * b, // Lua's floored modulo
                Pow => a.powf(b),
                _ => unreachable!(),
            };
            Ok(Value::Number(n))
        }
        Concat => match (&l, &r) {
            (Value::Str(_) | Value::Number(_), Value::Str(_) | Value::Number(_)) => {
                Ok(Value::str(format!("{}{}", l.display(), r.display())))
            }
            _ => {
                Err(type_err(format!("cannot concatenate {} and {}", l.type_name(), r.type_name())))
            }
        },
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt | Le | Gt | Ge => {
            let ord = match (&l, &r) {
                (Value::Number(a), Value::Number(b)) => a.partial_cmp(b),
                (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                _ => {
                    return Err(type_err(format!(
                        "cannot compare {} and {}",
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            let Some(ord) = ord else {
                return Ok(Value::Bool(false)); // NaN comparisons
            };
            let b = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        And | Or => unreachable!("short-circuit ops are control flow in the engines"),
    }
}

/// Reads `t[k]`: integral keys ≥ 1 hit the array part (missing → nil),
/// string keys the hash part (missing → nil); anything else is an
/// error, as is indexing a non-table.
///
/// # Errors
///
/// [`ScriptError::TypeError`] on non-table `t` or an invalid key type.
pub fn index_get(t: &Value, k: &Value, pos: Pos) -> Result<Value, ScriptError> {
    let Value::Table(t) = t else {
        return Err(ScriptError::TypeError {
            message: format!("attempt to index a {}", t.type_name()),
            at: pos,
        });
    };
    let t = t.borrow();
    match k {
        Value::Number(n) if n.fract() == 0.0 && *n >= 1.0 => {
            Ok(t.array.get(*n as usize - 1).cloned().unwrap_or(Value::Nil))
        }
        Value::Str(s) => Ok(t.hash.get(s.as_ref()).cloned().unwrap_or(Value::Nil)),
        other => Err(ScriptError::TypeError {
            message: format!("invalid table key of type {}", other.type_name()),
            at: pos,
        }),
    }
}

/// Writes `t[k] = v`: in-bounds array overwrite, `len+1` append, hash
/// insert for string keys; sparse numeric writes are rejected.
///
/// # Errors
///
/// [`ScriptError::TypeError`] on non-table `t`, invalid key type, or a
/// sparse array write.
pub fn index_set(t: &Value, k: &Value, v: Value, pos: Pos) -> Result<(), ScriptError> {
    let Value::Table(t) = t else {
        return Err(ScriptError::TypeError {
            message: format!("attempt to index a {}", t.type_name()),
            at: pos,
        });
    };
    let mut t = t.borrow_mut();
    match k {
        Value::Number(n) if n.fract() == 0.0 && *n >= 1.0 => {
            let idx = *n as usize;
            if idx <= t.array.len() {
                t.array[idx - 1] = v;
            } else if idx == t.array.len() + 1 {
                t.array.push(v);
            } else {
                return Err(ScriptError::TypeError {
                    message: format!("sparse array write at index {idx} (len {})", t.array.len()),
                    at: pos,
                });
            }
            Ok(())
        }
        Value::Str(s) => {
            t.hash.insert(s.to_string(), v);
            Ok(())
        }
        other => Err(ScriptError::TypeError {
            message: format!("invalid table key of type {}", other.type_name()),
            at: pos,
        }),
    }
}

/// Where a `[expr] = value` constructor entry lands, given the current
/// array length: contiguous integral keys extend the array part,
/// everything else becomes a hash entry under the key's display form.
#[derive(Debug, PartialEq, Eq)]
pub enum ConstructorSlot {
    /// Append to the array part.
    Append,
    /// Insert under this hash key.
    Hash(String),
}

/// Classifies a computed table-constructor key (see
/// [`ConstructorSlot`]).
///
/// # Errors
///
/// [`ScriptError::TypeError`] for non-string, non-number keys.
pub fn constructor_slot(
    key: &Value,
    arr_len: usize,
    pos: Pos,
) -> Result<ConstructorSlot, ScriptError> {
    match key {
        Value::Str(s) => Ok(ConstructorSlot::Hash(s.to_string())),
        Value::Number(n) => {
            let idx = *n as usize;
            if n.fract() == 0.0 && idx == arr_len + 1 {
                Ok(ConstructorSlot::Append)
            } else {
                Ok(ConstructorSlot::Hash(Value::Number(*n).display()))
            }
        }
        other => Err(ScriptError::TypeError {
            message: format!("table key must be string or number, got {}", other.type_name()),
            at: pos,
        }),
    }
}

/// Snapshots a table for generic-for iteration: the array part as
/// 1-based numeric keys, then the hash part in sorted key order. Both
/// engines iterate the snapshot, so body mutations cannot invalidate
/// iteration (or deadlock the `RefCell`).
pub fn iteration_snapshot(t: &Rc<RefCell<Table>>) -> Vec<(Value, Value)> {
    let t = t.borrow();
    let mut keys: Vec<String> = t.hash.keys().cloned().collect();
    keys.sort();
    t.array
        .iter()
        .enumerate()
        .map(|(i, v)| (Value::Number(i as f64 + 1.0), v.clone()))
        .chain(keys.into_iter().map(|k| {
            let v = t.hash[&k].clone();
            (Value::str(k), v)
        }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Pos {
        Pos::default()
    }

    #[test]
    fn floored_modulo_matches_lua() {
        let v = apply_binary(BinOp::Mod, Value::Number(-7.0), Value::Number(3.0), p()).unwrap();
        assert_eq!(v, Value::Number(2.0));
    }

    #[test]
    fn nan_ordering_is_false_not_error() {
        let nan = Value::Number(f64::NAN);
        let v = apply_binary(BinOp::Lt, nan, Value::Number(1.0), p()).unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn constructor_slot_extends_contiguously() {
        assert_eq!(constructor_slot(&Value::Number(3.0), 2, p()).unwrap(), ConstructorSlot::Append);
        assert_eq!(
            constructor_slot(&Value::Number(5.0), 2, p()).unwrap(),
            ConstructorSlot::Hash("5".to_string())
        );
        assert!(constructor_slot(&Value::Bool(true), 0, p()).is_err());
    }

    #[test]
    fn snapshot_orders_array_then_sorted_hash() {
        let Value::Table(t) = Value::table(
            vec![Value::Number(10.0)],
            [("b".to_string(), Value::Number(2.0)), ("a".to_string(), Value::Number(1.0))]
                .into_iter()
                .collect(),
        ) else {
            unreachable!()
        };
        let entries = iteration_snapshot(&t);
        assert_eq!(entries[0].0, Value::Number(1.0));
        assert_eq!(entries[1].0, Value::str("a"));
        assert_eq!(entries[2].0, Value::str("b"));
    }
}
