//! The SenseScript lexer.

use crate::token::{Token, TokenKind};
use crate::{Pos, ScriptError};

/// Lexes a whole source string into tokens (ending with
/// [`TokenKind::Eof`]).
///
/// # Errors
///
/// [`ScriptError::UnexpectedChar`], [`ScriptError::UnterminatedString`]
/// or [`ScriptError::BadNumber`] with positions.
pub fn lex(src: &str) -> Result<Vec<Token>, ScriptError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'a str>,
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().collect(), src: std::marker::PhantomData, i: 0, line: 1, col: 1 }
    }

    fn pos(&self) -> Pos {
        Pos { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, ScriptError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token { kind: TokenKind::Eof, pos });
                return Ok(out);
            };
            let kind = match c {
                '0'..='9' => self.number(pos)?,
                '"' | '\'' => self.string(pos)?,
                c if c.is_alphabetic() || c == '_' => self.ident(),
                _ => self.operator(pos)?,
            };
            out.push(Token { kind, pos });
        }
    }

    /// Skips whitespace and `--` line comments (including Lua-style
    /// comment headers on the sample scripts of Fig. 4).
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<TokenKind, ScriptError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' {
                // Don't swallow `..` (concat) after an integer: `1..x`.
                if c == '.' && self.peek2() == Some('.') {
                    break;
                }
                text.push(c);
                self.bump();
                // Exponent sign.
                if (c == 'e' || c == 'E') && matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().expect("peeked"));
                }
            } else {
                break;
            }
        }
        text.parse::<f64>()
            .map(TokenKind::Number)
            .map_err(|_| ScriptError::BadNumber { text, at: pos })
    }

    fn string(&mut self, pos: Pos) -> Result<TokenKind, ScriptError> {
        let quote = self.bump().expect("peeked");
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(ScriptError::UnterminatedString { at: pos }),
                Some(c) if c == quote => return Ok(TokenKind::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some('\'') => s.push('\''),
                    Some(other) => s.push(other),
                    None => return Err(ScriptError::UnterminatedString { at: pos }),
                },
                Some('\n') => return Err(ScriptError::UnterminatedString { at: pos }),
                Some(c) => s.push(c),
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.as_str() {
            "local" => TokenKind::Local,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "elseif" => TokenKind::Elseif,
            "end" => TokenKind::End,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "do" => TokenKind::Do,
            "break" => TokenKind::Break,
            "return" => TokenKind::Return,
            "function" => TokenKind::Function,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "nil" => TokenKind::Nil,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            _ => TokenKind::Ident(s),
        }
    }

    fn operator(&mut self, pos: Pos) -> Result<TokenKind, ScriptError> {
        let c = self.bump().expect("peeked");
        let kind = match c {
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '^' => TokenKind::Caret,
            '#' => TokenKind::Hash,
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ',' => TokenKind::Comma,
            ';' => TokenKind::Semi,
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            '~' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(ScriptError::UnexpectedChar { ch: '~', at: pos });
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '.' => {
                if self.peek() == Some('.') {
                    self.bump();
                    TokenKind::Concat
                } else {
                    TokenKind::Dot
                }
            }
            other => return Err(ScriptError::UnexpectedChar { ch: other, at: pos }),
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_fig4_style_script() {
        let src = r#"
            -- sample the light sensor
            local readings = get_light_readings(5)
            report("light", readings)
        "#;
        let k = kinds(src);
        assert!(k.contains(&TokenKind::Local));
        assert!(k.contains(&TokenKind::Ident("get_light_readings".into())));
        assert!(k.contains(&TokenKind::Str("light".into())));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers_including_floats_and_exponents() {
        assert_eq!(
            kinds("1 2.5 1e3 2.5e-2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn concat_after_number_not_swallowed() {
        assert_eq!(kinds("1 .. 2")[1], TokenKind::Concat);
        assert_eq!(
            kinds("1..2"),
            vec![TokenKind::Number(1.0), TokenKind::Concat, TokenKind::Number(2.0), TokenKind::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb" 'c\'d'"#),
            vec![TokenKind::Str("a\nb".into()), TokenKind::Str("c'd".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("-- whole line\n1 -- trailing"),
            vec![TokenKind::Number(1.0), TokenKind::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= == ~= ="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Assign,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_resolved() {
        assert_eq!(
            kinds("while do end localx"),
            vec![
                TokenKind::While,
                TokenKind::Do,
                TokenKind::End,
                TokenKind::Ident("localx".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("\"abc"), Err(ScriptError::UnterminatedString { .. })));
        assert!(matches!(lex("\"abc\ndef\""), Err(ScriptError::UnterminatedString { .. })));
    }

    #[test]
    fn lone_tilde_errors() {
        assert!(matches!(lex("~"), Err(ScriptError::UnexpectedChar { ch: '~', .. })));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(lex("@"), Err(ScriptError::UnexpectedChar { ch: '@', .. })));
    }

    #[test]
    fn empty_source_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   -- only a comment"), vec![TokenKind::Eof]);
    }
}
