//! SenseScript — the sensing-task description language of SOR.
//!
//! §II-A of the paper: "How to sense, i.e., what data to acquire, is
//! described using the Lua scripting language … The interpreter can
//! interpret both Lua's own functions and the functions we defined for
//! data acquisition. … Note that security can be enforced here by only
//! allowing a white list of unharmful functions to be called."
//!
//! SenseScript is a from-scratch Lua-subset implementation with exactly
//! the properties the paper relies on:
//!
//! - **Procedural syntax with tables**: `local`, `if/elseif/else`,
//!   `while`, numeric `for`, functions with closures, associative
//!   tables (`{1, 2, x = 3}`), the operators of Lua (including `..`
//!   concatenation, `~=`, `#`).
//! - **Host-function whitelist**: scripts can only call functions
//!   registered through [`host::HostRegistry`] — the data-acquisition
//!   functions of the paper (`get_light_readings()`, `get_location()`,
//!   …) are provided by the mobile frontend crate; anything else is a
//!   runtime error, never an escape hatch.
//! - **Bounded execution**: an instruction budget aborts runaway scripts
//!   (a malformed `while true do end` cannot wedge a task thread).
//!
//! # Example
//!
//! ```
//! use sor_script::{Interpreter, Value};
//!
//! let src = r#"
//!     local sum = 0
//!     for i = 1, 10 do
//!         sum = sum + i
//!     end
//!     return sum
//! "#;
//! let mut interp = Interpreter::new();
//! let result = interp.run(src)?;
//! assert_eq!(result, Value::Number(55.0));
//! # Ok::<(), sor_script::ScriptError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod bytecode;
pub mod host;
pub mod interp;
pub mod lexer;
pub mod ops;
pub mod optimize;
pub mod parser;
pub mod stdlib;
pub mod token;
pub mod value;

pub use bytecode::{compile, CacheOutcome, CacheStats, CompiledModule, Prepared, ScriptCache, Vm};
pub use host::{HostContext, HostFn, HostRegistry};
pub use interp::Interpreter;
pub use value::Value;

/// Source position for diagnostics (1-based line, 1-based column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing or executing SenseScript.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// A character the lexer does not understand.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Where it was found.
        at: Pos,
    },
    /// An unterminated string literal.
    UnterminatedString {
        /// Where the string started.
        at: Pos,
    },
    /// A malformed numeric literal.
    BadNumber {
        /// The raw text.
        text: String,
        /// Where it started.
        at: Pos,
    },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// Human rendering of the found token.
        found: String,
        /// What was expected.
        expected: &'static str,
        /// Where.
        at: Pos,
    },
    /// A runtime type error, e.g. adding a string to a table.
    TypeError {
        /// Description of the violation.
        message: String,
        /// Where (statement/expression position).
        at: Pos,
    },
    /// Use of a variable that was never defined (strict mode: SenseScript
    /// has no implicit global creation on *read*).
    UndefinedVariable {
        /// The name.
        name: String,
        /// Where.
        at: Pos,
    },
    /// A call to a host function that is not on the whitelist.
    ForbiddenFunction {
        /// The name the script tried to call.
        name: String,
        /// Where.
        at: Pos,
    },
    /// The instruction budget was exhausted.
    BudgetExhausted {
        /// The budget that was configured.
        budget: u64,
        /// The statement or expression being charged when the budget
        /// ran out.
        at: Pos,
    },
    /// Script function calls nested deeper than the configured limit.
    CallDepthExceeded {
        /// The configured maximum depth.
        limit: usize,
        /// The call site that exceeded the limit.
        at: Pos,
    },
    /// A host function reported an error.
    HostError {
        /// Host-provided description.
        message: String,
        /// The call site of the host function.
        at: Pos,
    },
    /// `error("...")` was called from the script.
    Explicit {
        /// The error value rendered to text.
        message: String,
        /// The call site of `error` / `assert`.
        at: Pos,
    },
    /// Wrong number/type of arguments to a builtin.
    BadArguments {
        /// The function.
        function: String,
        /// Description of the problem.
        message: String,
        /// The call site of the builtin.
        at: Pos,
    },
}

impl ScriptError {
    /// The source position the error is attached to. Every variant
    /// carries one, so task logs and lint output can always point at a
    /// line and column.
    pub fn pos(&self) -> Pos {
        match self {
            ScriptError::UnexpectedChar { at, .. }
            | ScriptError::UnterminatedString { at }
            | ScriptError::BadNumber { at, .. }
            | ScriptError::UnexpectedToken { at, .. }
            | ScriptError::TypeError { at, .. }
            | ScriptError::UndefinedVariable { at, .. }
            | ScriptError::ForbiddenFunction { at, .. }
            | ScriptError::BudgetExhausted { at, .. }
            | ScriptError::CallDepthExceeded { at, .. }
            | ScriptError::HostError { at, .. }
            | ScriptError::Explicit { at, .. }
            | ScriptError::BadArguments { at, .. } => *at,
        }
    }
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::UnexpectedChar { ch, at } => {
                write!(f, "unexpected character {ch:?} at {at}")
            }
            ScriptError::UnterminatedString { at } => {
                write!(f, "unterminated string starting at {at}")
            }
            ScriptError::BadNumber { text, at } => {
                write!(f, "malformed number {text:?} at {at}")
            }
            ScriptError::UnexpectedToken { found, expected, at } => {
                write!(f, "expected {expected} but found {found} at {at}")
            }
            ScriptError::TypeError { message, at } => write!(f, "type error at {at}: {message}"),
            ScriptError::UndefinedVariable { name, at } => {
                write!(f, "undefined variable `{name}` at {at}")
            }
            ScriptError::ForbiddenFunction { name, at } => {
                write!(f, "call to non-whitelisted function `{name}` at {at}")
            }
            ScriptError::BudgetExhausted { budget, at } => {
                write!(f, "script exceeded its instruction budget of {budget} at {at}")
            }
            ScriptError::CallDepthExceeded { limit, at } => {
                write!(f, "script exceeded the call-depth limit of {limit} at {at}")
            }
            ScriptError::HostError { message, at } => {
                write!(f, "host function failed at {at}: {message}")
            }
            ScriptError::Explicit { message, at } => {
                write!(f, "script error at {at}: {message}")
            }
            ScriptError::BadArguments { function, message, at } => {
                write!(f, "bad arguments to {function} at {at}: {message}")
            }
        }
    }
}

impl std::error::Error for ScriptError {}
