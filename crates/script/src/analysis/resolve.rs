//! Pass 1: symbol resolution.
//!
//! Walks the AST with a lexical scope stack mirroring the
//! interpreter's scoping rules (`if`/loop bodies and function bodies
//! open child scopes; `local x = x` resolves the initialiser before
//! the new binding exists; `local function` is visible to its own
//! body). Reports:
//!
//! - **E002** reads of names with no visible definition anywhere,
//! - **W101** duplicate `local` declarations at the same scope depth,
//! - **W102** assignments that create globals,
//!
//! and records, for the later passes, every call site with what its
//! callee statically resolves to, an arena of every function literal,
//! and the locals that are never read.
//!
//! The pass is deliberately conservative about globals: the
//! interpreter creates a global on first assignment, and assignment
//! order is not statically known, so *any* name assigned anywhere in
//! the script is treated as a possibly-defined global at every read.

use std::collections::{HashMap, HashSet};

use crate::analysis::diagnostic::{Diagnostic, DiagnosticCode};
use crate::analysis::CapabilitySet;
use crate::ast::{Block, Expr, Stmt, TableKey, Target};
use crate::stdlib;
use crate::Pos;

/// What a named call site's callee statically resolves to, in the
/// interpreter's lookup order (scope, then builtins, then host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallTarget {
    /// A script function whose body is statically known (index into
    /// [`Resolution::functions`]).
    Known(usize),
    /// A builtin from [`stdlib`].
    Builtin,
    /// A host function in the declared capability set.
    Capability,
    /// A variable that is in scope (or a possibly-assigned global)
    /// but whose value the analyzer cannot see through.
    Dynamic,
    /// Nothing matches: the call is forbidden (E003).
    Unknown,
}

/// One call site, as seen by the calls and cost passes.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    /// Position of the call's `(`.
    pub pos: Pos,
    /// The callee name (`None` for computed callees like `t.f()`).
    pub name: Option<String>,
    /// Number of arguments passed.
    pub argc: usize,
    /// Static resolution of the callee.
    pub target: CallTarget,
}

/// A function literal (anonymous or `local function`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnDef<'a> {
    /// Declared parameter names.
    pub params: &'a [String],
    /// The body block.
    pub body: &'a Block,
    /// Position of the `function` keyword.
    pub pos: Pos,
    /// The name it is bound to, when declared as one.
    pub name: Option<&'a str>,
}

/// Everything the resolution pass learned.
#[derive(Debug)]
pub(crate) struct Resolution<'a> {
    /// E002 / W101 / W102 findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Every call site in the script, in source order.
    pub calls: Vec<CallSite>,
    /// Arena of every function literal in the script.
    pub functions: Vec<FnDef<'a>>,
    /// Locals declared but never read (name, declaration position).
    pub unused_locals: Vec<(String, Pos)>,
}

/// Runs the pass over a top-level block.
pub(crate) fn resolve<'a>(block: &'a Block, caps: &CapabilitySet) -> Resolution<'a> {
    let mut globals = HashSet::new();
    let mut global_fn_assigns: HashMap<&'a str, Vec<&'a Expr>> = HashMap::new();
    collect_assigned_names(block, &mut globals, &mut global_fn_assigns);

    let mut r = Resolver {
        caps,
        globals_assigned: globals,
        scopes: vec![HashMap::new()],
        out: Resolution {
            diagnostics: Vec::new(),
            calls: Vec::new(),
            functions: Vec::new(),
            unused_locals: Vec::new(),
        },
        warned_globals: HashSet::new(),
        global_fns: HashMap::new(),
    };

    // A name assigned a function literal exactly once (and never
    // reassigned) has a statically known body at every call site.
    r.seed_global_fns(&global_fn_assigns);

    r.stmt_list(block);
    r.pop_scope();
    r.out.diagnostics.sort_by_key(|d| (d.pos.line, d.pos.col));
    r.out
}

/// Collects every name the script assigns with `name = …` anywhere
/// (conditionals and closures included) — the conservative
/// "possibly a global" set — plus the function-literal assignments
/// used to give unique global functions a known body.
fn collect_assigned_names<'a>(
    block: &'a Block,
    names: &mut HashSet<&'a str>,
    fn_assigns: &mut HashMap<&'a str, Vec<&'a Expr>>,
) {
    for stmt in block {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                if let Target::Name(n) = target {
                    names.insert(n.as_str());
                    fn_assigns.entry(n.as_str()).or_default().push(value);
                }
                if let Target::Index { table, key } = target {
                    collect_in_expr(table, names, fn_assigns);
                    collect_in_expr(key, names, fn_assigns);
                }
                collect_in_expr(value, names, fn_assigns);
            }
            Stmt::Local { init, .. } => {
                if let Some(e) = init {
                    collect_in_expr(e, names, fn_assigns);
                }
            }
            Stmt::ExprStmt(e) => collect_in_expr(e, names, fn_assigns),
            Stmt::If { arms, otherwise } => {
                for (c, b) in arms {
                    collect_in_expr(c, names, fn_assigns);
                    collect_assigned_names(b, names, fn_assigns);
                }
                if let Some(b) = otherwise {
                    collect_assigned_names(b, names, fn_assigns);
                }
            }
            Stmt::While { cond, body } => {
                collect_in_expr(cond, names, fn_assigns);
                collect_assigned_names(body, names, fn_assigns);
            }
            Stmt::NumericFor { start, stop, step, body, .. } => {
                collect_in_expr(start, names, fn_assigns);
                collect_in_expr(stop, names, fn_assigns);
                if let Some(e) = step {
                    collect_in_expr(e, names, fn_assigns);
                }
                collect_assigned_names(body, names, fn_assigns);
            }
            Stmt::GenericFor { iterable, body, .. } => {
                collect_in_expr(iterable, names, fn_assigns);
                collect_assigned_names(body, names, fn_assigns);
            }
            Stmt::LocalFunction { body, .. } => {
                collect_assigned_names(body, names, fn_assigns);
            }
            Stmt::Break(_) | Stmt::Return(None, _) => {}
            Stmt::Return(Some(e), _) => collect_in_expr(e, names, fn_assigns),
        }
    }
}

fn collect_in_expr<'a>(
    e: &'a Expr,
    names: &mut HashSet<&'a str>,
    fn_assigns: &mut HashMap<&'a str, Vec<&'a Expr>>,
) {
    match e {
        Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..) | Expr::Var(..) => {}
        Expr::Unary { expr, .. } => collect_in_expr(expr, names, fn_assigns),
        Expr::Binary { lhs, rhs, .. } => {
            collect_in_expr(lhs, names, fn_assigns);
            collect_in_expr(rhs, names, fn_assigns);
        }
        Expr::Call { callee, args, .. } => {
            collect_in_expr(callee, names, fn_assigns);
            for a in args {
                collect_in_expr(a, names, fn_assigns);
            }
        }
        Expr::Index { table, key, .. } => {
            collect_in_expr(table, names, fn_assigns);
            collect_in_expr(key, names, fn_assigns);
        }
        Expr::Table { array, hash, .. } => {
            for a in array {
                collect_in_expr(a, names, fn_assigns);
            }
            for (k, v) in hash {
                if let TableKey::Expr(ke) = k {
                    collect_in_expr(ke, names, fn_assigns);
                }
                collect_in_expr(v, names, fn_assigns);
            }
        }
        Expr::Function { body, .. } => collect_assigned_names(body, names, fn_assigns),
    }
}

#[derive(Debug)]
struct Binding {
    pos: Pos,
    read: bool,
    /// Declared as a parameter or loop variable (exempt from W103).
    param: bool,
    /// Index into the function arena when the binding is a statically
    /// known function literal.
    fn_def: Option<usize>,
}

struct Resolver<'a, 'c> {
    caps: &'c CapabilitySet,
    globals_assigned: HashSet<&'a str>,
    scopes: Vec<HashMap<&'a str, Binding>>,
    out: Resolution<'a>,
    /// Globals already reported as W102 (one report per name).
    warned_globals: HashSet<&'a str>,
    /// Globals assigned a function literal exactly once.
    global_fns: HashMap<&'a str, usize>,
}

impl<'a, 'c> Resolver<'a, 'c> {
    /// Registers FnDefs for globals that are assigned a function
    /// literal exactly once — their bodies are statically known.
    fn seed_global_fns(&mut self, fn_assigns: &HashMap<&'a str, Vec<&'a Expr>>) {
        let mut names: Vec<&&'a str> = fn_assigns.keys().collect();
        names.sort();
        for name in names {
            let assigns = &fn_assigns[*name];
            if assigns.len() != 1 {
                continue;
            }
            if let Expr::Function { params, body, pos } = assigns[0] {
                let idx = self.out.functions.len();
                self.out.functions.push(FnDef { params, body, pos: *pos, name: Some(name) });
                self.global_fns.insert(name, idx);
            }
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope underflow");
        let mut unused: Vec<(String, Pos)> = scope
            .into_iter()
            .filter(|(name, b)| !b.read && !b.param && !name.starts_with('_'))
            .map(|(name, b)| (name.to_string(), b.pos))
            .collect();
        unused.sort_by_key(|(_, p)| (p.line, p.col));
        self.out.unused_locals.extend(unused);
    }

    fn declare(&mut self, name: &'a str, pos: Pos, param: bool, fn_def: Option<usize>) {
        let scope = self.scopes.last_mut().expect("no scope");
        if let Some(prev) = scope.get(name) {
            let d = Diagnostic::new(
                DiagnosticCode::ShadowedLocal,
                pos,
                format!(
                    "local `{name}` shadows an earlier local declared at {} in the same block",
                    prev.pos
                ),
            );
            self.out.diagnostics.push(d);
        }
        scope.insert(name, Binding { pos, read: false, param, fn_def });
    }

    /// Looks `name` up through the scope stack, marking it read.
    fn read_local(&mut self, name: &str) -> Option<&Binding> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(b) = scope.get_mut(name) {
                b.read = true;
                return Some(&*b);
            }
        }
        None
    }

    /// Whether `name` resolves to a local, without marking it read.
    fn is_local(&self, name: &str) -> bool {
        self.scopes.iter().rev().any(|s| s.contains_key(name))
    }

    fn stmt_list(&mut self, block: &'a Block) {
        for stmt in block {
            self.stmt(stmt);
        }
    }

    fn scoped_block(&mut self, block: &'a Block) {
        self.push_scope();
        self.stmt_list(block);
        self.pop_scope();
    }

    fn function_body(&mut self, params: &'a [String], body: &'a Block, pos: Pos) {
        self.push_scope();
        for p in params {
            self.declare(p, pos, true, None);
        }
        self.stmt_list(body);
        self.pop_scope();
    }

    fn register_fn(
        &mut self,
        params: &'a [String],
        body: &'a Block,
        pos: Pos,
        name: Option<&'a str>,
    ) -> usize {
        let idx = self.out.functions.len();
        self.out.functions.push(FnDef { params, body, pos, name });
        idx
    }

    fn stmt(&mut self, stmt: &'a Stmt) {
        match stmt {
            Stmt::Local { name, init, pos } => {
                // `local f = function() … end` may recurse through the
                // captured scope, so bind the name before walking the
                // body (mirrors the `local function` rule).
                if let Some(Expr::Function { params, body, pos: fpos }) = init {
                    let idx = self.register_fn(params, body, *fpos, Some(name));
                    self.declare(name, *pos, false, Some(idx));
                    self.function_body(params, body, *fpos);
                } else {
                    if let Some(e) = init {
                        self.expr(e);
                    }
                    self.declare(name, *pos, false, None);
                }
            }
            Stmt::LocalFunction { name, params, body, pos } => {
                let idx = self.register_fn(params, body, *pos, Some(name));
                self.declare(name, *pos, false, Some(idx));
                self.function_body(params, body, *pos);
            }
            Stmt::Assign { target, value, pos } => {
                self.expr(value);
                match target {
                    Target::Name(name) => {
                        if !self.is_local(name) && self.warned_globals.insert(name.as_str()) {
                            self.out.diagnostics.push(Diagnostic::new(
                                DiagnosticCode::GlobalWrite,
                                *pos,
                                format!(
                                    "assignment to undeclared name `{name}` creates a \
                                     global (declare it with `local`)"
                                ),
                            ));
                        }
                    }
                    Target::Index { table, key } => {
                        self.expr(table);
                        self.expr(key);
                    }
                }
            }
            Stmt::ExprStmt(e) => self.expr(e),
            Stmt::If { arms, otherwise } => {
                for (cond, body) in arms {
                    self.expr(cond);
                    self.scoped_block(body);
                }
                if let Some(body) = otherwise {
                    self.scoped_block(body);
                }
            }
            Stmt::While { cond, body } => {
                self.expr(cond);
                self.scoped_block(body);
            }
            Stmt::NumericFor { var, start, stop, step, body } => {
                self.expr(start);
                self.expr(stop);
                if let Some(e) = step {
                    self.expr(e);
                }
                self.push_scope();
                self.declare(var, start.pos(), true, None);
                self.stmt_list(body);
                self.pop_scope();
            }
            Stmt::GenericFor { key_var, value_var, iterable, body } => {
                self.expr(iterable);
                self.push_scope();
                self.declare(key_var, iterable.pos(), true, None);
                if let Some(v) = value_var {
                    self.declare(v, iterable.pos(), true, None);
                }
                self.stmt_list(body);
                self.pop_scope();
            }
            Stmt::Break(_) => {}
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
        }
    }

    fn expr(&mut self, e: &'a Expr) {
        match e {
            Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..) => {}
            Expr::Var(name, pos) => self.var_read(name, *pos),
            Expr::Unary { expr, .. } => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Index { table, key, .. } => {
                self.expr(table);
                self.expr(key);
            }
            Expr::Table { array, hash, .. } => {
                for a in array {
                    self.expr(a);
                }
                for (k, v) in hash {
                    if let TableKey::Expr(ke) = k {
                        self.expr(ke);
                    }
                    self.expr(v);
                }
            }
            Expr::Function { params, body, pos } => {
                self.register_fn(params, body, *pos, None);
                self.function_body(params, body, *pos);
            }
            Expr::Call { callee, args, pos } => {
                for a in args {
                    self.expr(a);
                }
                match callee.as_ref() {
                    // Named calls follow the interpreter's lookup order:
                    // scope, then builtins, then the host whitelist.
                    Expr::Var(name, _) => {
                        let target = if let Some(b) = self.read_local(name) {
                            match b.fn_def {
                                Some(idx) => CallTarget::Known(idx),
                                None => CallTarget::Dynamic,
                            }
                        } else if let Some(&idx) = self.global_fns.get(name.as_str()) {
                            CallTarget::Known(idx)
                        } else if self.globals_assigned.contains(name.as_str()) {
                            CallTarget::Dynamic
                        } else if stdlib::is_builtin(name) {
                            CallTarget::Builtin
                        } else if self.caps.contains(name) {
                            CallTarget::Capability
                        } else {
                            CallTarget::Unknown
                        };
                        self.out.calls.push(CallSite {
                            pos: *pos,
                            name: Some(name.clone()),
                            argc: args.len(),
                            target,
                        });
                    }
                    other => {
                        self.expr(other);
                        self.out.calls.push(CallSite {
                            pos: *pos,
                            name: None,
                            argc: args.len(),
                            target: CallTarget::Dynamic,
                        });
                    }
                }
            }
        }
    }

    /// A plain variable read. Builtins and host functions are *not*
    /// first-class values in SenseScript, so a bare reference to one
    /// is still an undefined name.
    fn var_read(&mut self, name: &'a str, pos: Pos) {
        if self.read_local(name).is_some() || self.globals_assigned.contains(name) {
            return;
        }
        let hint = if stdlib::is_builtin(name) || self.caps.contains(name) {
            " (builtins and host functions can only be called, not referenced as values)"
        } else {
            ""
        };
        self.out.diagnostics.push(Diagnostic::new(
            DiagnosticCode::UndefinedName,
            pos,
            format!("undefined name `{name}`{hint}"),
        ));
    }
}
