//! Pass 2: call-graph and capability checking.
//!
//! Every call site recorded by the resolution pass is validated in
//! the interpreter's own lookup order: script values in scope first,
//! then [`crate::stdlib`] builtins, then the host whitelist — modelled
//! statically by the declared [`crate::analysis::CapabilitySet`].
//! A named call that matches none of these *must* fail at runtime
//! with `ForbiddenFunction`, so it is an **E003** error and blocks
//! admission. Calls to script functions with statically known bodies
//! also get an arity check (**W301**): extra arguments are silently
//! dropped at runtime, which is almost always a bug in the script.

use crate::analysis::diagnostic::{Diagnostic, DiagnosticCode};
use crate::analysis::resolve::{CallTarget, Resolution};

/// Validates every call site, returning E003 / W301 findings.
pub(crate) fn check(res: &Resolution<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for call in &res.calls {
        match call.target {
            CallTarget::Unknown => {
                let name = call.name.as_deref().unwrap_or("<dynamic>");
                diags.push(Diagnostic::new(
                    DiagnosticCode::ForbiddenCall,
                    call.pos,
                    format!(
                        "call to non-whitelisted function `{name}` (not a script \
                         function, builtin, or declared capability)"
                    ),
                ));
            }
            CallTarget::Known(idx) => {
                let f = &res.functions[idx];
                if call.argc > f.params.len() {
                    let name = call.name.as_deref().or(f.name).unwrap_or("<anonymous>");
                    diags.push(Diagnostic::new(
                        DiagnosticCode::ArityMismatch,
                        call.pos,
                        format!(
                            "`{name}` takes {} parameter(s) but {} argument(s) are \
                             passed (extras are silently ignored)",
                            f.params.len(),
                            call.argc
                        ),
                    ));
                }
            }
            CallTarget::Builtin | CallTarget::Capability | CallTarget::Dynamic => {}
        }
    }
    diags
}
