//! Pass 3: control flow and dataflow.
//!
//! Builds a small control-flow graph for the top-level block and for
//! every function literal, then reports:
//!
//! - **W201** statements that can never execute (they follow a
//!   `return`/`break`, every arm of the preceding `if` leaves the
//!   block, or they sit after a `while true` loop nothing breaks out
//!   of),
//! - **W202** functions (and the script itself — its result is the
//!   task result) where some paths `return` a value and others fall
//!   off the end or `return` nothing, so the consumer sometimes sees
//!   `nil`,
//! - **W103** locals that the resolution pass proved are never read
//!   (the liveness half of the dataflow story).
//!
//! Blocks store *references* to the statements they execute, so the
//! [`crate::analysis::dataflow`] engine can run transfer functions
//! over them without a positions-to-AST side table.

use crate::analysis::consteval::const_truthy;
use crate::analysis::diagnostic::{Diagnostic, DiagnosticCode};
use crate::analysis::resolve::Resolution;
use crate::ast::{Block, Stmt};
use crate::Pos;

/// Index of the synthetic exit block in every [`Cfg`].
pub const EXIT: usize = 0;

/// How control reaches the exit block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// `return expr`.
    ValuedReturn,
    /// Bare `return`.
    EmptyReturn,
    /// Execution fell off the end of the function (implicit nil), or a
    /// top-level `break` ended the script.
    Fallthrough,
}

/// One basic block: the statements it executes and its successors.
#[derive(Debug, Default)]
pub struct BasicBlock<'a> {
    /// The statements in the block, in execution order. Loop headers
    /// hold exactly the loop statement; bodies live in successor
    /// blocks (shallow lowering).
    pub stmts: Vec<&'a Stmt>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph. Block [`EXIT`] is the synthetic
/// exit; `entry` is where execution starts.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// All blocks; index 0 is the exit.
    pub blocks: Vec<BasicBlock<'a>>,
    /// The entry block index.
    pub entry: usize,
    /// Every edge into the exit, with how it got there.
    pub exits: Vec<(usize, ExitKind, Pos)>,
}

impl<'a> Cfg<'a> {
    /// Builds the CFG for one function body (or the top-level block).
    pub fn build(body: &'a Block, fn_pos: Pos) -> (Cfg<'a>, Vec<Diagnostic>) {
        let mut b = Builder {
            cfg: Cfg { blocks: vec![BasicBlock::default()], entry: 0, exits: Vec::new() },
            loop_after: Vec::new(),
            diags: Vec::new(),
        };
        let entry = b.new_block();
        b.cfg.entry = entry;
        let end = b.stmt_list(body, Some(entry));
        if let Some(end) = end {
            b.cfg.exits.push((end, ExitKind::Fallthrough, fn_pos));
            b.edge(end, EXIT);
        }
        (b.cfg, b.diags)
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            stack.extend(self.blocks[i].succs.iter().copied());
        }
        seen
    }

    /// Predecessor lists, derived from the successor edges (used by
    /// backward dataflow analyses).
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for &s in &b.succs {
                preds[s].push(i);
            }
        }
        preds
    }
}

struct Builder<'a> {
    cfg: Cfg<'a>,
    /// Stack of "after the innermost loop" blocks (`break` targets).
    loop_after: Vec<usize>,
    diags: Vec<Diagnostic>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.cfg.blocks.push(BasicBlock::default());
        self.cfg.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.cfg.blocks[from].succs.push(to);
    }

    fn has_preds(&self, target: usize) -> bool {
        self.cfg.blocks.iter().any(|b| b.succs.contains(&target))
    }

    /// Lowers a statement list starting in `cur`. Returns the block
    /// where control continues, or `None` if every path has left the
    /// list (returned, broken, or diverged).
    fn stmt_list(&mut self, stmts: &'a [Stmt], mut cur: Option<usize>) -> Option<usize> {
        let mut reported_dead = false;
        for stmt in stmts {
            let c = match cur {
                Some(c) => c,
                None => {
                    // Dead region: report its first statement once,
                    // then keep lowering (nested findings still count)
                    // in a predecessor-less block.
                    if !reported_dead {
                        self.diags.push(Diagnostic::new(
                            DiagnosticCode::UnreachableCode,
                            stmt.pos(),
                            "unreachable statement (control cannot reach this point)",
                        ));
                        reported_dead = true;
                    }
                    self.new_block()
                }
            };
            cur = self.stmt(stmt, c);
        }
        cur
    }

    fn stmt(&mut self, stmt: &'a Stmt, cur: usize) -> Option<usize> {
        match stmt {
            Stmt::Local { .. }
            | Stmt::Assign { .. }
            | Stmt::ExprStmt(_)
            | Stmt::LocalFunction { .. } => {
                self.cfg.blocks[cur].stmts.push(stmt);
                Some(cur)
            }
            Stmt::If { arms, otherwise } => {
                self.cfg.blocks[cur].stmts.push(stmt);
                let join = self.new_block();
                let mut joined = false;
                for (_, body) in arms {
                    let arm = self.new_block();
                    self.edge(cur, arm);
                    if let Some(end) = self.stmt_list(body, Some(arm)) {
                        self.edge(end, join);
                        joined = true;
                    }
                }
                match otherwise {
                    Some(body) => {
                        let arm = self.new_block();
                        self.edge(cur, arm);
                        if let Some(end) = self.stmt_list(body, Some(arm)) {
                            self.edge(end, join);
                            joined = true;
                        }
                    }
                    None => {
                        // No `else`: the condition may simply fail.
                        self.edge(cur, join);
                        joined = true;
                    }
                }
                joined.then_some(join)
            }
            Stmt::While { cond, body } => {
                let header = self.new_block();
                self.cfg.blocks[header].stmts.push(stmt);
                self.edge(cur, header);
                let after = self.new_block();
                // A `while true` (any constant-truthy condition) loop
                // never takes the zero-iteration edge: control only
                // reaches `after` through a `break`. Omitting the edge
                // makes code after an infinite loop properly dead.
                if const_truthy(cond) != Some(true) {
                    self.edge(header, after);
                }
                let first = self.new_block();
                self.edge(header, first);
                self.loop_after.push(after);
                if let Some(end) = self.stmt_list(body, Some(first)) {
                    self.edge(end, header); // back edge
                }
                self.loop_after.pop();
                if self.has_preds(after) {
                    Some(after)
                } else {
                    None
                }
            }
            Stmt::NumericFor { body, .. } | Stmt::GenericFor { body, .. } => {
                let header = self.new_block();
                self.cfg.blocks[header].stmts.push(stmt);
                self.edge(cur, header);
                let after = self.new_block();
                self.edge(header, after); // zero iterations
                let first = self.new_block();
                self.edge(header, first);
                self.loop_after.push(after);
                if let Some(end) = self.stmt_list(body, Some(first)) {
                    self.edge(end, header); // back edge
                }
                self.loop_after.pop();
                Some(after)
            }
            Stmt::Break(pos) => {
                self.cfg.blocks[cur].stmts.push(stmt);
                match self.loop_after.last() {
                    Some(&after) => self.edge(cur, after),
                    None => {
                        // Top-level break: the interpreter treats it as
                        // "end the script with nil".
                        self.cfg.exits.push((cur, ExitKind::Fallthrough, *pos));
                        self.edge(cur, EXIT);
                    }
                }
                None
            }
            Stmt::Return(value, pos) => {
                self.cfg.blocks[cur].stmts.push(stmt);
                let kind = match value {
                    Some(_) => ExitKind::ValuedReturn,
                    None => ExitKind::EmptyReturn,
                };
                self.cfg.exits.push((cur, kind, *pos));
                self.edge(cur, EXIT);
                None
            }
        }
    }
}

/// Runs the control-flow pass over the whole script: top level plus
/// every function literal found by the resolution pass.
pub(crate) fn pass(top: &Block, res: &Resolution<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    check_one(top, Pos { line: 1, col: 1 }, true, &mut diags);
    for f in &res.functions {
        check_one(f.body, f.pos, false, &mut diags);
    }
    // Anonymous function literals that are *arguments* (not bound to
    // any name) are already in `res.functions`, so the above covers
    // every body exactly once.

    for (name, pos) in &res.unused_locals {
        diags.push(Diagnostic::new(
            DiagnosticCode::UnusedLocal,
            *pos,
            format!("local `{name}` is never read"),
        ));
    }
    diags
}

fn check_one(body: &Block, fn_pos: Pos, is_top: bool, diags: &mut Vec<Diagnostic>) {
    let (cfg, mut local_diags) = Cfg::build(body, fn_pos);
    diags.append(&mut local_diags);

    let reachable = cfg.reachable();
    let mut valued: Option<Pos> = None;
    let mut nil_path = false;
    for (from, kind, pos) in &cfg.exits {
        if !reachable[*from] {
            continue;
        }
        match kind {
            ExitKind::ValuedReturn => {
                if valued.is_none() {
                    valued = Some(*pos);
                }
            }
            ExitKind::EmptyReturn | ExitKind::Fallthrough => nil_path = true,
        }
    }
    if let (Some(pos), true) = (valued, nil_path) {
        let what = if is_top {
            "the script returns a value on some paths but not on others \
             (the task result is nil on the missing paths)"
        } else {
            "this function returns a value on some paths but not on others \
             (callers see nil on the missing paths)"
        };
        diags.push(Diagnostic::new(DiagnosticCode::InconsistentReturns, pos, what));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn build(src: &str) -> (Vec<Stmt>, Pos) {
        (parse(src).expect("test script parses"), Pos { line: 1, col: 1 })
    }

    /// Statement counts per block, skipping empty synthetic blocks —
    /// a stable shape fingerprint.
    fn stmt_shape(cfg: &Cfg<'_>) -> Vec<usize> {
        cfg.blocks.iter().map(|b| b.stmts.len()).collect()
    }

    #[test]
    fn empty_body_is_entry_straight_to_exit() {
        let (block, pos) = build("");
        let (cfg, diags) = Cfg::build(&block, pos);
        assert!(diags.is_empty());
        // Exit block + one (empty) entry block.
        assert_eq!(cfg.blocks.len(), 2);
        assert_eq!(cfg.entry, 1);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![EXIT]);
        assert_eq!(cfg.exits.len(), 1);
        assert_eq!(cfg.exits[0].1, ExitKind::Fallthrough);
        assert!(cfg.blocks[cfg.entry].stmts.is_empty());
    }

    #[test]
    fn empty_function_body_cfg_is_minimal() {
        let (block, pos) = build("local function noop() end\nreturn noop()");
        // The *function's* body is empty; build its CFG directly.
        let Stmt::LocalFunction { body, .. } = &block[0] else { panic!("expected function") };
        let (cfg, diags) = Cfg::build(body, pos);
        assert!(diags.is_empty());
        assert_eq!(cfg.blocks.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![EXIT]);
    }

    #[test]
    fn return_inside_nested_loops_exits_from_inner_body() {
        let src = "for i = 1, 3 do\nfor j = 1, 3 do\nif i == j then return i end\nend\nend";
        let (block, pos) = build(src);
        let (cfg, diags) = Cfg::build(&block, pos);
        assert!(diags.is_empty(), "{diags:?}");
        // One valued return from inside the inner body, plus the
        // fall-off-the-end path when the loops complete.
        let kinds: Vec<ExitKind> = cfg.exits.iter().map(|(_, k, _)| *k).collect();
        assert!(kinds.contains(&ExitKind::ValuedReturn));
        assert!(kinds.contains(&ExitKind::Fallthrough));
        // The return's block must be reachable and must edge to EXIT.
        let (ret_block, _, _) =
            cfg.exits.iter().find(|(_, k, _)| *k == ExitKind::ValuedReturn).unwrap();
        assert!(cfg.reachable()[*ret_block]);
        assert!(cfg.blocks[*ret_block].succs.contains(&EXIT));
        // Both loop headers carry exactly their loop statement.
        let headers: Vec<&BasicBlock<'_>> = cfg
            .blocks
            .iter()
            .filter(|b| b.stmts.len() == 1 && matches!(b.stmts[0], Stmt::NumericFor { .. }))
            .collect();
        assert_eq!(headers.len(), 2, "shape: {:?}", stmt_shape(&cfg));
        // Each header has two successors: after (zero iterations) and
        // the first body block.
        for h in headers {
            assert_eq!(h.succs.len(), 2);
        }
    }

    #[test]
    fn infinite_loop_makes_following_code_unreachable() {
        let (block, pos) = build("while true do sleep(1) end\nprint('never')");
        let (cfg, diags) = Cfg::build(&block, pos);
        // W201 for the statement after the loop.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagnosticCode::UnreachableCode);
        assert_eq!(diags[0].pos.line, 2);
        // The header has no zero-iteration edge: its only successor is
        // the body, and the body's back edge is its only exit.
        let header = cfg
            .blocks
            .iter()
            .position(|b| b.stmts.len() == 1 && matches!(b.stmts[0], Stmt::While { .. }))
            .expect("loop header block");
        assert_eq!(cfg.blocks[header].succs.len(), 1, "no zero-iteration edge");
        // Nothing reaches EXIT from reachable code: the loop diverges.
        let reachable = cfg.reachable();
        assert!(cfg.exits.iter().all(|(from, _, _)| !reachable[*from]));
    }

    #[test]
    fn break_out_of_infinite_loop_keeps_after_block_live() {
        let (block, pos) =
            build("local i = 0\nwhile true do i = i + 1\nif i > 3 then break end end\nreturn i");
        let (cfg, diags) = Cfg::build(&block, pos);
        assert!(diags.is_empty(), "{diags:?}");
        let reachable = cfg.reachable();
        let (ret_block, kind, _) = cfg.exits.iter().find(|(from, _, _)| reachable[*from]).unwrap();
        assert_eq!(*kind, ExitKind::ValuedReturn);
        assert!(cfg.blocks[*ret_block].succs.contains(&EXIT));
    }

    #[test]
    fn while_true_with_return_has_no_phantom_nil_path() {
        // Regression: the zero-iteration edge used to make `while true
        // do return 1 end` look like it could fall through, producing
        // a bogus W202.
        let src = "while true do return 1 end";
        let (block, pos) = build(src);
        let (cfg, _) = Cfg::build(&block, pos);
        let reachable = cfg.reachable();
        let live: Vec<ExitKind> =
            cfg.exits.iter().filter(|(from, _, _)| reachable[*from]).map(|(_, k, _)| *k).collect();
        assert_eq!(live, vec![ExitKind::ValuedReturn]);
    }

    #[test]
    fn preds_invert_succs() {
        let (block, pos) = build("local x = 1\nif x then x = 2 end\nreturn x");
        let (cfg, _) = Cfg::build(&block, pos);
        let preds = cfg.preds();
        for (i, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                assert!(preds[s].contains(&i));
            }
        }
        let edge_count: usize = cfg.blocks.iter().map(|b| b.succs.len()).sum();
        let pred_count: usize = preds.iter().map(Vec::len).sum();
        assert_eq!(edge_count, pred_count);
    }
}
