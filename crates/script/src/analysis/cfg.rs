//! Pass 3: control flow and dataflow.
//!
//! Builds a small control-flow graph for the top-level block and for
//! every function literal, then reports:
//!
//! - **W201** statements that can never execute (they follow a
//!   `return`/`break`, or every arm of the preceding `if` leaves the
//!   block),
//! - **W202** functions (and the script itself — its result is the
//!   task result) where some paths `return` a value and others fall
//!   off the end or `return` nothing, so the consumer sometimes sees
//!   `nil`,
//! - **W103** locals that the resolution pass proved are never read
//!   (the liveness half of the dataflow story).

use crate::analysis::diagnostic::{Diagnostic, DiagnosticCode};
use crate::analysis::resolve::Resolution;
use crate::ast::{Block, Stmt};
use crate::Pos;

/// Index of the synthetic exit block in every [`Cfg`].
pub const EXIT: usize = 0;

/// How control reaches the exit block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// `return expr`.
    ValuedReturn,
    /// Bare `return`.
    EmptyReturn,
    /// Execution fell off the end of the function (implicit nil), or a
    /// top-level `break` ended the script.
    Fallthrough,
}

/// One basic block: the statements it executes and its successors.
#[derive(Debug, Default)]
pub struct BasicBlock {
    /// Positions of the statements in the block, in order.
    pub stmts: Vec<Pos>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph. Block [`EXIT`] is the synthetic
/// exit; `entry` is where execution starts.
#[derive(Debug)]
pub struct Cfg {
    /// All blocks; index 0 is the exit.
    pub blocks: Vec<BasicBlock>,
    /// The entry block index.
    pub entry: usize,
    /// Every edge into the exit, with how it got there.
    pub exits: Vec<(usize, ExitKind, Pos)>,
}

impl Cfg {
    /// Builds the CFG for one function body (or the top-level block).
    pub fn build(body: &Block, fn_pos: Pos) -> (Cfg, Vec<Diagnostic>) {
        let mut b = Builder {
            cfg: Cfg { blocks: vec![BasicBlock::default()], entry: 0, exits: Vec::new() },
            loop_after: Vec::new(),
            diags: Vec::new(),
        };
        let entry = b.new_block();
        b.cfg.entry = entry;
        let end = b.stmt_list(body, Some(entry));
        if let Some(end) = end {
            b.cfg.exits.push((end, ExitKind::Fallthrough, fn_pos));
            b.edge(end, EXIT);
        }
        (b.cfg, b.diags)
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            stack.extend(self.blocks[i].succs.iter().copied());
        }
        seen
    }
}

struct Builder {
    cfg: Cfg,
    /// Stack of "after the innermost loop" blocks (`break` targets).
    loop_after: Vec<usize>,
    diags: Vec<Diagnostic>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.cfg.blocks.push(BasicBlock::default());
        self.cfg.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.cfg.blocks[from].succs.push(to);
    }

    /// Lowers a statement list starting in `cur`. Returns the block
    /// where control continues, or `None` if every path has left the
    /// list (returned, broken, or diverged).
    fn stmt_list(&mut self, stmts: &[Stmt], mut cur: Option<usize>) -> Option<usize> {
        let mut reported_dead = false;
        for stmt in stmts {
            let c = match cur {
                Some(c) => c,
                None => {
                    // Dead region: report its first statement once,
                    // then keep lowering (nested findings still count)
                    // in a predecessor-less block.
                    if !reported_dead {
                        self.diags.push(Diagnostic::new(
                            DiagnosticCode::UnreachableCode,
                            stmt.pos(),
                            "unreachable statement (control cannot reach this point)",
                        ));
                        reported_dead = true;
                    }
                    self.new_block()
                }
            };
            cur = self.stmt(stmt, c);
        }
        cur
    }

    fn stmt(&mut self, stmt: &Stmt, cur: usize) -> Option<usize> {
        match stmt {
            Stmt::Local { .. }
            | Stmt::Assign { .. }
            | Stmt::ExprStmt(_)
            | Stmt::LocalFunction { .. } => {
                self.cfg.blocks[cur].stmts.push(stmt.pos());
                Some(cur)
            }
            Stmt::If { arms, otherwise } => {
                self.cfg.blocks[cur].stmts.push(stmt.pos());
                let join = self.new_block();
                let mut joined = false;
                for (_, body) in arms {
                    let arm = self.new_block();
                    self.edge(cur, arm);
                    if let Some(end) = self.stmt_list(body, Some(arm)) {
                        self.edge(end, join);
                        joined = true;
                    }
                }
                match otherwise {
                    Some(body) => {
                        let arm = self.new_block();
                        self.edge(cur, arm);
                        if let Some(end) = self.stmt_list(body, Some(arm)) {
                            self.edge(end, join);
                            joined = true;
                        }
                    }
                    None => {
                        // No `else`: the condition may simply fail.
                        self.edge(cur, join);
                        joined = true;
                    }
                }
                joined.then_some(join)
            }
            Stmt::While { body, .. }
            | Stmt::NumericFor { body, .. }
            | Stmt::GenericFor { body, .. } => {
                let header = self.new_block();
                self.cfg.blocks[header].stmts.push(stmt.pos());
                self.edge(cur, header);
                let after = self.new_block();
                self.edge(header, after); // zero iterations
                let first = self.new_block();
                self.edge(header, first);
                self.loop_after.push(after);
                if let Some(end) = self.stmt_list(body, Some(first)) {
                    self.edge(end, header); // back edge
                }
                self.loop_after.pop();
                Some(after)
            }
            Stmt::Break(pos) => {
                self.cfg.blocks[cur].stmts.push(*pos);
                match self.loop_after.last() {
                    Some(&after) => self.edge(cur, after),
                    None => {
                        // Top-level break: the interpreter treats it as
                        // "end the script with nil".
                        self.cfg.exits.push((cur, ExitKind::Fallthrough, *pos));
                        self.edge(cur, EXIT);
                    }
                }
                None
            }
            Stmt::Return(value, pos) => {
                self.cfg.blocks[cur].stmts.push(*pos);
                let kind = match value {
                    Some(_) => ExitKind::ValuedReturn,
                    None => ExitKind::EmptyReturn,
                };
                self.cfg.exits.push((cur, kind, *pos));
                self.edge(cur, EXIT);
                None
            }
        }
    }
}

/// Runs the control-flow pass over the whole script: top level plus
/// every function literal found by the resolution pass.
pub(crate) fn pass(top: &Block, res: &Resolution<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    check_one(top, Pos { line: 1, col: 1 }, true, &mut diags);
    for f in &res.functions {
        check_one(f.body, f.pos, false, &mut diags);
    }
    // Anonymous function literals that are *arguments* (not bound to
    // any name) are already in `res.functions`, so the above covers
    // every body exactly once.

    for (name, pos) in &res.unused_locals {
        diags.push(Diagnostic::new(
            DiagnosticCode::UnusedLocal,
            *pos,
            format!("local `{name}` is never read"),
        ));
    }
    diags
}

fn check_one(body: &Block, fn_pos: Pos, is_top: bool, diags: &mut Vec<Diagnostic>) {
    let (cfg, mut local_diags) = Cfg::build(body, fn_pos);
    diags.append(&mut local_diags);

    let reachable = cfg.reachable();
    let mut valued: Option<Pos> = None;
    let mut nil_path = false;
    for (from, kind, pos) in &cfg.exits {
        if !reachable[*from] {
            continue;
        }
        match kind {
            ExitKind::ValuedReturn => {
                if valued.is_none() {
                    valued = Some(*pos);
                }
            }
            ExitKind::EmptyReturn | ExitKind::Fallthrough => nil_path = true,
        }
    }
    if let (Some(pos), true) = (valued, nil_path) {
        let what = if is_top {
            "the script returns a value on some paths but not on others \
             (the task result is nil on the missing paths)"
        } else {
            "this function returns a value on some paths but not on others \
             (callers see nil on the missing paths)"
        };
        diags.push(Diagnostic::new(DiagnosticCode::InconsistentReturns, pos, what));
    }
}
