//! Static analysis of SenseScript — pre-dispatch script verification.
//!
//! The paper's pipeline ships a script to phones and discovers
//! problems only when a task slot has already been scheduled and
//! spent. This module front-loads that: [`analyze`] runs a multi-pass
//! static analyzer over the parsed AST and returns structured
//! [`Diagnostic`]s, so the server can reject broken or forbidden
//! scripts **at task admission**, before any scheduling work, and the
//! frontend can re-verify before spawning a task.
//!
//! Passes, in order:
//!
//! 1. **resolve** ([`resolve`]) — lexical symbol resolution: undefined
//!    names (E002), duplicate same-depth locals (W101), global-creating
//!    assignments (W102).
//! 2. **calls** ([`calls`]) — every call site checked against script
//!    functions in scope, [`crate::stdlib`] builtins, and the declared
//!    [`CapabilitySet`] of host functions (E003), plus arity checks on
//!    statically known callees (W301).
//! 3. **cfg** ([`cfg`]) — per-function control-flow graphs: unreachable
//!    statements (W201), inconsistent returns feeding the task result
//!    (W202), never-read locals (W103).
//! 4. **dataflow** ([`dataflow`]) — worklist abstract interpretation
//!    over the CFGs: interval analysis feeding loop bounds to the cost
//!    pass, sensor-taint tracking for the privacy lints (E004 raw
//!    high-sensitivity result, W501 raw medium-sensitivity result),
//!    backward liveness for dead stores (W204), and constant-condition
//!    dead branches (W203).
//! 5. **cost** ([`cost`]) — a conservative static instruction bound
//!    proved against the execution budget (W401), with ⊤ for loops and
//!    calls neither constant folding nor the interval domain can bound
//!    (W402).
//!
//! Error-severity findings are reserved for scripts that are
//! statically *known* to be broken, so admission control can reject on
//! them without false alarms; everything heuristic is a warning. The
//! one deliberate exception is the privacy sink check (E004): it is a
//! *may*-flow verdict, because a privacy policy that only rejected
//! certain leaks would be evadable with a single branch.
//!
//! # Example
//!
//! ```
//! use sor_script::analysis::{analyze, CapabilitySet};
//!
//! let caps = CapabilitySet::standard_sensing();
//! let report = analyze("steal_contacts()", &caps);
//! assert!(report.has_errors());
//! assert!(report.diagnostics[0].message.contains("non-whitelisted"));
//!
//! let ok = analyze("return mean(get_light_readings(5))", &caps);
//! assert!(!ok.has_errors());
//! ```

pub mod calls;
pub mod cfg;
pub(crate) mod consteval;
pub mod cost;
pub mod dataflow;
pub mod diagnostic;
pub mod resolve;

use std::collections::BTreeSet;

use crate::ast::Block;
use crate::host::HostRegistry;
use crate::interp::DEFAULT_BUDGET;
use crate::parser::parse;

pub use cfg::{BasicBlock, Cfg, ExitKind, EXIT};
pub use cost::Cost;
pub use diagnostic::{Diagnostic, DiagnosticCode, Severity};

/// The host functions a script is allowed to call — the static mirror
/// of the runtime [`HostRegistry`] whitelist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapabilitySet {
    names: BTreeSet<String>,
}

impl CapabilitySet {
    /// An empty set: only builtins and script functions are callable.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set holding the given names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CapabilitySet { names: names.into_iter().map(Into::into).collect() }
    }

    /// The exact functions a runtime registry would provide — used by
    /// the frontend to re-verify with the registry it will execute
    /// under.
    pub fn from_registry(host: &HostRegistry) -> Self {
        Self::from_names(host.names())
    }

    /// The paper's standard sensing vocabulary: one acquisition
    /// function per sensor modality (§II-A), plus `get_location`.
    pub fn standard_sensing() -> Self {
        Self::from_names([
            "get_temperature_readings",
            "get_humidity_readings",
            "get_light_readings",
            "get_noise_readings",
            "get_wifi_readings",
            "get_pressure_readings",
            "get_accel_readings",
            "get_gps_readings",
            "get_compass_readings",
            "get_location",
        ])
    }

    /// Adds one capability.
    pub fn insert(&mut self, name: impl Into<String>) {
        self.names.insert(name.into());
    }

    /// Whether `name` is a declared capability.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// The declared names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Number of declared capabilities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no capabilities are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The analyzer's verdict on one script.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// All findings, sorted by position.
    pub diagnostics: Vec<Diagnostic>,
    /// The static instruction bound from the cost pass.
    pub cost: Cost,
    /// The budget the bound was proved against.
    pub budget: u64,
}

impl AnalysisReport {
    /// Whether any finding is error severity (admission must reject).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// Renders the report in the classic lint format, one finding per
    /// line: `name:line:col: severity[CODE]: message`.
    pub fn render(&self, source_name: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(source_name);
            out.push(':');
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

/// Analyzes `src` against the default execution budget.
///
/// Syntax errors come back as a single **E001** diagnostic rather
/// than an `Err`, so every caller handles one shape.
pub fn analyze(src: &str, caps: &CapabilitySet) -> AnalysisReport {
    analyze_with_budget(src, caps, DEFAULT_BUDGET)
}

/// Analyzes `src`, proving the cost bound against `budget`.
pub fn analyze_with_budget(src: &str, caps: &CapabilitySet, budget: u64) -> AnalysisReport {
    match parse(src) {
        Ok(block) => analyze_block(&block, caps, budget),
        Err(e) => AnalysisReport {
            diagnostics: vec![Diagnostic::new(DiagnosticCode::SyntaxError, e.pos(), e.to_string())],
            // An unparseable script has no meaningful bound.
            cost: Cost::Unbounded,
            budget,
        },
    }
}

/// Analyzes an already-parsed block (used by embedders that parse
/// once and both verify and execute).
pub fn analyze_block(block: &Block, caps: &CapabilitySet, budget: u64) -> AnalysisReport {
    let res = resolve::resolve(block, caps);
    let mut diagnostics = res.diagnostics.clone();
    diagnostics.extend(calls::check(&res));
    diagnostics.extend(cfg::pass(block, &res));
    let flow = dataflow::pass(block, &res, caps);
    diagnostics.extend(flow.diagnostics);
    let outcome = cost::estimate(block, &res, budget, &flow.loop_bounds);
    diagnostics.extend(outcome.diagnostics);
    diagnostics.sort_by_key(|d| (d.pos.line, d.pos.col, d.code.as_str()));
    AnalysisReport { diagnostics, cost: outcome.total, budget }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> CapabilitySet {
        CapabilitySet::standard_sensing()
    }

    fn codes(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_sensing_script_has_no_findings() {
        let src = r#"
            local samples = {}
            for i = 1, 3 do
                local a = get_accel_readings(10)
                insert(samples, stddev(a))
                sleep(1)
            end
            return mean(samples)
        "#;
        let r = analyze(src, &caps());
        assert!(r.diagnostics.is_empty(), "unexpected findings: {:?}", r.diagnostics);
        assert!(r.cost.is_bounded());
    }

    #[test]
    fn syntax_error_is_e001() {
        let r = analyze("local = 3", &caps());
        assert!(r.has_errors());
        assert_eq!(codes(&r), vec!["E001"]);
        assert_eq!(r.cost, Cost::Unbounded);
    }

    #[test]
    fn undefined_name_is_e002() {
        let r = analyze("return never_defined + 1", &caps());
        assert_eq!(codes(&r), vec!["E002"]);
        assert_eq!(r.diagnostics[0].pos.line, 1);
    }

    #[test]
    fn assigned_global_is_not_undefined() {
        // Assignment order is not statically known, so any assigned
        // name counts as possibly defined — no E002, only the W102
        // global-write lint.
        let r = analyze("if true then g = 5 end\nreturn g", &caps());
        assert_eq!(codes(&r), vec!["W102"]);
    }

    #[test]
    fn builtin_referenced_as_value_is_e002_with_hint() {
        let r = analyze("return mean", &caps());
        assert_eq!(codes(&r), vec!["E002"]);
        assert!(r.diagnostics[0].message.contains("only be called"));
    }

    #[test]
    fn forbidden_call_is_e003_mentioning_non_whitelisted() {
        let r = analyze("steal_contacts()", &caps());
        assert!(r.has_errors());
        assert_eq!(codes(&r), vec!["E003"]);
        assert!(r.diagnostics[0].message.contains("non-whitelisted"));
        assert!(r.diagnostics[0].message.contains("steal_contacts"));
    }

    #[test]
    fn capability_and_builtin_calls_are_clean() {
        let r = analyze("return mean(get_light_readings(5))", &caps());
        assert!(!r.has_errors());
    }

    #[test]
    fn capability_set_gates_host_calls() {
        let narrow = CapabilitySet::from_names(["get_light_readings"]);
        assert!(!analyze("get_light_readings(1)", &narrow).has_errors());
        assert!(analyze("get_gps_readings(1)", &narrow).has_errors());
    }

    #[test]
    fn local_shadows_forbidden_name() {
        // Mirrors the interpreter: scope lookup wins over the
        // whitelist, so a local function named like a forbidden host
        // call is fine.
        let src = "local function steal_contacts() return 0 end\nreturn steal_contacts()";
        assert!(!analyze(src, &caps()).has_errors());
    }

    #[test]
    fn duplicate_local_same_depth_is_w101() {
        let r = analyze("local x = 1\nlocal x = 2\nreturn x", &caps());
        assert_eq!(codes(&r), vec!["W101"]);
        // Different depths are legal shadowing, no finding.
        let r2 = analyze("local x = 1\nif x then local x = 2\nprint(x) end\nreturn x", &caps());
        assert!(r2.diagnostics.is_empty(), "{:?}", r2.diagnostics);
    }

    #[test]
    fn unused_local_is_w103_with_underscore_exemption() {
        let r = analyze("local dead = 1\nreturn 2", &caps());
        assert_eq!(codes(&r), vec!["W103"]);
        let r2 = analyze("local _dead = 1\nreturn 2", &caps());
        assert!(r2.diagnostics.is_empty());
    }

    #[test]
    fn unreachable_after_return_is_w201() {
        let r = analyze("return 1\nprint('never')", &caps());
        assert_eq!(codes(&r), vec!["W201"]);
    }

    #[test]
    fn unreachable_when_all_arms_leave_is_w201() {
        let src = r#"
            local x = 1
            if x then return 1 else return 2 end
            print('never')
        "#;
        let r = analyze(src, &caps());
        assert_eq!(codes(&r), vec!["W201"]);
    }

    #[test]
    fn inconsistent_returns_is_w202() {
        let src = r#"
            local x = get_light_readings(1)
            if #x > 0 then return mean(x) end
        "#;
        let r = analyze(src, &caps());
        assert_eq!(codes(&r), vec!["W202"]);
    }

    #[test]
    fn consistent_returns_are_clean() {
        let src = r#"
            local x = get_light_readings(1)
            if #x > 0 then return mean(x) else return 0 end
        "#;
        assert!(analyze(src, &caps()).diagnostics.is_empty());
    }

    #[test]
    fn arity_overflow_is_w301() {
        let src = "local function f(a) return a end\nreturn f(1, 2)";
        let r = analyze(src, &caps());
        assert_eq!(codes(&r), vec!["W301"]);
        // Fewer arguments than parameters is legal nil-padding.
        let ok = "local function f(a, b) return a end\nreturn f(1)";
        assert!(analyze(ok, &caps()).diagnostics.is_empty());
    }

    #[test]
    fn zero_step_for_is_w302() {
        let r = analyze("for i = 1, 5, 0 do print(i) end\nreturn 0", &caps());
        assert!(codes(&r).contains(&"W302"));
    }

    #[test]
    fn bounded_loop_over_budget_is_w401() {
        let src = "local s = 0\nfor i = 1, 100 do s = s + i end\nreturn s";
        let r = analyze_with_budget(src, &caps(), 50);
        assert!(codes(&r).contains(&"W401"), "{:?}", r.diagnostics);
        assert!(r.cost.is_bounded());
        // The same script against the default budget is clean.
        assert!(analyze(src, &caps()).diagnostics.is_empty());
    }

    #[test]
    fn unbounded_while_is_w402() {
        let r = analyze("while true do end", &caps());
        assert_eq!(codes(&r), vec!["W402"]);
        assert_eq!(r.cost, Cost::Unbounded);
        assert!(!r.has_errors(), "cost findings must not block admission");
    }

    #[test]
    fn interval_bounded_loop_is_not_w402() {
        // The loop bound is a variable, not a literal — previously ⊤
        // (W402); the interval domain now proves 10 trips.
        let src = "local n = 10\nfor i = 1, n do print(i) end\nreturn n";
        let r = analyze(src, &caps());
        assert!(r.cost.is_bounded(), "{:?}", r.diagnostics);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn widened_loop_bound_stays_w402() {
        let src = "local n = 1\nwhile clock() < 9 do n = n + 1 end\nfor i = 1, n do print(i) end\nreturn n";
        let r = analyze(src, &caps());
        assert_eq!(r.cost, Cost::Unbounded);
        assert!(codes(&r).contains(&"W402"));
    }

    #[test]
    fn raw_gps_return_is_e004_and_blocks_admission() {
        let r = analyze("return get_gps_readings(3)", &caps());
        assert!(r.has_errors());
        assert_eq!(codes(&r), vec!["E004"]);
    }

    #[test]
    fn aggregated_gps_return_is_admitted() {
        let r = analyze("return mean(get_gps_readings(3))", &caps());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn histogram_launders_high_sensitivity() {
        let r = analyze("return histogram(get_noise_readings(16), 4)", &caps());
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
    }

    #[test]
    fn raw_medium_sensitivity_return_is_w501() {
        let r = analyze("return get_accel_readings(5)", &caps());
        assert!(!r.has_errors());
        assert_eq!(codes(&r), vec!["W501"]);
    }

    #[test]
    fn constant_false_branch_is_w203() {
        let r = analyze("if false then print(1) end\nreturn 0", &caps());
        assert_eq!(codes(&r), vec!["W203"]);
    }

    #[test]
    fn dead_store_is_w204() {
        let r = analyze("local x = 1\nx = 2\nreturn x", &caps());
        assert_eq!(codes(&r), vec!["W204"]);
    }

    #[test]
    fn recursion_is_w402() {
        let src = r#"
            local function fib(n)
                if n < 2 then return n end
                return fib(n - 1) + fib(n - 2)
            end
            return fib(10)
        "#;
        let r = analyze(src, &caps());
        assert!(codes(&r).contains(&"W402"), "{:?}", r.diagnostics);
    }

    #[test]
    fn generic_for_over_literal_is_bounded() {
        let src = r#"
            local s = 0
            for _, v in {1, 2, 3} do s = s + v end
            return s
        "#;
        let r = analyze(src, &caps());
        assert!(r.cost.is_bounded(), "{:?}", r.diagnostics);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn generic_for_over_dynamic_table_is_w402() {
        let src = r#"
            local t = get_light_readings(5)
            local s = 0
            for _, v in t do s = s + v end
            return s
        "#;
        let r = analyze(src, &caps());
        assert!(codes(&r).contains(&"W402"));
        assert!(!r.has_errors());
    }

    #[test]
    fn self_recursive_local_lambda_resolves() {
        // `local f = function() … f() … end` recurses through the
        // captured scope at runtime; the resolver must not flag it.
        let src = r#"
            local f = function(n)
                if n == 0 then return 0 end
                return f(n - 1)
            end
            return f(3)
        "#;
        let r = analyze(src, &caps());
        assert!(!r.has_errors(), "{:?}", r.diagnostics);
    }

    #[test]
    fn report_renders_lint_lines() {
        let r = analyze("steal_contacts()", &caps());
        let rendered = r.render("task.lua");
        assert!(rendered.starts_with("task.lua:1:"));
        assert!(rendered.contains("error[E003]"));
    }

    #[test]
    fn diagnostics_are_position_sorted() {
        let src = "local dead = 1\nsteal_contacts()\nbad_fn()";
        let r = analyze(src, &caps());
        let lines: Vec<u32> = r.diagnostics.iter().map(|d| d.pos.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
