//! Structured findings produced by the static analyzer.
//!
//! Every pass reports through the same [`Diagnostic`] shape so the
//! server, the frontend, and `sorlint` can render and filter findings
//! uniformly. Codes are stable strings (`E003`, `W401`, …) suitable
//! for suppression lists and documentation tables.

use crate::Pos;

/// How serious a finding is.
///
/// `Error` findings describe scripts that will (or on the analyzed
/// evidence must) fail at runtime; admission control rejects them.
/// `Warning` findings are lint-grade: legal but suspicious, or
/// "cannot prove safe" verdicts from the conservative cost pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not admission-blocking.
    Warning,
    /// Admission-blocking: the script is statically known to be broken.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable identifiers for every finding the analyzer can produce.
///
/// `E…` codes are [`Severity::Error`], `W…` codes are
/// [`Severity::Warning`]. The numbering groups codes by pass:
/// syntax (`E001`), name resolution (`E002`, `W1xx`), control flow
/// (`W2xx`), call checking (`E003`, `W3xx`), and cost (`W4xx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticCode {
    /// The script does not lex or parse.
    SyntaxError,
    /// A name is read but never defined anywhere reachable.
    UndefinedName,
    /// A call names a function that is neither script-defined, a
    /// builtin, nor in the declared capability set.
    ForbiddenCall,
    /// A `local` re-declares a name already local at the same depth.
    ShadowedLocal,
    /// Assignment to a name never declared `local` (creates a global).
    GlobalWrite,
    /// A local is declared but never read.
    UnusedLocal,
    /// A statement can never execute.
    UnreachableCode,
    /// Some paths return a value, others fall off the end.
    InconsistentReturns,
    /// An `if` arm (or `while` body) whose condition is a constant
    /// makes the branch statically dead.
    DeadBranch,
    /// A value stored in a local is overwritten before any read.
    DeadStore,
    /// A call passes more arguments than the callee declares.
    ArityMismatch,
    /// A numeric `for` with a constant zero step (runtime error).
    ZeroStepFor,
    /// The static instruction bound exceeds the configured budget.
    BudgetExceeded,
    /// The cost pass could not bound the script (unbounded `while`,
    /// recursion, or iteration/calls it cannot see through).
    UnboundedCost,
    /// The script's result may carry raw high-sensitivity sensor data
    /// that never passed through an aggregating builtin. Admission
    /// control rejects on this: the privacy policy forbids shipping
    /// raw location/audio-grade readings off the phone.
    TaintedReturn,
    /// Same flow as [`DiagnosticCode::TaintedReturn`] but for
    /// medium-sensitivity modalities — lint-grade only.
    RawMediumReturn,
}

impl DiagnosticCode {
    /// The stable short code, e.g. `"E003"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::SyntaxError => "E001",
            DiagnosticCode::UndefinedName => "E002",
            DiagnosticCode::ForbiddenCall => "E003",
            DiagnosticCode::ShadowedLocal => "W101",
            DiagnosticCode::GlobalWrite => "W102",
            DiagnosticCode::UnusedLocal => "W103",
            DiagnosticCode::UnreachableCode => "W201",
            DiagnosticCode::InconsistentReturns => "W202",
            DiagnosticCode::DeadBranch => "W203",
            DiagnosticCode::DeadStore => "W204",
            DiagnosticCode::ArityMismatch => "W301",
            DiagnosticCode::ZeroStepFor => "W302",
            DiagnosticCode::BudgetExceeded => "W401",
            DiagnosticCode::UnboundedCost => "W402",
            DiagnosticCode::TaintedReturn => "E004",
            DiagnosticCode::RawMediumReturn => "W501",
        }
    }

    /// The severity implied by the code (errors block admission).
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticCode::SyntaxError
            | DiagnosticCode::UndefinedName
            | DiagnosticCode::ForbiddenCall
            | DiagnosticCode::TaintedReturn => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl std::fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: where, how bad, which rule, and a human message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Source position the finding anchors to.
    pub pos: Pos,
    /// Error or warning.
    pub severity: Severity,
    /// The stable rule identifier.
    pub code: DiagnosticCode,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic whose severity is implied by its code.
    pub fn new(code: DiagnosticCode, pos: Pos, message: impl Into<String>) -> Self {
        Diagnostic { pos, severity: code.severity(), code, message: message.into() }
    }
}

impl std::fmt::Display for Diagnostic {
    /// `line:col: severity[CODE]: message` — the `sorlint` line format
    /// (the file name prefix is added by the caller).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}[{}]: {}", self.pos, self.severity, self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_imply_severity() {
        assert_eq!(DiagnosticCode::ForbiddenCall.severity(), Severity::Error);
        assert_eq!(DiagnosticCode::UnusedLocal.severity(), Severity::Warning);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn display_is_lint_shaped() {
        let d = Diagnostic::new(
            DiagnosticCode::ForbiddenCall,
            Pos { line: 3, col: 7 },
            "call to non-whitelisted function `steal_contacts`",
        );
        assert_eq!(
            d.to_string(),
            "3:7: error[E003]: call to non-whitelisted function `steal_contacts`"
        );
    }

    #[test]
    fn all_codes_have_unique_strings() {
        let codes = [
            DiagnosticCode::SyntaxError,
            DiagnosticCode::UndefinedName,
            DiagnosticCode::ForbiddenCall,
            DiagnosticCode::ShadowedLocal,
            DiagnosticCode::GlobalWrite,
            DiagnosticCode::UnusedLocal,
            DiagnosticCode::UnreachableCode,
            DiagnosticCode::InconsistentReturns,
            DiagnosticCode::DeadBranch,
            DiagnosticCode::DeadStore,
            DiagnosticCode::ArityMismatch,
            DiagnosticCode::ZeroStepFor,
            DiagnosticCode::BudgetExceeded,
            DiagnosticCode::UnboundedCost,
            DiagnosticCode::TaintedReturn,
            DiagnosticCode::RawMediumReturn,
        ];
        let set: std::collections::HashSet<&str> = codes.iter().map(|c| c.as_str()).collect();
        assert_eq!(set.len(), codes.len());
    }
}
