//! Pass 4: static instruction-cost bounding.
//!
//! Computes a conservative upper bound on the number of budget
//! charges the interpreter can make while running the script: one per
//! statement executed, one per expression node evaluated, one per
//! loop iteration (exactly the charge sites in
//! [`crate::interp::Interpreter`]). The bound is sound for any script
//! the interpreter runs to completion — `break`, short-circuit
//! evaluation, and untaken `if` arms only ever make the true count
//! smaller.
//!
//! Loops are bounded when their trip count is statically known:
//! numeric `for` with constant-foldable bounds, numeric `for` whose
//! bounds the [`crate::analysis::dataflow::interval`] domain confined
//! to a finite interval, and generic `for` over a table literal.
//! Everything else — `while` with a non-constant condition, recursion,
//! iteration over dynamic tables, calls through function *values* the
//! analyzer cannot see through — is ⊤ ([`Cost::Unbounded`]) and
//! reported as **W402**. A bounded estimate above the budget is
//! **W401**; a constant-zero `for` step (a guaranteed runtime error)
//! is **W302**.
//!
//! Cost arithmetic is *checked*: a sum or product that would overflow
//! `u64` goes to ⊤ rather than saturating to a finite-but-meaningless
//! bound — a bound the analyzer cannot represent is a bound it does
//! not have.

use std::ops::Add;

use std::collections::HashMap;

use crate::analysis::consteval::{const_number, const_truthy};
use crate::analysis::diagnostic::{Diagnostic, DiagnosticCode};
use crate::analysis::resolve::{CallTarget, Resolution};
use crate::ast::{Block, Expr, Stmt, TableKey, Target};
use crate::Pos;

/// A static instruction bound: a concrete count, or ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cost {
    /// At most this many budget charges.
    Bounded(u64),
    /// The analyzer cannot bound the script.
    Unbounded,
}

impl Add for Cost {
    type Output = Cost;

    /// Checked sum: overflow is ⊤, not a silently-wrong finite bound.
    fn add(self, other: Cost) -> Cost {
        match (self, other) {
            (Cost::Bounded(a), Cost::Bounded(b)) => {
                a.checked_add(b).map_or(Cost::Unbounded, Cost::Bounded)
            }
            _ => Cost::Unbounded,
        }
    }
}

impl Cost {
    /// Checked scale (per-iteration cost × trip count); overflow is ⊤.
    #[must_use]
    pub fn times(self, n: u64) -> Cost {
        match self {
            Cost::Bounded(a) => a.checked_mul(n).map_or(Cost::Unbounded, Cost::Bounded),
            Cost::Unbounded => Cost::Unbounded,
        }
    }

    /// Whether the bound is finite.
    pub fn is_bounded(self) -> bool {
        matches!(self, Cost::Bounded(_))
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cost::Bounded(n) => write!(f, "≤ {n} instructions"),
            Cost::Unbounded => f.write_str("statically unbounded"),
        }
    }
}

/// The result of the cost pass.
#[derive(Debug)]
pub(crate) struct CostOutcome {
    /// The whole-script bound.
    pub total: Cost,
    /// W302 / W401 / W402 findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Estimates the script's instruction bound against `budget`.
/// `loop_bounds` carries interval-proved trip counts (keyed by loop
/// position) for numeric `for` loops whose bounds are not literal
/// constants.
pub(crate) fn estimate(
    top: &Block,
    res: &Resolution<'_>,
    budget: u64,
    loop_bounds: &HashMap<(u32, u32), u64>,
) -> CostOutcome {
    let call_targets: HashMap<(u32, u32), CallTarget> =
        res.calls.iter().map(|c| ((c.pos.line, c.pos.col), c.target)).collect();
    let mut est = Estimator {
        res,
        call_targets,
        loop_bounds,
        memo: vec![Memo::Unvisited; res.functions.len()],
        first_unbounded: None,
        diags: Vec::new(),
    };
    let total = est.block_cost(top);
    let mut diagnostics = est.diags;
    match total {
        Cost::Unbounded => {
            let (pos, why) =
                est.first_unbounded.unwrap_or((Pos { line: 1, col: 1 }, "dynamic control flow"));
            diagnostics.push(Diagnostic::new(
                DiagnosticCode::UnboundedCost,
                pos,
                format!(
                    "cannot statically bound the script's instruction cost \
                     ({why}); the runtime budget of {budget} is the only limit"
                ),
            ));
        }
        Cost::Bounded(n) if n > budget => {
            diagnostics.push(Diagnostic::new(
                DiagnosticCode::BudgetExceeded,
                Pos { line: 1, col: 1 },
                format!(
                    "static instruction bound {n} exceeds the execution budget \
                     of {budget}; the script may be aborted mid-run"
                ),
            ));
        }
        Cost::Bounded(_) => {}
    }
    CostOutcome { total, diagnostics }
}

#[derive(Debug, Clone, Copy)]
enum Memo {
    Unvisited,
    /// On the walk stack: a call while in progress means recursion.
    InProgress,
    Done(Cost),
}

struct Estimator<'a, 'r> {
    res: &'r Resolution<'a>,
    call_targets: HashMap<(u32, u32), CallTarget>,
    loop_bounds: &'r HashMap<(u32, u32), u64>,
    memo: Vec<Memo>,
    first_unbounded: Option<(Pos, &'static str)>,
    diags: Vec<Diagnostic>,
}

impl Estimator<'_, '_> {
    fn unbounded(&mut self, pos: Pos, why: &'static str) -> Cost {
        if self.first_unbounded.is_none() {
            self.first_unbounded = Some((pos, why));
        }
        Cost::Unbounded
    }

    fn block_cost(&mut self, block: &Block) -> Cost {
        block.iter().fold(Cost::Bounded(0), |acc, s| acc.add(self.stmt_cost(s)))
    }

    fn stmt_cost(&mut self, stmt: &Stmt) -> Cost {
        // Every executed statement is charged once by `exec_stmt`.
        let base = Cost::Bounded(1);
        match stmt {
            Stmt::Local { init, .. } => match init {
                Some(e) => base.add(self.expr_cost(e)),
                None => base,
            },
            Stmt::LocalFunction { .. } => base,
            Stmt::Assign { target, value, .. } => {
                let mut c = base.add(self.expr_cost(value));
                if let Target::Index { table, key } = target {
                    c = c.add(self.expr_cost(table)).add(self.expr_cost(key));
                }
                c
            }
            Stmt::ExprStmt(e) => base.add(self.expr_cost(e)),
            Stmt::If { arms, otherwise } => {
                // Upper bound: all conditions evaluated, the most
                // expensive body taken.
                let mut c = base;
                let mut worst = Cost::Bounded(0);
                for (cond, body) in arms {
                    c = c.add(self.expr_cost(cond));
                    worst = worst_of(worst, self.block_cost(body));
                }
                if let Some(body) = otherwise {
                    worst = worst_of(worst, self.block_cost(body));
                }
                c.add(worst)
            }
            Stmt::While { cond, body } => {
                if const_truthy(cond) == Some(false) {
                    // The loop never runs; only the condition is paid.
                    return base.add(self.expr_cost(cond));
                }
                // Walk the body anyway so nested findings (zero steps,
                // forbidden calls in dead loops) still surface.
                let _ = self.expr_cost(cond);
                let _ = self.block_cost(body);
                let c = self.unbounded(cond.pos(), "`while` loop with a non-constant condition");
                base.add(c)
            }
            Stmt::NumericFor { start, stop, step, body, .. } => {
                let mut c = base.add(self.expr_cost(start)).add(self.expr_cost(stop));
                if let Some(e) = step {
                    c = c.add(self.expr_cost(e));
                }
                let bounds = (
                    const_number(start),
                    const_number(stop),
                    step.as_ref().map_or(Some(1.0), const_number),
                );
                let body_cost = self.block_cost(body);
                match bounds {
                    (Some(_), Some(_), Some(0.0)) => {
                        self.diags.push(Diagnostic::new(
                            DiagnosticCode::ZeroStepFor,
                            step.as_ref().map_or(start.pos(), Expr::pos),
                            "numeric `for` step is constant zero (guaranteed \
                             runtime error)",
                        ));
                        // The interpreter errors before iterating.
                        c
                    }
                    (Some(s), Some(e), Some(st)) => {
                        let n = trip_count(s, e, st);
                        let per = Cost::Bounded(1).add(body_cost);
                        let scaled = per.times(n);
                        if per.is_bounded() && !scaled.is_bounded() {
                            let _ = self
                                .unbounded(start.pos(), "loop bound overflows the cost arithmetic");
                        }
                        c.add(scaled)
                    }
                    _ => {
                        // Not literal constants — but the interval
                        // domain may still have proved a finite
                        // worst-case trip count for this loop.
                        let key = {
                            let p = start.pos();
                            (p.line, p.col)
                        };
                        match self.loop_bounds.get(&key) {
                            Some(&n) => {
                                let per = Cost::Bounded(1).add(body_cost);
                                let scaled = per.times(n);
                                if per.is_bounded() && !scaled.is_bounded() {
                                    let _ = self.unbounded(
                                        start.pos(),
                                        "loop bound overflows the cost arithmetic",
                                    );
                                }
                                c.add(scaled)
                            }
                            None => {
                                let u = self.unbounded(
                                    start.pos(),
                                    "numeric `for` with non-constant bounds",
                                );
                                c.add(u).add(body_cost)
                            }
                        }
                    }
                }
            }
            Stmt::GenericFor { iterable, body, .. } => {
                let c = base.add(self.expr_cost(iterable));
                let body_cost = self.block_cost(body);
                if let Expr::Table { array, hash, .. } = iterable {
                    let n = (array.len() + hash.len()) as u64;
                    c.add(Cost::Bounded(1).add(body_cost).times(n))
                } else {
                    let u = self
                        .unbounded(iterable.pos(), "generic `for` over a dynamically-sized table");
                    c.add(u).add(body_cost)
                }
            }
            Stmt::Break(_) => base,
            Stmt::Return(e, _) => match e {
                Some(e) => base.add(self.expr_cost(e)),
                None => base,
            },
        }
    }

    fn expr_cost(&mut self, e: &Expr) -> Cost {
        // Every evaluated expression node is charged once by `eval`.
        let base = Cost::Bounded(1);
        match e {
            Expr::Nil(_)
            | Expr::Bool(..)
            | Expr::Number(..)
            | Expr::Str(..)
            | Expr::Var(..)
            | Expr::Function { .. } => base,
            Expr::Unary { expr, .. } => base.add(self.expr_cost(expr)),
            Expr::Binary { lhs, rhs, .. } => base.add(self.expr_cost(lhs)).add(self.expr_cost(rhs)),
            Expr::Index { table, key, .. } => {
                base.add(self.expr_cost(table)).add(self.expr_cost(key))
            }
            Expr::Table { array, hash, .. } => {
                let mut c = base;
                for a in array {
                    c = c.add(self.expr_cost(a));
                }
                for (k, v) in hash {
                    if let TableKey::Expr(ke) = k {
                        c = c.add(self.expr_cost(ke));
                    }
                    c = c.add(self.expr_cost(v));
                }
                c
            }
            Expr::Call { callee, args, pos } => {
                let mut c = base;
                for a in args {
                    c = c.add(self.expr_cost(a));
                }
                let target = self.call_targets.get(&(pos.line, pos.col)).copied();
                match target {
                    Some(CallTarget::Known(idx)) => c.add(self.fn_cost(idx)),
                    // Builtins and host functions never charge the
                    // budget; unknown names error before running.
                    Some(CallTarget::Builtin)
                    | Some(CallTarget::Capability)
                    | Some(CallTarget::Unknown) => c,
                    Some(CallTarget::Dynamic) | None => {
                        // A function value the analyzer cannot see
                        // through could be any closure.
                        if !matches!(callee.as_ref(), Expr::Var(..)) {
                            c = c.add(self.expr_cost(callee));
                        }
                        let u = self.unbounded(*pos, "call through a dynamic function value");
                        c.add(u)
                    }
                }
            }
        }
    }

    fn fn_cost(&mut self, idx: usize) -> Cost {
        match self.memo[idx] {
            Memo::Done(c) => c,
            Memo::InProgress => self.unbounded(self.res.functions[idx].pos, "recursive function"),
            Memo::Unvisited => {
                self.memo[idx] = Memo::InProgress;
                let c = self.block_cost(self.res.functions[idx].body);
                self.memo[idx] = Memo::Done(c);
                c
            }
        }
    }
}

fn worst_of(a: Cost, b: Cost) -> Cost {
    match (a, b) {
        (Cost::Bounded(x), Cost::Bounded(y)) => Cost::Bounded(x.max(y)),
        _ => Cost::Unbounded,
    }
}

/// Trip count of `for i = start, stop, step` (the interpreter's exact
/// iteration rule), saturated to `u64::MAX` for absurd ranges. Shared
/// with the interval domain, which feeds it worst-case corner bounds.
pub(crate) fn trip_count(start: f64, stop: f64, step: f64) -> u64 {
    let n = if step > 0.0 && start <= stop {
        ((stop - start) / step).floor() + 1.0
    } else if step < 0.0 && start >= stop {
        ((start - stop) / -step).floor() + 1.0
    } else {
        0.0
    };
    if n.is_finite() && n < u64::MAX as f64 {
        n as u64
    } else {
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic_goes_top_on_overflow() {
        // Near-u64::MAX bounds must degrade to ⊤, never wrap or
        // silently saturate into a "valid" finite bound.
        let near = Cost::Bounded(u64::MAX - 1);
        assert_eq!(near + Cost::Bounded(1), Cost::Bounded(u64::MAX));
        assert_eq!(near + Cost::Bounded(2), Cost::Unbounded);
        assert_eq!(near.times(2), Cost::Unbounded);
        assert_eq!(Cost::Bounded(u64::MAX).times(1), Cost::Bounded(u64::MAX));
        assert_eq!(Cost::Bounded(2).times(u64::MAX / 2 + 1), Cost::Unbounded);
        assert_eq!(Cost::Unbounded + Cost::Bounded(1), Cost::Unbounded);
        assert_eq!(Cost::Unbounded.times(0), Cost::Unbounded);
    }
}
