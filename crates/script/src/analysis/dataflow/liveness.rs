//! Backward liveness and the W204 dead-store lint.
//!
//! A name is *live* at a program point if some path from that point
//! reads it before any write. A store (plain assignment, or a `local`
//! initialiser) whose target is not live immediately afterwards is
//! dead: the value can never be observed.
//!
//! Lua-style scoping makes name-keyed liveness subtle, so the pass
//! buys soundness with three restrictions:
//!
//! - Names the [`NameClasses`] walk marks *store-observable* (globals,
//!   names any function literal assigns or reads) are never killed or
//!   reported — a later call could observe the store.
//! - Only names with exactly **one** binding site in the body are
//!   killed or reported. With two `local` declarations of the same
//!   name, a kill at the inner one would erase the outer binding's
//!   liveness across a scope boundary the block-level CFG cannot see.
//! - Names never read anywhere in the body are left to the W103
//!   unused-local lint; W204 is reserved for stores that are dead even
//!   though the variable *is* used elsewhere — the classic
//!   "initialised, then unconditionally overwritten" bug.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::analysis::cfg::Cfg;
use crate::analysis::dataflow::{inspect, solve, Direction, Domain, NameClasses};
use crate::analysis::diagnostic::{Diagnostic, DiagnosticCode};
use crate::ast::{Expr, Stmt, TableKey, Target};

/// The liveness domain (backward). The fact is the set of live names.
#[derive(Debug)]
pub struct LivenessDomain {
    /// Names a write is allowed to kill (single binding site, not
    /// store-observable). Everything else flows through untouched.
    killable: HashSet<String>,
}

impl LivenessDomain {
    /// A domain that kills only the given names.
    pub fn new(killable: HashSet<String>) -> Self {
        LivenessDomain { killable }
    }

    fn kill(&self, name: &str, live: &mut BTreeSet<String>) {
        if self.killable.contains(name) {
            live.remove(name);
        }
    }
}

impl Domain for LivenessDomain {
    type Fact = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BTreeSet<String> {
        BTreeSet::new()
    }

    fn join(&self, a: &BTreeSet<String>, b: &BTreeSet<String>) -> BTreeSet<String> {
        a.union(b).cloned().collect()
    }

    fn transfer(&mut self, stmt: &Stmt, live: &mut BTreeSet<String>) {
        match stmt {
            Stmt::Local { name, init, .. } => {
                self.kill(name, live);
                if let Some(e) = init {
                    gen_expr(e, live);
                }
            }
            Stmt::Assign { target, value, .. } => {
                match target {
                    Target::Name(name) => self.kill(name, live),
                    Target::Index { table, key } => {
                        gen_expr(table, live);
                        gen_expr(key, live);
                    }
                }
                gen_expr(value, live);
            }
            Stmt::ExprStmt(e) => gen_expr(e, live),
            // Shallow lowering: bodies live in successor blocks; only
            // the expressions this statement itself evaluates count.
            Stmt::If { arms, .. } => {
                for (cond, _) in arms {
                    gen_expr(cond, live);
                }
            }
            Stmt::While { cond, .. } => gen_expr(cond, live),
            Stmt::NumericFor { var, start, stop, step, .. } => {
                self.kill(var, live);
                gen_expr(start, live);
                gen_expr(stop, live);
                if let Some(e) = step {
                    gen_expr(e, live);
                }
            }
            Stmt::GenericFor { key_var, value_var, iterable, .. } => {
                self.kill(key_var, live);
                if let Some(v) = value_var {
                    self.kill(v, live);
                }
                gen_expr(iterable, live);
            }
            // The function value itself reads nothing at definition
            // time; names its body reads are store-observable and thus
            // never killed or reported, so they need no gen here.
            Stmt::LocalFunction { name, .. } => self.kill(name, live),
            Stmt::Break(_) => {}
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    gen_expr(e, live);
                }
            }
        }
    }
}

/// Inserts every name `e` reads. Function-literal interiors are
/// skipped: their free names are store-observable by construction.
fn gen_expr(e: &Expr, live: &mut BTreeSet<String>) {
    match e {
        Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..) => {}
        Expr::Var(name, _) => {
            live.insert(name.clone());
        }
        Expr::Unary { expr, .. } => gen_expr(expr, live),
        Expr::Binary { lhs, rhs, .. } => {
            gen_expr(lhs, live);
            gen_expr(rhs, live);
        }
        Expr::Call { callee, args, .. } => {
            gen_expr(callee, live);
            for a in args {
                gen_expr(a, live);
            }
        }
        Expr::Index { table, key, .. } => {
            gen_expr(table, live);
            gen_expr(key, live);
        }
        Expr::Table { array, hash, .. } => {
            for a in array {
                gen_expr(a, live);
            }
            for (k, v) in hash {
                if let TableKey::Expr(ke) = k {
                    gen_expr(ke, live);
                }
                gen_expr(v, live);
            }
        }
        Expr::Function { .. } => {}
    }
}

/// Per-body census used to gate kills and reports. Every statement
/// appears in exactly one block, so one shallow walk over the blocks
/// counts each binding once.
fn census(cfg: &Cfg<'_>) -> (HashMap<String, usize>, BTreeSet<String>) {
    let mut bindings: HashMap<String, usize> = HashMap::new();
    let mut reads = BTreeSet::new();
    let bind = |name: &String, b: &mut HashMap<String, usize>| {
        *b.entry(name.clone()).or_insert(0) += 1;
    };
    for block in &cfg.blocks {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Local { name, init, .. } => {
                    bind(name, &mut bindings);
                    if let Some(e) = init {
                        gen_expr(e, &mut reads);
                    }
                }
                Stmt::LocalFunction { name, .. } => bind(name, &mut bindings),
                Stmt::NumericFor { var, start, stop, step, .. } => {
                    bind(var, &mut bindings);
                    gen_expr(start, &mut reads);
                    gen_expr(stop, &mut reads);
                    if let Some(e) = step {
                        gen_expr(e, &mut reads);
                    }
                }
                Stmt::GenericFor { key_var, value_var, iterable, .. } => {
                    bind(key_var, &mut bindings);
                    if let Some(v) = value_var {
                        bind(v, &mut bindings);
                    }
                    gen_expr(iterable, &mut reads);
                }
                Stmt::Assign { target, value, .. } => {
                    if let Target::Index { table, key } = target {
                        gen_expr(table, &mut reads);
                        gen_expr(key, &mut reads);
                    }
                    gen_expr(value, &mut reads);
                }
                Stmt::ExprStmt(e) => gen_expr(e, &mut reads),
                Stmt::If { arms, .. } => {
                    for (cond, _) in arms {
                        gen_expr(cond, &mut reads);
                    }
                }
                Stmt::While { cond, .. } => gen_expr(cond, &mut reads),
                Stmt::Break(_) => {}
                Stmt::Return(e, _) => {
                    if let Some(e) = e {
                        gen_expr(e, &mut reads);
                    }
                }
            }
        }
    }
    (bindings, reads)
}

/// Solves liveness over one CFG and reports W204 for stores whose
/// value is provably never read.
pub(crate) fn dead_stores(cfg: &Cfg<'_>, classes: &NameClasses, diags: &mut Vec<Diagnostic>) {
    let (bindings, reads) = census(cfg);
    let reportable = |name: &str| {
        bindings.get(name).copied() == Some(1)
            && !classes.store_observable(name)
            && reads.contains(name)
    };
    let killable: HashSet<String> = bindings
        .keys()
        .filter(|n| bindings[*n] == 1 && !classes.store_observable(n))
        .cloned()
        .collect();

    let mut dom = LivenessDomain::new(killable);
    let sol = solve(cfg, &mut dom);
    // Backward inspection hands each statement the fact *after* it in
    // program order — exactly the live-out a dead-store check needs.
    inspect(cfg, &mut dom, &sol, |_, stmt, live_after| match stmt {
        Stmt::Assign { target: Target::Name(name), pos, .. }
            if reportable(name) && !live_after.contains(name) =>
        {
            diags.push(Diagnostic::new(
                DiagnosticCode::DeadStore,
                *pos,
                format!("value assigned to `{name}` is never read (overwritten or out of scope before any use)"),
            ));
        }
        Stmt::Local { name, init: Some(_), pos }
            if reportable(name) && !live_after.contains(name) =>
        {
            diags.push(Diagnostic::new(
                DiagnosticCode::DeadStore,
                *pos,
                format!("initial value of `{name}` is never read (overwritten before any use)"),
            ));
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dataflow::classify_names;
    use crate::parser::parse;
    use crate::Pos;

    fn w204_lines(src: &str) -> Vec<u32> {
        let block = parse(src).expect("parses");
        let classes = classify_names(&block);
        let (cfg, _) = Cfg::build(&block, Pos { line: 1, col: 1 });
        let mut diags = Vec::new();
        dead_stores(&cfg, &classes, &mut diags);
        assert!(diags.iter().all(|d| d.code == DiagnosticCode::DeadStore));
        let mut lines: Vec<u32> = diags.iter().map(|d| d.pos.line).collect();
        lines.sort_unstable();
        lines
    }

    #[test]
    fn overwritten_initialiser_is_dead() {
        assert_eq!(w204_lines("local x = 1\nx = 2\nreturn x"), vec![1]);
    }

    #[test]
    fn chain_of_overwrites_flags_each_dead_store() {
        assert_eq!(w204_lines("local x = 1\nx = 2\nx = 3\nreturn x"), vec![1, 2]);
    }

    #[test]
    fn live_across_branch_is_not_dead() {
        let src = "local x = 1\nif clock() > 0 then x = 2 end\nreturn x";
        assert!(w204_lines(src).is_empty());
    }

    #[test]
    fn both_arms_overwrite_makes_initialiser_dead() {
        let src = "local x = 1\nif clock() > 0 then x = 2 else x = 3 end\nreturn x";
        assert_eq!(w204_lines(src), vec![1]);
    }

    #[test]
    fn loop_carried_value_is_live() {
        assert!(w204_lines("local s = 0\nfor i = 1, 3 do s = s + 1 end\nreturn s").is_empty());
    }

    #[test]
    fn shadowed_names_are_never_reported() {
        // Two binding sites: a kill at the inner `local` would cross a
        // scope boundary the CFG cannot express, so the name is exempt.
        let src = "local x = 1\nif clock() > 0 then local x = 2\nprint(x) else local x = 3\nprint(x) end\nreturn x";
        assert!(w204_lines(src).is_empty());
    }

    #[test]
    fn closure_read_names_are_never_reported() {
        let src = "local x = 1\nlocal function f() return x end\nx = 2\nreturn f()";
        assert!(w204_lines(src).is_empty());
    }

    #[test]
    fn never_read_names_are_left_to_w103() {
        assert!(w204_lines("local dead = 1\nreturn 2").is_empty());
    }

    #[test]
    fn index_store_reads_its_table() {
        assert!(w204_lines("local t = {}\nt[1] = 5\nreturn t").is_empty());
    }
}
