//! Constant/interval propagation for numeric locals.
//!
//! Tracks, per plain local variable, an interval `[lo, hi]` that is
//! guaranteed to contain every numeric value the variable can hold at
//! that program point. The payoff is loop bounds: a numeric `for`
//! whose `start`/`stop`/`step` evaluate to finite intervals gets a
//! finite worst-case trip count even when the bounds are variables —
//! `local n = 10  for i = 1, n do … end` is no longer ⊤ (W402).
//!
//! Soundness rules, enforced conservatively:
//!
//! - Only *trackable* names carry facts: globals and names assigned
//!   inside any function literal are ⊤ everywhere (a call could
//!   mutate them behind the analysis's back).
//! - `local` (re-)declaration *hulls* with the previous fact instead
//!   of overwriting: a shadowing declaration's scope is invisible at
//!   block granularity, and the hull keeps the outer binding's value
//!   inside the interval after the scope ends.
//! - Plain assignment overwrites — it mutates the innermost binding
//!   on every path through the statement, and joins at CFG merges
//!   account for the paths that skipped it.
//! - Widening after a few visits sends unstable bounds to ±∞, so
//!   counting loops terminate.

use std::collections::{BTreeMap, HashMap};

use crate::analysis::cfg::Cfg;
use crate::analysis::cost::trip_count;
use crate::analysis::dataflow::{inspect, solve, Direction, Domain, NameClasses};
use crate::ast::{BinOp, Expr, Stmt, Target, UnOp};

/// A closed numeric interval; `TOP` is `[-∞, +∞]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-∞`).
    pub lo: f64,
    /// Upper bound (may be `+∞`).
    pub hi: f64,
}

impl Interval {
    /// The unconstrained interval.
    pub const TOP: Interval = Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY };

    /// A single-point interval.
    pub fn point(n: f64) -> Interval {
        if n.is_nan() {
            Interval::TOP
        } else {
            Interval { lo: n, hi: n }
        }
    }

    fn of(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() {
            Interval::TOP
        } else {
            Interval { lo, hi }
        }
    }

    /// Smallest interval containing both.
    pub fn hull(self, other: Interval) -> Interval {
        Interval::of(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    fn corners(self, other: Interval, f: impl Fn(f64, f64) -> f64) -> Interval {
        let c = [
            f(self.lo, other.lo),
            f(self.lo, other.hi),
            f(self.hi, other.lo),
            f(self.hi, other.hi),
        ];
        if c.iter().any(|x| x.is_nan()) {
            return Interval::TOP;
        }
        Interval::of(
            c.iter().copied().fold(f64::INFINITY, f64::min),
            c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    }
}

/// The abstract environment: trackable local name → interval.
/// A missing key means "no numeric fact" and reads as ⊤.
pub type Env = BTreeMap<String, Interval>;

/// The interval domain (forward).
#[derive(Debug)]
pub struct IntervalDomain<'c> {
    classes: &'c NameClasses,
}

impl<'c> IntervalDomain<'c> {
    /// A domain instance restricted to names `classes` proves safe.
    pub fn new(classes: &'c NameClasses) -> Self {
        IntervalDomain { classes }
    }

    /// Abstractly evaluates an expression under `env`.
    pub fn eval(&self, e: &Expr, env: &Env) -> Interval {
        match e {
            Expr::Number(n, _) => Interval::point(*n),
            Expr::Var(name, _) => {
                if self.classes.trackable(name) {
                    env.get(name).copied().unwrap_or(Interval::TOP)
                } else {
                    Interval::TOP
                }
            }
            Expr::Unary { op: UnOp::Neg, expr, .. } => {
                let v = self.eval(expr, env);
                Interval::of(-v.hi, -v.lo)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.eval(lhs, env);
                let b = self.eval(rhs, env);
                match op {
                    BinOp::Add => a.corners(b, |x, y| x + y),
                    BinOp::Sub => a.corners(b, |x, y| x - y),
                    BinOp::Mul => a.corners(b, |x, y| x * y),
                    BinOp::Div => {
                        if b.lo <= 0.0 && b.hi >= 0.0 {
                            Interval::TOP // divisor may be zero
                        } else {
                            a.corners(b, |x, y| x / y)
                        }
                    }
                    _ => Interval::TOP,
                }
            }
            _ => Interval::TOP,
        }
    }

    /// The interval the loop variable spans while the body runs.
    fn loop_var_range(&self, start: Interval, stop: Interval, step: Interval) -> Interval {
        if step.lo > 0.0 {
            Interval::of(start.lo, stop.hi)
        } else if step.hi < 0.0 {
            Interval::of(stop.lo, start.hi)
        } else {
            start.hull(stop)
        }
    }

    fn for_parts(&self, stmt: &Stmt, env: &Env) -> Option<(Interval, Interval, Interval)> {
        let Stmt::NumericFor { start, stop, step, .. } = stmt else { return None };
        let s = self.eval(start, env);
        let e = self.eval(stop, env);
        let st = step.as_ref().map_or(Interval::point(1.0), |x| self.eval(x, env));
        Some((s, e, st))
    }
}

impl Domain for IntervalDomain<'_> {
    type Fact = Env;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Env {
        Env::new()
    }

    fn join(&self, a: &Env, b: &Env) -> Env {
        let mut out = a.clone();
        for (k, v) in b {
            match out.get_mut(k) {
                Some(cur) => *cur = cur.hull(*v),
                // One-sided facts survive the join: on the other path
                // the name is unbound and a read would abort the
                // script before any loop could iterate.
                None => {
                    out.insert(k.clone(), *v);
                }
            }
        }
        out
    }

    fn widen(&self, old: &Env, joined: Env) -> Env {
        joined
            .into_iter()
            .map(|(k, v)| {
                let w = match old.get(&k) {
                    Some(o) => Interval::of(
                        if v.lo < o.lo { f64::NEG_INFINITY } else { v.lo },
                        if v.hi > o.hi { f64::INFINITY } else { v.hi },
                    ),
                    None => v,
                };
                (k, w)
            })
            .collect()
    }

    fn transfer(&mut self, stmt: &Stmt, env: &mut Env) {
        match stmt {
            Stmt::Local { name, init, .. } if self.classes.trackable(name) => {
                let v = init.as_ref().map_or(Interval::TOP, |e| self.eval(e, env));
                let hulled = env.get(name).map_or(v, |old| old.hull(v));
                env.insert(name.clone(), hulled);
            }
            Stmt::Assign { target: Target::Name(name), value, .. }
                if self.classes.trackable(name) =>
            {
                let v = self.eval(value, env);
                env.insert(name.clone(), v);
            }
            Stmt::NumericFor { var, .. } => {
                if let Some((s, e, st)) = self.for_parts(stmt, env) {
                    if self.classes.trackable(var) {
                        let range = self.loop_var_range(s, e, st);
                        let hulled = env.get(var).map_or(range, |old| old.hull(range));
                        env.insert(var.clone(), hulled);
                    }
                }
            }
            Stmt::GenericFor { key_var, value_var, .. } => {
                // Loop variables hold arbitrary table contents.
                if self.classes.trackable(key_var) {
                    env.insert(key_var.clone(), Interval::TOP);
                }
                if let Some(v) = value_var {
                    if self.classes.trackable(v) {
                        env.insert(v.clone(), Interval::TOP);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Solves the interval domain over one CFG and records, for every
/// numeric `for` whose interval-derived worst case is finite, the
/// maximal trip count keyed by the loop's position.
pub(crate) fn loop_bounds(
    cfg: &Cfg<'_>,
    classes: &NameClasses,
    out: &mut HashMap<(u32, u32), u64>,
) {
    let mut dom = IntervalDomain::new(classes);
    let sol = solve(cfg, &mut dom);
    inspect(cfg, &mut dom, &sol, |dom, stmt, env| {
        let Some((s, e, st)) = dom.for_parts(stmt, env) else { return };
        // Worst case over the step interval: the sign must be certain,
        // and the relevant corner bounds finite.
        let n = if st.lo > 0.0 {
            trip_count(s.lo, e.hi, st.lo)
        } else if st.hi < 0.0 {
            trip_count(s.hi, e.lo, st.hi)
        } else {
            return; // step sign unknown (may even be the zero-step error)
        };
        if n < u64::MAX {
            let pos = stmt.pos();
            out.insert((pos.line, pos.col), n);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dataflow::classify_names;
    use crate::parser::parse;
    use crate::Pos;

    fn bounds_of(src: &str) -> HashMap<(u32, u32), u64> {
        let block = parse(src).expect("parses");
        let classes = classify_names(&block);
        let (cfg, _) = Cfg::build(&block, Pos { line: 1, col: 1 });
        let mut out = HashMap::new();
        loop_bounds(&cfg, &classes, &mut out);
        out
    }

    #[test]
    fn variable_stop_with_constant_local_is_bounded() {
        let b = bounds_of("local n = 10\nfor i = 1, n do print(i) end");
        assert_eq!(b.values().copied().collect::<Vec<_>>(), vec![10]);
    }

    #[test]
    fn derived_bound_through_arithmetic() {
        let b = bounds_of("local n = 4\nlocal m = n * 2 + 1\nfor i = 1, m do print(i) end");
        assert_eq!(b.values().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn nested_loop_over_outer_variable_is_bounded() {
        let b = bounds_of("for i = 1, 9 do\nfor j = 1, i do print(j) end\nend");
        let mut counts: Vec<u64> = b.values().copied().collect();
        counts.sort_unstable();
        // Outer: 9 trips; inner: at most 9 (i ranges over [1, 9]).
        assert_eq!(counts, vec![9, 9]);
    }

    #[test]
    fn branch_join_takes_the_hull() {
        let src = "local n = 1\nif clock() > 0 then n = 5 end\nfor i = 1, n do print(i) end";
        let b = bounds_of(src);
        assert_eq!(b.values().copied().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn widened_counter_is_not_bounded() {
        // `n` grows in an unbounded while loop: widening must push its
        // upper bound to +inf, so the for loop stays ⊤.
        let src = "local n = 1\nwhile clock() < 100 do n = n + 1 end\nfor i = 1, n do print(i) end";
        assert!(bounds_of(src).is_empty());
    }

    #[test]
    fn global_bound_is_untracked() {
        assert!(bounds_of("g = 10\nfor i = 1, g do print(i) end").is_empty());
    }

    #[test]
    fn closure_mutated_local_is_untracked() {
        let src =
            "local n = 2\nlocal function bump() n = 99 end\nbump()\nfor i = 1, n do print(i) end";
        assert!(bounds_of(src).is_empty());
    }

    #[test]
    fn downward_loop_with_variable_start_is_bounded() {
        let b = bounds_of("local n = 6\nfor i = n, 1, -1 do print(i) end");
        assert_eq!(b.values().copied().collect::<Vec<_>>(), vec![6]);
    }

    #[test]
    fn unknown_step_sign_is_unbounded() {
        let src = "local s = tonumber('1')\nfor i = 1, 10, s do print(i) end";
        assert!(bounds_of(src).is_empty());
    }

    #[test]
    fn interval_arithmetic_handles_nan_and_zero_division() {
        let classes = NameClasses::default();
        let d = IntervalDomain::new(&classes);
        let env = Env::new();
        let block = parse("return 1 / 0").unwrap();
        let Stmt::Return(Some(e), _) = &block[0] else { panic!() };
        // Divisor interval is the point 0 → TOP, not ±inf corners.
        assert_eq!(d.eval(e, &env), Interval::TOP);
    }
}
