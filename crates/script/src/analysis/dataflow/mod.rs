//! Pass 3.5: worklist-driven abstract interpretation over the CFGs.
//!
//! A single fixpoint engine ([`solve`]) runs any [`Domain`] — an
//! abstract value lattice with a transfer function — over the
//! per-function [`Cfg`]s built by the [`crate::analysis::cfg`] pass.
//! Three domains ship with it:
//!
//! - [`interval`] — constant/interval propagation for numeric locals.
//!   Its product is a *loop-bounds table*: numeric `for` loops whose
//!   bounds are provably confined to an interval get a finite trip
//!   count, which the cost pass uses to replace ⊤ (W402) verdicts
//!   with real bounds.
//! - [`taint`] — sensor-read provenance. Each capability call stamps
//!   its value with a raw-taint origin; aggregating builtins (`mean`,
//!   `histogram`, …) launder raw into aggregate; a top-level `return`
//!   carrying raw high-sensitivity taint is **E004** (admission
//!   rejects), raw medium-sensitivity is **W501**.
//! - [`liveness`] — backward liveness powering **W204** dead-store
//!   findings (a value written to a local that is overwritten before
//!   any read).
//!
//! [`dead_branches`] adds **W203** for branches statically severed by
//! literal conditions — the analysis twin of the optimizer's pruning.
//!
//! The engine is deliberately *shallow*: loop headers hold exactly
//! their loop statement, bodies live in successor blocks, so transfer
//! functions look only at a statement's own expressions. Widening
//! kicks in after a few visits to the same block, so interval growth
//! through loops terminates.

pub mod interval;
pub mod liveness;
pub mod taint;

use std::collections::{HashMap, HashSet, VecDeque};

use crate::analysis::cfg::{Cfg, EXIT};
use crate::analysis::consteval::const_truthy;
use crate::analysis::diagnostic::{Diagnostic, DiagnosticCode};
use crate::analysis::resolve::Resolution;
use crate::analysis::CapabilitySet;
use crate::ast::{Block, Expr, Stmt, TableKey, Target};
use crate::Pos;

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along successor edges.
    Forward,
    /// Facts flow from the exit along predecessor edges.
    Backward,
}

/// An abstract domain the engine can run to fixpoint.
pub trait Domain {
    /// The per-program-point fact (an abstract environment).
    type Fact: Clone + PartialEq;

    /// Analysis direction.
    fn direction(&self) -> Direction;

    /// The fact at the boundary block (entry for forward analyses,
    /// exit for backward ones).
    fn boundary(&self) -> Self::Fact;

    /// Least upper bound of two facts.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Accelerates convergence at frequently-revisited blocks (loop
    /// heads). Must be an upper bound of both arguments; the default
    /// is plain join, correct for finite lattices.
    fn widen(&self, _old: &Self::Fact, joined: Self::Fact) -> Self::Fact {
        joined
    }

    /// Applies one statement's effect to the fact, *shallow*: loop and
    /// branch bodies are separate blocks and must not be entered here.
    fn transfer(&mut self, stmt: &Stmt, fact: &mut Self::Fact);
}

/// Fixpoint result: the fact flowing *into* each block, in analysis
/// direction (`None` = the block is unreachable from the boundary).
#[derive(Debug)]
pub struct Solution<F> {
    /// Per-block input facts.
    pub input: Vec<Option<F>>,
}

/// Visits after which [`Domain::widen`] replaces plain join.
const WIDEN_AFTER: usize = 4;

/// Runs `dom` to fixpoint over `cfg` with a FIFO worklist.
pub fn solve<D: Domain>(cfg: &Cfg<'_>, dom: &mut D) -> Solution<D::Fact> {
    let n = cfg.blocks.len();
    let backward = dom.direction() == Direction::Backward;
    let preds = cfg.preds();
    let (in_edges, out_edges): (Vec<Vec<usize>>, Vec<Vec<usize>>) = if backward {
        (cfg.blocks.iter().map(|b| b.succs.clone()).collect(), preds)
    } else {
        (preds, cfg.blocks.iter().map(|b| b.succs.clone()).collect())
    };
    let start = if backward { EXIT } else { cfg.entry };

    let mut input: Vec<Option<D::Fact>> = (0..n).map(|_| None).collect();
    let mut output: Vec<Option<D::Fact>> = (0..n).map(|_| None).collect();
    let mut visits = vec![0usize; n];
    let mut queued = vec![false; n];
    let mut worklist = VecDeque::new();
    worklist.push_back(start);
    queued[start] = true;

    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        let mut acc: Option<D::Fact> = if b == start { Some(dom.boundary()) } else { None };
        for &p in &in_edges[b] {
            if let Some(out) = &output[p] {
                acc = Some(match acc {
                    Some(a) => dom.join(&a, out),
                    None => out.clone(),
                });
            }
        }
        let Some(mut new_in) = acc else { continue };
        visits[b] += 1;
        if visits[b] > WIDEN_AFTER {
            if let Some(old) = &input[b] {
                new_in = dom.widen(old, new_in);
            }
        }
        if input[b].as_ref() == Some(&new_in) && output[b].is_some() {
            continue;
        }
        input[b] = Some(new_in.clone());
        let mut f = new_in;
        if backward {
            for s in cfg.blocks[b].stmts.iter().rev() {
                dom.transfer(s, &mut f);
            }
        } else {
            for s in &cfg.blocks[b].stmts {
                dom.transfer(s, &mut f);
            }
        }
        if output[b].as_ref() != Some(&f) {
            output[b] = Some(f);
            for &s in &out_edges[b] {
                if !queued[s] {
                    queued[s] = true;
                    worklist.push_back(s);
                }
            }
        }
    }
    Solution { input }
}

/// One post-fixpoint walk: calls `f(dom, stmt, fact_before)` for every
/// statement of every reachable block, with the fact holding *before*
/// the statement in analysis direction (for backward domains that is
/// the fact *after* it in program order — exactly liveness-out).
pub fn inspect<D: Domain>(
    cfg: &Cfg<'_>,
    dom: &mut D,
    sol: &Solution<D::Fact>,
    mut f: impl FnMut(&mut D, &Stmt, &D::Fact),
) {
    let backward = dom.direction() == Direction::Backward;
    for (i, block) in cfg.blocks.iter().enumerate() {
        let Some(fact) = &sol.input[i] else { continue };
        let mut fact = fact.clone();
        if backward {
            for s in block.stmts.iter().rev() {
                f(dom, s, &fact);
                dom.transfer(s, &mut fact);
            }
        } else {
            for s in &block.stmts {
                f(dom, s, &fact);
                dom.transfer(s, &mut fact);
            }
        }
    }
}

/// How the runtime scope machinery limits what name-keyed analyses
/// may track. One conservative AST walk classifies every name.
#[derive(Debug, Default)]
pub struct NameClasses {
    /// Names assigned without a visible `local` binding — true
    /// globals. Any call may rewrite them; no domain tracks their
    /// value.
    pub globals: HashSet<String>,
    /// Names assigned anywhere inside a function literal. A call can
    /// mutate them behind the analysis's back.
    pub fn_assigned: HashSet<String>,
    /// Names read anywhere inside a function literal. A later call can
    /// observe them, so stores are never dead.
    pub fn_read: HashSet<String>,
}

impl NameClasses {
    /// Whether a value-tracking domain may keep facts for `name`.
    pub fn trackable(&self, name: &str) -> bool {
        !self.globals.contains(name) && !self.fn_assigned.contains(name)
    }

    /// Whether a store to `name` can ever be proven dead.
    pub fn store_observable(&self, name: &str) -> bool {
        self.globals.contains(name)
            || self.fn_assigned.contains(name)
            || self.fn_read.contains(name)
    }
}

/// Classifies every name in the script for the value-tracking and
/// liveness domains.
pub fn classify_names(top: &Block) -> NameClasses {
    let mut c = NameClasses::default();
    let mut scopes: Vec<HashSet<String>> = vec![HashSet::new()];
    walk_block(top, &mut c, &mut scopes, 0);
    c
}

fn walk_block(
    block: &Block,
    c: &mut NameClasses,
    scopes: &mut Vec<HashSet<String>>,
    fn_depth: usize,
) {
    scopes.push(HashSet::new());
    for stmt in block {
        walk_stmt(stmt, c, scopes, fn_depth);
    }
    scopes.pop();
}

fn walk_stmt(stmt: &Stmt, c: &mut NameClasses, scopes: &mut Vec<HashSet<String>>, fn_depth: usize) {
    match stmt {
        Stmt::Local { name, init, .. } => {
            if let Some(e) = init {
                walk_expr(e, c, scopes, fn_depth);
            }
            scopes.last_mut().expect("scope").insert(name.clone());
        }
        Stmt::LocalFunction { name, params, body, .. } => {
            scopes.last_mut().expect("scope").insert(name.clone());
            walk_fn(params, body, c, scopes);
        }
        Stmt::Assign { target, value, .. } => {
            walk_expr(value, c, scopes, fn_depth);
            match target {
                Target::Name(name) => {
                    if fn_depth > 0 {
                        c.fn_assigned.insert(name.clone());
                    }
                    if !scopes.iter().any(|s| s.contains(name)) {
                        c.globals.insert(name.clone());
                    }
                }
                Target::Index { table, key } => {
                    walk_expr(table, c, scopes, fn_depth);
                    walk_expr(key, c, scopes, fn_depth);
                }
            }
        }
        Stmt::ExprStmt(e) => walk_expr(e, c, scopes, fn_depth),
        Stmt::If { arms, otherwise } => {
            for (cond, body) in arms {
                walk_expr(cond, c, scopes, fn_depth);
                walk_block(body, c, scopes, fn_depth);
            }
            if let Some(body) = otherwise {
                walk_block(body, c, scopes, fn_depth);
            }
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, c, scopes, fn_depth);
            walk_block(body, c, scopes, fn_depth);
        }
        Stmt::NumericFor { var, start, stop, step, body } => {
            walk_expr(start, c, scopes, fn_depth);
            walk_expr(stop, c, scopes, fn_depth);
            if let Some(e) = step {
                walk_expr(e, c, scopes, fn_depth);
            }
            scopes.push(HashSet::from([var.clone()]));
            for s in body {
                walk_stmt(s, c, scopes, fn_depth);
            }
            scopes.pop();
        }
        Stmt::GenericFor { key_var, value_var, iterable, body } => {
            walk_expr(iterable, c, scopes, fn_depth);
            let mut vars = HashSet::from([key_var.clone()]);
            if let Some(v) = value_var {
                vars.insert(v.clone());
            }
            scopes.push(vars);
            for s in body {
                walk_stmt(s, c, scopes, fn_depth);
            }
            scopes.pop();
        }
        Stmt::Break(_) => {}
        Stmt::Return(e, _) => {
            if let Some(e) = e {
                walk_expr(e, c, scopes, fn_depth);
            }
        }
    }
}

fn walk_expr(e: &Expr, c: &mut NameClasses, scopes: &mut Vec<HashSet<String>>, fn_depth: usize) {
    match e {
        Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..) => {}
        Expr::Var(name, _) => {
            if fn_depth > 0 {
                c.fn_read.insert(name.clone());
            }
        }
        Expr::Unary { expr, .. } => walk_expr(expr, c, scopes, fn_depth),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, c, scopes, fn_depth);
            walk_expr(rhs, c, scopes, fn_depth);
        }
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, c, scopes, fn_depth);
            for a in args {
                walk_expr(a, c, scopes, fn_depth);
            }
        }
        Expr::Index { table, key, .. } => {
            walk_expr(table, c, scopes, fn_depth);
            walk_expr(key, c, scopes, fn_depth);
        }
        Expr::Table { array, hash, .. } => {
            for a in array {
                walk_expr(a, c, scopes, fn_depth);
            }
            for (k, v) in hash {
                if let TableKey::Expr(ke) = k {
                    walk_expr(ke, c, scopes, fn_depth);
                }
                walk_expr(v, c, scopes, fn_depth);
            }
        }
        Expr::Function { params, body, .. } => walk_fn(params, body, c, scopes),
    }
}

fn walk_fn(
    params: &[String],
    body: &Block,
    c: &mut NameClasses,
    scopes: &mut Vec<HashSet<String>>,
) {
    scopes.push(params.iter().cloned().collect());
    for s in body {
        walk_stmt(s, c, scopes, 1);
    }
    scopes.pop();
}

/// What the dataflow pass hands back to [`crate::analysis`].
#[derive(Debug, Default)]
pub(crate) struct FlowOutcome {
    /// W203 / W204 / E004 / W501 findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Loop-header position → proved maximal trip count, consumed by
    /// the cost pass for loops whose bounds are not literal constants.
    pub loop_bounds: HashMap<(u32, u32), u64>,
}

/// Runs every dataflow domain over the script and collects findings.
pub(crate) fn pass(top: &Block, res: &Resolution<'_>, caps: &CapabilitySet) -> FlowOutcome {
    let classes = classify_names(top);
    let mut out = FlowOutcome::default();

    // Per-body CFGs: the top level plus every function literal.
    // Build-diagnostics are discarded — the cfg pass already reported
    // them.
    let bodies: Vec<(&Block, Pos)> = std::iter::once((top, Pos { line: 1, col: 1 }))
        .chain(res.functions.iter().map(|f| (f.body, f.pos)))
        .collect();

    for (body, fn_pos) in &bodies {
        let (cfg, _) = Cfg::build(body, *fn_pos);
        interval::loop_bounds(&cfg, &classes, &mut out.loop_bounds);
        liveness::dead_stores(&cfg, &classes, &mut out.diagnostics);
    }

    taint::check(top, res, caps, &mut out.diagnostics);
    dead_branches(top, &mut out.diagnostics);
    out
}

/// W203: branches severed by literal conditions. Walks the AST (the
/// shape is syntactic, no fixpoint needed) flagging `if` arms whose
/// condition is constant-false, arms shadowed by an earlier
/// constant-true condition, and `while` loops that never run.
pub(crate) fn dead_branches(block: &Block, diags: &mut Vec<Diagnostic>) {
    for stmt in block {
        match stmt {
            Stmt::If { arms, otherwise } => {
                let mut taken = false;
                for (cond, body) in arms {
                    if taken {
                        diags.push(Diagnostic::new(
                            DiagnosticCode::DeadBranch,
                            cond.pos(),
                            "this arm can never run: an earlier condition is constant true",
                        ));
                    } else {
                        match const_truthy(cond) {
                            Some(false) => diags.push(Diagnostic::new(
                                DiagnosticCode::DeadBranch,
                                cond.pos(),
                                "this arm can never run: its condition is constant false",
                            )),
                            Some(true) => taken = true,
                            None => {}
                        }
                    }
                    dead_branches(body, diags);
                }
                if let Some(body) = otherwise {
                    if taken {
                        diags.push(Diagnostic::new(
                            DiagnosticCode::DeadBranch,
                            body.first().map(Stmt::pos).unwrap_or_default(),
                            "this `else` can never run: an earlier condition is constant true",
                        ));
                    }
                    dead_branches(body, diags);
                }
            }
            Stmt::While { cond, body } => {
                if const_truthy(cond) == Some(false) {
                    diags.push(Diagnostic::new(
                        DiagnosticCode::DeadBranch,
                        cond.pos(),
                        "this loop body can never run: the condition is constant false",
                    ));
                }
                dead_branches(body, diags);
            }
            Stmt::NumericFor { body, .. } | Stmt::GenericFor { body, .. } => {
                dead_branches(body, diags);
            }
            Stmt::LocalFunction { body, .. } => dead_branches(body, diags),
            Stmt::Local { init: Some(e), .. }
            | Stmt::Assign { value: e, .. }
            | Stmt::ExprStmt(e)
            | Stmt::Return(Some(e), _) => dead_branches_in_expr(e, diags),
            _ => {}
        }
    }
}

fn dead_branches_in_expr(e: &Expr, diags: &mut Vec<Diagnostic>) {
    match e {
        Expr::Function { body, .. } => dead_branches(body, diags),
        Expr::Unary { expr, .. } => dead_branches_in_expr(expr, diags),
        Expr::Binary { lhs, rhs, .. } => {
            dead_branches_in_expr(lhs, diags);
            dead_branches_in_expr(rhs, diags);
        }
        Expr::Call { callee, args, .. } => {
            dead_branches_in_expr(callee, diags);
            for a in args {
                dead_branches_in_expr(a, diags);
            }
        }
        Expr::Index { table, key, .. } => {
            dead_branches_in_expr(table, diags);
            dead_branches_in_expr(key, diags);
        }
        Expr::Table { array, hash, .. } => {
            for a in array {
                dead_branches_in_expr(a, diags);
            }
            for (k, v) in hash {
                if let TableKey::Expr(ke) = k {
                    dead_branches_in_expr(ke, diags);
                }
                dead_branches_in_expr(v, diags);
            }
        }
        _ => {}
    }
}
