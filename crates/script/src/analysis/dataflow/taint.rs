//! Sensor-taint provenance and the E004/W501 privacy lints.
//!
//! Every capability call that acquires sensor data stamps its result
//! with a *raw* taint naming the capability and the read position.
//! Raw taint flows through arithmetic, string conversion, table
//! construction, indexing, assignments, and script-function calls.
//! Passing a value through an **aggregating** builtin (`mean`,
//! `stddev`, `sum`, `min`, `max`, `histogram`, or the `#` length
//! operator) launders raw taint into *aggregate* taint: the result
//! reveals a statistic, not the samples.
//!
//! The sink is the script's top-level `return` — the value shipped
//! off the phone as the task result. A result that may carry raw
//! **high-sensitivity** data (GPS, location, noise/audio) is **E004**
//! and blocks admission; raw **medium-sensitivity** data (WiFi,
//! compass, accelerometer) is the lint-grade **W501**. Aggregated
//! data of any sensitivity is clean: that is exactly the privacy
//! contract the paper's sensing server promises contributors.
//!
//! E004 is deliberately a *may*-flow verdict — the one error code
//! whose evidence is a possible path rather than a certainty. A
//! privacy policy that only rejected certain leaks would be trivially
//! evadable with one `if`.
//!
//! Script functions get *summaries*: each body is analyzed once with
//! its parameters bound to substitution markers, and the marker
//! entries in the returned taint are replaced per call site with the
//! actual argument (or captured free-variable) taints. Recursive
//! calls conservatively pass their arguments through raw.
//!
//! Known false negatives, documented rather than chased: assignments
//! *inside* function bodies to outer locals are not modeled (only
//! return-value flow is), and a shadowed `local` re-declaration
//! overwrites the outer name's taint for the rest of the enclosing
//! block. Both trades keep the false-positive rate of an
//! admission-blocking error at zero for straight-line scripts.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use crate::analysis::cfg::Cfg;
use crate::analysis::dataflow::{inspect, solve, Direction, Domain};
use crate::analysis::diagnostic::{Diagnostic, DiagnosticCode};
use crate::analysis::resolve::{CallTarget, FnDef, Resolution};
use crate::analysis::CapabilitySet;
use crate::ast::{Block, Expr, Stmt, TableKey, Target, UnOp};
use crate::Pos;

/// How much a leaked raw reading from a modality would reveal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sensitivity {
    /// Ambient scalars (temperature, humidity, light, pressure).
    Low,
    /// Movement and radio environment (WiFi, compass, accelerometer).
    Medium,
    /// Position and audio (GPS, location, noise) — raw values
    /// identify where the contributor is.
    High,
}

/// The privacy classification of a standard sensing capability.
/// Returns `None` for names outside the standard vocabulary (custom
/// capabilities are not tracked).
pub fn sensitivity(cap: &str) -> Option<Sensitivity> {
    match cap {
        "get_gps_readings" | "get_location" | "get_noise_readings" => Some(Sensitivity::High),
        "get_wifi_readings" | "get_compass_readings" | "get_accel_readings" => {
            Some(Sensitivity::Medium)
        }
        "get_temperature_readings"
        | "get_humidity_readings"
        | "get_light_readings"
        | "get_pressure_readings" => Some(Sensitivity::Low),
        _ => None,
    }
}

/// Builtins that turn raw samples into a statistic.
pub const AGGREGATORS: &[&str] = &["mean", "stddev", "sum", "min", "max", "histogram"];

/// Longest transform chain kept per origin (diagnostics only).
const VIA_CAP: usize = 4;

/// Marker prefix for "parameter i of the function under summary".
const PARAM_MARK: &str = "\u{1}p";
/// Marker prefix for "free variable `name` captured from the caller".
const FREE_MARK: &str = "\u{1}f:";

/// Where a raw taint entered the script, plus the transforms it has
/// passed through since (for the diagnostic's flow trace).
#[derive(Debug, Clone, PartialEq)]
pub struct Origin {
    /// Position of the capability call that read the data.
    pub pos: Pos,
    /// Pass-through functions the value flowed through, oldest first.
    pub via: Vec<(String, Pos)>,
}

/// The taint carried by one abstract value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Taint {
    /// Capability (or substitution marker) → origin of *raw* data the
    /// value may contain.
    pub raw: BTreeMap<String, Origin>,
    /// Capabilities whose data the value may contain only in
    /// aggregated form.
    pub agg: BTreeSet<String>,
}

impl Taint {
    fn is_clean(&self) -> bool {
        self.raw.is_empty() && self.agg.is_empty()
    }

    /// Raw taint from one capability read.
    fn from_cap(cap: &str, pos: Pos) -> Taint {
        let mut t = Taint::default();
        t.raw.insert(cap.to_string(), Origin { pos, via: Vec::new() });
        t
    }

    fn marker(key: String, pos: Pos) -> Taint {
        let mut t = Taint::default();
        t.raw.insert(key, Origin { pos, via: Vec::new() });
        t
    }

    /// Union, keeping the first-seen origin per capability.
    fn absorb(&mut self, other: &Taint) {
        for (cap, origin) in &other.raw {
            self.raw.entry(cap.clone()).or_insert_with(|| origin.clone());
        }
        self.agg.extend(other.agg.iter().cloned());
    }

    /// Union with every absorbed raw origin noting one more transform.
    fn absorb_via(&mut self, other: &Taint, step: &str, pos: Pos) {
        for (cap, origin) in &other.raw {
            self.raw.entry(cap.clone()).or_insert_with(|| {
                let mut o = origin.clone();
                if o.via.len() < VIA_CAP {
                    o.via.push((step.to_string(), pos));
                }
                o
            });
        }
        self.agg.extend(other.agg.iter().cloned());
    }

    /// The taint after aggregation: everything raw becomes aggregate.
    fn aggregated(&self) -> Taint {
        let mut t = Taint { agg: self.agg.clone(), ..Taint::default() };
        t.agg.extend(self.raw.keys().cloned());
        t
    }
}

/// The abstract environment: name → taint of its current value.
/// Missing names are clean (or, in a function-body analysis, free
/// variables resolved at the call site).
pub type Env = BTreeMap<String, Taint>;

#[derive(Clone)]
enum Memo {
    Unvisited,
    /// On the summary stack — a hit means recursion.
    InProgress,
    Done(Taint),
}

/// State shared between the top-level analysis and every function
/// summary run (they must agree on call targets and memoized
/// summaries).
struct Shared<'a, 'r> {
    targets: HashMap<(u32, u32), CallTarget>,
    functions: &'r [FnDef<'a>],
    memo: RefCell<Vec<Memo>>,
}

/// The taint domain (forward).
pub(crate) struct TaintDomain<'a, 'r> {
    shared: Rc<Shared<'a, 'r>>,
    /// Fact at the entry block: empty at top level, parameter markers
    /// for a function-body summary run.
    boundary_env: Env,
    /// In summary runs, unresolved names become free-variable markers
    /// substituted with caller-side taints; at top level they are
    /// clean globals.
    free_markers: bool,
}

impl<'a, 'r> TaintDomain<'a, 'r> {
    fn top_level(res: &'r Resolution<'a>) -> Self {
        let targets = res.calls.iter().map(|c| ((c.pos.line, c.pos.col), c.target)).collect();
        TaintDomain {
            shared: Rc::new(Shared {
                targets,
                functions: &res.functions,
                memo: RefCell::new(vec![Memo::Unvisited; res.functions.len()]),
            }),
            boundary_env: Env::new(),
            free_markers: false,
        }
    }

    fn lookup(&self, name: &str, pos: Pos, env: &Env) -> Taint {
        match env.get(name) {
            Some(t) => t.clone(),
            None if self.free_markers => Taint::marker(format!("{FREE_MARK}{name}"), pos),
            None => Taint::default(),
        }
    }

    /// Abstractly evaluates `e`. The environment is mutable because
    /// `insert(t, v)` taints `t` in place wherever the call appears.
    pub fn eval(&mut self, e: &Expr, env: &mut Env) -> Taint {
        match e {
            Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..) => Taint::default(),
            Expr::Var(name, pos) => self.lookup(name, *pos, env),
            Expr::Unary { op, expr, .. } => {
                let t = self.eval(expr, env);
                match op {
                    // `#samples` is a count — aggregate information.
                    UnOp::Len => t.aggregated(),
                    UnOp::Neg | UnOp::Not => t,
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                let mut t = self.eval(lhs, env);
                let r = self.eval(rhs, env);
                t.absorb(&r);
                t
            }
            Expr::Index { table, key, .. } => {
                // An element of a raw reading table is still raw.
                let mut t = self.eval(table, env);
                let k = self.eval(key, env);
                t.absorb(&k);
                t
            }
            Expr::Table { array, hash, .. } => {
                let mut t = Taint::default();
                for a in array {
                    let e = self.eval(a, env);
                    t.absorb(&e);
                }
                for (k, v) in hash {
                    if let TableKey::Expr(ke) = k {
                        let e = self.eval(ke, env);
                        t.absorb(&e);
                    }
                    let e = self.eval(v, env);
                    t.absorb(&e);
                }
                t
            }
            // A function value carries code, not sensor data; the data
            // flow happens when it is called.
            Expr::Function { .. } => Taint::default(),
            Expr::Call { callee, args, pos } => self.eval_call(callee, args, *pos, env),
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], pos: Pos, env: &mut Env) -> Taint {
        let arg_taints: Vec<Taint> = args.iter().map(|a| self.eval(a, env)).collect();
        let name = match callee {
            Expr::Var(n, _) => Some(n.as_str()),
            _ => None,
        };
        let target = self.shared.targets.get(&(pos.line, pos.col)).copied();
        match target {
            Some(CallTarget::Capability) => {
                let mut t = Taint::default();
                for a in &arg_taints {
                    t.absorb(a);
                }
                if let Some(cap) = name {
                    if sensitivity(cap).is_some() {
                        t.absorb(&Taint::from_cap(cap, pos));
                    }
                }
                t
            }
            Some(CallTarget::Builtin) => {
                let n = name.unwrap_or_default();
                if AGGREGATORS.contains(&n) {
                    let mut t = Taint::default();
                    for a in &arg_taints {
                        t.absorb(a);
                    }
                    t.aggregated()
                } else if n == "insert" {
                    // insert(t, v): v's taint lands in the table.
                    if let (Some(Expr::Var(tname, tpos)), Some(vt)) =
                        (args.first(), arg_taints.get(1))
                    {
                        if !vt.is_clean() {
                            let mut cur = self.lookup(tname, *tpos, env);
                            cur.absorb(vt);
                            env.insert(tname.clone(), cur);
                        }
                    }
                    Taint::default()
                } else {
                    // Pass-through transform: tostring(gps) still
                    // leaks the position.
                    let mut t = Taint::default();
                    for a in &arg_taints {
                        t.absorb_via(a, n, pos);
                    }
                    t
                }
            }
            Some(CallTarget::Known(idx)) => {
                let summary = self.summary_of(idx);
                self.apply_summary(&summary, &arg_taints, name.unwrap_or("<fn>"), pos, env)
            }
            Some(CallTarget::Dynamic) | Some(CallTarget::Unknown) | None => {
                // A callee the analyzer cannot see through: assume the
                // arguments (and the callee value itself) flow to the
                // result raw.
                let mut t = self.eval(callee, env);
                for a in &arg_taints {
                    t.absorb_via(a, name.unwrap_or("<dynamic call>"), pos);
                }
                t
            }
        }
    }

    /// The memoized return-taint summary of script function `idx`,
    /// expressed over parameter and free-variable markers.
    fn summary_of(&self, idx: usize) -> Taint {
        match self.shared.memo.borrow()[idx].clone() {
            Memo::Done(t) => return t,
            Memo::InProgress => {
                // Recursion: conservatively pass every parameter
                // through raw.
                let f = &self.shared.functions[idx];
                let mut t = Taint::default();
                for i in 0..f.params.len() {
                    t.absorb(&Taint::marker(format!("{PARAM_MARK}{i}"), f.pos));
                }
                return t;
            }
            Memo::Unvisited => {}
        }
        self.shared.memo.borrow_mut()[idx] = Memo::InProgress;
        let f = &self.shared.functions[idx];
        let mut boundary = Env::new();
        for (i, p) in f.params.iter().enumerate() {
            boundary.insert(p.clone(), Taint::marker(format!("{PARAM_MARK}{i}"), f.pos));
        }
        let mut dom = TaintDomain {
            shared: Rc::clone(&self.shared),
            boundary_env: boundary,
            free_markers: true,
        };
        let (cfg, _) = Cfg::build(f.body, f.pos);
        let sol = solve(&cfg, &mut dom);
        let mut ret = Taint::default();
        inspect(&cfg, &mut dom, &sol, |d, stmt, env| {
            if let Stmt::Return(Some(e), _) = stmt {
                let mut env = env.clone();
                let t = d.eval(e, &mut env);
                ret.absorb(&t);
            }
        });
        self.shared.memo.borrow_mut()[idx] = Memo::Done(ret.clone());
        ret
    }

    /// Substitutes a summary's markers with call-site taints.
    fn apply_summary(
        &self,
        summary: &Taint,
        args: &[Taint],
        call_name: &str,
        pos: Pos,
        env: &Env,
    ) -> Taint {
        let resolve_marker = |cap: &str| -> Option<Taint> {
            if let Some(i) = cap.strip_prefix(PARAM_MARK).and_then(|s| s.parse::<usize>().ok()) {
                // Missing arguments are nil — clean.
                Some(args.get(i).cloned().unwrap_or_default())
            } else {
                cap.strip_prefix(FREE_MARK).map(|name| self.lookup(name, pos, env))
            }
        };
        let mut out = Taint::default();
        for (cap, origin) in &summary.raw {
            match resolve_marker(cap) {
                Some(t) => out.absorb_via(&t, call_name, pos),
                None => {
                    out.raw.entry(cap.clone()).or_insert_with(|| origin.clone());
                }
            }
        }
        for cap in &summary.agg {
            match resolve_marker(cap) {
                Some(t) => out.absorb(&t.aggregated()),
                None => {
                    out.agg.insert(cap.clone());
                }
            }
        }
        out
    }
}

impl Domain for TaintDomain<'_, '_> {
    type Fact = Env;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Env {
        self.boundary_env.clone()
    }

    fn join(&self, a: &Env, b: &Env) -> Env {
        let mut out = a.clone();
        for (k, v) in b {
            match out.get_mut(k) {
                Some(cur) => cur.absorb(v),
                None => {
                    out.insert(k.clone(), v.clone());
                }
            }
        }
        out
    }

    fn transfer(&mut self, stmt: &Stmt, env: &mut Env) {
        match stmt {
            Stmt::Local { name, init, .. } => {
                let t = match init {
                    Some(e) => self.eval(e, env),
                    None => Taint::default(),
                };
                env.insert(name.clone(), t);
            }
            Stmt::Assign { target, value, .. } => {
                let vt = self.eval(value, env);
                match target {
                    Target::Name(name) => {
                        env.insert(name.clone(), vt);
                    }
                    Target::Index { table, key } => {
                        let _ = self.eval(key, env);
                        let _ = self.eval(table, env);
                        // Weak update on the table's root variable:
                        // `t[k] = gps` taints `t`.
                        if !vt.is_clean() {
                            if let Some((root, rpos)) = root_var(table) {
                                let mut cur = self.lookup(root, rpos, env);
                                cur.absorb(&vt);
                                env.insert(root.to_string(), cur);
                            }
                        }
                    }
                }
            }
            Stmt::ExprStmt(e) => {
                let _ = self.eval(e, env);
            }
            Stmt::If { arms, .. } => {
                for (cond, _) in arms {
                    let _ = self.eval(cond, env);
                }
            }
            Stmt::While { cond, .. } => {
                let _ = self.eval(cond, env);
            }
            Stmt::NumericFor { var, start, stop, step, .. } => {
                let mut t = self.eval(start, env);
                let s = self.eval(stop, env);
                t.absorb(&s);
                if let Some(e) = step {
                    let s = self.eval(e, env);
                    t.absorb(&s);
                }
                env.insert(var.clone(), t);
            }
            Stmt::GenericFor { key_var, value_var, iterable, .. } => {
                let t = self.eval(iterable, env);
                env.insert(key_var.clone(), t.clone());
                if let Some(v) = value_var {
                    env.insert(v.clone(), t);
                }
            }
            Stmt::LocalFunction { name, .. } => {
                env.insert(name.clone(), Taint::default());
            }
            Stmt::Break(_) => {}
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    let _ = self.eval(e, env);
                }
            }
        }
    }
}

/// The root variable of a (possibly nested) index target.
fn root_var(table: &Expr) -> Option<(&str, Pos)> {
    match table {
        Expr::Var(name, pos) => Some((name, *pos)),
        Expr::Index { table, .. } => root_var(table),
        _ => None,
    }
}

/// Analyzes the script's return sinks and reports **E004** (raw
/// high-sensitivity result) and **W501** (raw medium-sensitivity
/// result) with the read position and flow trace.
pub(crate) fn check(
    top: &Block,
    res: &Resolution<'_>,
    caps: &CapabilitySet,
    diags: &mut Vec<Diagnostic>,
) {
    let mut dom = TaintDomain::top_level(res);
    let (cfg, _) = Cfg::build(top, Pos { line: 1, col: 1 });
    let sol = solve(&cfg, &mut dom);
    inspect(&cfg, &mut dom, &sol, |d, stmt, env| {
        let Stmt::Return(Some(e), ret_pos) = stmt else { return };
        let mut env = env.clone();
        let taint = d.eval(e, &mut env);
        for (cap, origin) in &taint.raw {
            if !caps.contains(cap) {
                continue; // markers and undeclared capabilities
            }
            let (code, grade) = match sensitivity(cap) {
                Some(Sensitivity::High) => (DiagnosticCode::TaintedReturn, "high"),
                Some(Sensitivity::Medium) => (DiagnosticCode::RawMediumReturn, "medium"),
                _ => continue,
            };
            let mut msg = format!(
                "the task result may carry raw `{cap}` data ({grade} sensitivity) \
                 read at {}",
                origin.pos
            );
            for (step, pos) in &origin.via {
                msg.push_str(&format!(", flowing through `{step}` at {pos}"));
            }
            msg.push_str(
                "; aggregate it (mean, stddev, sum, min, max, histogram, or #) \
                 before returning",
            );
            diags.push(Diagnostic::new(code, *ret_pos, msg));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::resolve;
    use crate::parser::parse;

    fn taint_codes(src: &str) -> Vec<&'static str> {
        let block = parse(src).expect("parses");
        let caps = CapabilitySet::standard_sensing();
        let res = resolve::resolve(&block, &caps);
        let mut diags = Vec::new();
        check(&block, &res, &caps, &mut diags);
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    fn taint_msgs(src: &str) -> Vec<String> {
        let block = parse(src).expect("parses");
        let caps = CapabilitySet::standard_sensing();
        let res = resolve::resolve(&block, &caps);
        let mut diags = Vec::new();
        check(&block, &res, &caps, &mut diags);
        diags.iter().map(|d| d.message.clone()).collect()
    }

    #[test]
    fn raw_high_sensitivity_return_is_e004() {
        assert_eq!(taint_codes("return get_gps_readings(3)"), vec!["E004"]);
        assert_eq!(taint_codes("return get_location()"), vec!["E004"]);
        assert_eq!(taint_codes("return get_noise_readings(5)"), vec!["E004"]);
    }

    #[test]
    fn aggregated_high_sensitivity_return_is_clean() {
        assert!(taint_codes("return mean(get_gps_readings(3))").is_empty());
        assert!(taint_codes("return histogram(get_noise_readings(10), 4)").is_empty());
        assert!(taint_codes("local g = get_gps_readings(1)\nreturn #g").is_empty());
    }

    #[test]
    fn raw_medium_sensitivity_return_is_w501() {
        assert_eq!(taint_codes("return get_accel_readings(5)"), vec!["W501"]);
    }

    #[test]
    fn raw_low_sensitivity_return_is_clean() {
        assert!(taint_codes("return get_light_readings(5)").is_empty());
        assert!(taint_codes("return get_temperature_readings(5)").is_empty());
    }

    #[test]
    fn taint_flows_through_locals_and_indexing() {
        assert_eq!(taint_codes("local g = get_location()\nreturn g"), vec!["E004"]);
        assert_eq!(taint_codes("local g = get_gps_readings(2)\nreturn g[1]"), vec!["E004"]);
    }

    #[test]
    fn transform_chain_appears_in_message() {
        let msgs = taint_msgs("local g = get_gps_readings(2)\nreturn tostring(g)");
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("get_gps_readings"), "{}", msgs[0]);
        assert!(msgs[0].contains("read at 1:27"), "{}", msgs[0]);
        assert!(msgs[0].contains("`tostring`"), "{}", msgs[0]);
    }

    #[test]
    fn taint_flows_through_function_summaries() {
        let src = "local function id(x) return x end\nreturn id(get_gps_readings(1))";
        assert_eq!(taint_codes(src), vec!["E004"]);
        let agg = "local function m(x) return mean(x) end\nreturn m(get_gps_readings(1))";
        assert!(taint_codes(agg).is_empty());
    }

    #[test]
    fn closures_capture_caller_taint() {
        let src = "local g = get_gps_readings(1)\nlocal function f() return g end\nreturn f()";
        assert_eq!(taint_codes(src), vec!["E004"]);
    }

    #[test]
    fn recursion_passes_arguments_through() {
        let src = "local function f(n)\nif n > 0 then return f(n - 1) end\nreturn get_gps_readings(1)\nend\nreturn f(2)";
        assert_eq!(taint_codes(src), vec!["E004"]);
    }

    #[test]
    fn insert_taints_the_table() {
        let src = "local t = {}\ninsert(t, get_location())\nreturn t";
        assert_eq!(taint_codes(src), vec!["E004"]);
    }

    #[test]
    fn index_assignment_taints_the_table() {
        let src = "local t = {}\nt[1] = get_gps_readings(1)\nreturn t";
        assert_eq!(taint_codes(src), vec!["E004"]);
    }

    #[test]
    fn overwrite_clears_taint() {
        assert!(taint_codes("local x = get_gps_readings(1)\nx = 0\nreturn x").is_empty());
    }

    #[test]
    fn may_flow_through_one_branch_is_reported() {
        let src = "local x = 0\nif clock() > 0 then x = get_gps_readings(1) end\nreturn x";
        assert_eq!(taint_codes(src), vec!["E004"]);
    }

    #[test]
    fn aggregate_of_medium_is_clean() {
        assert!(taint_codes("return stddev(get_accel_readings(20))").is_empty());
    }
}
