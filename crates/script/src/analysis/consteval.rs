//! Literal constant evaluation shared by the analysis passes.
//!
//! These helpers answer "what does this expression evaluate to, if it
//! is built only from literals?" — enough for real loop headers and
//! branch conditions. Anything involving a variable, call, table, or
//! operator outside the supported set answers `None`, and callers must
//! stay conservative.

use crate::ast::{BinOp, Expr, UnOp};

/// Constant-folds simple numeric expressions (literals, negation, and
/// arithmetic on constants).
pub(crate) fn const_number(e: &Expr) -> Option<f64> {
    match e {
        Expr::Number(n, _) => Some(*n),
        Expr::Unary { op: UnOp::Neg, expr, .. } => const_number(expr).map(|n| -n),
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = const_number(lhs)?;
            let b = const_number(rhs)?;
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div => Some(a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Constant truthiness of literal conditions (`nil` and `false` are
/// falsy, every other literal is truthy — the interpreter's rule).
/// Numeric comparisons between constant operands are decided with the
/// interpreter's semantics (NaN compares false on every operator).
pub(crate) fn const_truthy(e: &Expr) -> Option<bool> {
    match e {
        Expr::Nil(_) => Some(false),
        Expr::Bool(b, _) => Some(*b),
        Expr::Number(..) | Expr::Str(..) => Some(true),
        Expr::Unary { op: UnOp::Not, expr, .. } => const_truthy(expr).map(|b| !b),
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = const_number(lhs)?;
            let b = const_number(rhs)?;
            match op {
                BinOp::Lt => Some(a < b),
                BinOp::Le => Some(a <= b),
                BinOp::Gt => Some(a > b),
                BinOp::Ge => Some(a >= b),
                BinOp::Eq => Some(a == b),
                BinOp::Ne => Some(a != b),
                _ => None,
            }
        }
        _ => None,
    }
}
