//! `sorlint` — the SenseScript linter.
//!
//! Runs the [`sor_script::analysis`] static analyzer over script
//! files (or stdin) and prints position-annotated findings in the
//! classic compiler format:
//!
//! ```text
//! task.lua:3:7: error[E003]: call to non-whitelisted function `steal_contacts` …
//! ```
//!
//! Exit status: `0` when no finding reaches the failing severity,
//! `1` when one does (errors by default, warnings too with
//! `--deny-warnings`), `2` on usage or I/O problems.

use std::io::Read;
use std::process::ExitCode;

use sor_script::analysis::{analyze_with_budget, AnalysisReport, CapabilitySet, Severity};
use sor_script::interp::DEFAULT_BUDGET;

const USAGE: &str = "\
usage: sorlint [options] [file ...]

Statically verifies SenseScript files. With no files (or `-`), reads
from stdin. Findings print as `file:line:col: severity[CODE]: message`.

options:
  --caps NAME[,NAME...]   declare extra host-function capabilities
  --no-default-caps       start from an empty capability set instead of
                          the standard sensing vocabulary
  --budget N              instruction budget to prove the cost bound
                          against (default 1000000)
  --deny-warnings         exit 1 on warnings, not just errors
  --quiet                 print nothing, only set the exit status
  --help                  show this help";

struct Options {
    files: Vec<String>,
    caps: CapabilitySet,
    budget: u64,
    deny_warnings: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        files: Vec::new(),
        caps: CapabilitySet::standard_sensing(),
        budget: DEFAULT_BUDGET,
        deny_warnings: false,
        quiet: false,
    };
    let mut extra_caps: Vec<String> = Vec::new();
    let mut no_default = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--no-default-caps" => no_default = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--caps" => {
                let v = it.next().ok_or("--caps needs a comma-separated name list")?;
                extra_caps.extend(v.split(',').map(str::trim).map(String::from));
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a number")?;
                opts.budget = v.parse().map_err(|_| format!("invalid budget `{v}`"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if no_default {
        opts.caps = CapabilitySet::new();
    }
    for c in extra_caps {
        if !c.is_empty() {
            opts.caps.insert(c);
        }
    }
    Ok(Some(opts))
}

fn lint_source(name: &str, src: &str, opts: &Options) -> (AnalysisReport, bool) {
    let report = analyze_with_budget(src, &opts.caps, opts.budget);
    let fail_at = if opts.deny_warnings { Severity::Warning } else { Severity::Error };
    let failed = report.diagnostics.iter().any(|d| d.severity >= fail_at);
    if !opts.quiet {
        print!("{}", report.render(name));
    }
    (report, failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("sorlint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut any_failed = false;
    let mut findings = 0usize;
    let stdin_only = opts.files.is_empty() || opts.files == ["-"];
    let inputs: Vec<String> = if stdin_only { vec!["-".to_string()] } else { opts.files.clone() };
    for file in &inputs {
        let (name, src) = if file == "-" {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("sorlint: reading stdin: {e}");
                return ExitCode::from(2);
            }
            ("<stdin>".to_string(), buf)
        } else {
            match std::fs::read_to_string(file) {
                Ok(src) => (file.clone(), src),
                Err(e) => {
                    eprintln!("sorlint: {file}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        let (report, failed) = lint_source(&name, &src, &opts);
        findings += report.diagnostics.len();
        any_failed |= failed;
    }
    if !opts.quiet && findings == 0 {
        eprintln!("sorlint: {} input(s) clean", inputs.len());
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
