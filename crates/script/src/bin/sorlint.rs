//! `sorlint` — the SenseScript linter.
//!
//! Runs the [`sor_script::analysis`] static analyzer over script
//! files (or stdin) and prints position-annotated findings in the
//! classic compiler format:
//!
//! ```text
//! task.lua:3:7: error[E003]: call to non-whitelisted function `steal_contacts` …
//! ```
//!
//! With `--json`, findings are emitted as one machine-readable JSON
//! document on stdout instead (an array of per-file objects), for CI
//! gates and editor integrations.
//!
//! Exit status: `0` when no finding reaches the failing severity,
//! `1` when one does (errors by default, warnings too with
//! `--deny-warnings`), `2` on usage or I/O problems.

use std::io::Read;
use std::process::ExitCode;

use sor_script::analysis::{analyze_with_budget, AnalysisReport, CapabilitySet, Severity};
use sor_script::interp::DEFAULT_BUDGET;

const USAGE: &str = "\
usage: sorlint [options] [file ...]

Statically verifies SenseScript files. With no files (or `-`), reads
from stdin. Findings print as `file:line:col: severity[CODE]: message`.

options:
  --caps NAME[,NAME...]   declare extra host-function capabilities
  --no-default-caps       start from an empty capability set instead of
                          the standard sensing vocabulary
  --budget N              instruction budget to prove the cost bound
                          against (default 1000000)
  --deny-warnings         exit 1 on warnings, not just errors
  --json                  emit a JSON array of per-file reports on
                          stdout instead of the compiler format; each
                          entry has `file`, `cost_bound` (number or
                          null when unbounded), and `diagnostics`
                          ({code, severity, line, col, message})
  --quiet                 print nothing, only set the exit status
  --help                  show this help

exit status:
  0  no finding at or above the failing severity (errors by default,
     warnings too with --deny-warnings)
  1  at least one finding at the failing severity
  2  usage error, unreadable file, or stdin I/O failure";

struct Options {
    files: Vec<String>,
    caps: CapabilitySet,
    budget: u64,
    deny_warnings: bool,
    quiet: bool,
    json: bool,
}

/// Escapes a string for inclusion in a JSON string literal. The
/// analyzer has no serde dependency, so the linter rolls the (small)
/// amount of JSON it needs by hand.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One file's report as a JSON object.
fn json_report(name: &str, report: &AnalysisReport) -> String {
    let cost = match report.cost {
        sor_script::analysis::Cost::Bounded(n) => n.to_string(),
        sor_script::analysis::Cost::Unbounded => "null".to_string(),
    };
    let diags: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| {
            format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                d.code.as_str(),
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                },
                d.pos.line,
                d.pos.col,
                json_escape(&d.message),
            )
        })
        .collect();
    format!(
        "{{\"file\":\"{}\",\"cost_bound\":{},\"diagnostics\":[{}]}}",
        json_escape(name),
        cost,
        diags.join(",")
    )
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        files: Vec::new(),
        caps: CapabilitySet::standard_sensing(),
        budget: DEFAULT_BUDGET,
        deny_warnings: false,
        quiet: false,
        json: false,
    };
    let mut extra_caps: Vec<String> = Vec::new();
    let mut no_default = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--no-default-caps" => no_default = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--json" => opts.json = true,
            "--caps" => {
                let v = it.next().ok_or("--caps needs a comma-separated name list")?;
                extra_caps.extend(v.split(',').map(str::trim).map(String::from));
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a number")?;
                opts.budget = v.parse().map_err(|_| format!("invalid budget `{v}`"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if no_default {
        opts.caps = CapabilitySet::new();
    }
    for c in extra_caps {
        if !c.is_empty() {
            opts.caps.insert(c);
        }
    }
    Ok(Some(opts))
}

fn lint_source(name: &str, src: &str, opts: &Options) -> (AnalysisReport, bool) {
    let report = analyze_with_budget(src, &opts.caps, opts.budget);
    let fail_at = if opts.deny_warnings { Severity::Warning } else { Severity::Error };
    let failed = report.diagnostics.iter().any(|d| d.severity >= fail_at);
    if !opts.quiet && !opts.json {
        print!("{}", report.render(name));
    }
    (report, failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("sorlint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut any_failed = false;
    let mut findings = 0usize;
    let mut json_entries: Vec<String> = Vec::new();
    let stdin_only = opts.files.is_empty() || opts.files == ["-"];
    let inputs: Vec<String> = if stdin_only { vec!["-".to_string()] } else { opts.files.clone() };
    for file in &inputs {
        let (name, src) = if file == "-" {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("sorlint: reading stdin: {e}");
                return ExitCode::from(2);
            }
            ("<stdin>".to_string(), buf)
        } else {
            match std::fs::read_to_string(file) {
                Ok(src) => (file.clone(), src),
                Err(e) => {
                    eprintln!("sorlint: {file}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        let (report, failed) = lint_source(&name, &src, &opts);
        if opts.json {
            json_entries.push(json_report(&name, &report));
        }
        findings += report.diagnostics.len();
        any_failed |= failed;
    }
    if opts.json && !opts.quiet {
        println!("[{}]", json_entries.join(","));
    }
    if !opts.quiet && !opts.json && findings == 0 {
        eprintln!("sorlint: {} input(s) clean", inputs.len());
    }
    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
