//! `optdiff` — three-way differential tester for the SenseScript
//! execution engines.
//!
//! For every corpus script, runs four configurations against the same
//! deterministic fake sensor host, across several seeds: the
//! tree-walker on the raw AST, the tree-walker on the
//! [`sor_script::optimize`] lowering, and the bytecode [`sor_script::Vm`]
//! on each of the two programs. Asserts:
//!
//! 1. **Optimizer equivalence** — raw and optimized runs produce the
//!    same value (structurally compared; `NaN` counts as equal to
//!    itself) or fail with the same error variant; the optimized run
//!    never costs more instructions. The one permitted asymmetry: the
//!    original may exhaust the instruction budget where the cheaper
//!    optimized form finishes.
//! 2. **VM equivalence** — for the *same* program, the VM must match
//!    the tree-walker exactly: same value or error kind, same `print`
//!    output, *equal* instruction counts on success, and never more
//!    instructions on errors. No asymmetry is permitted — the VM runs
//!    the identical program.
//!
//! Exit status: `0` all scripts agree, `1` a divergence was found,
//! `2` usage or I/O problems.

use std::cell::Cell;
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::Arc;

use sor_script::ast::Block;
use sor_script::optimize::optimize;
use sor_script::parser::parse;
use sor_script::{compile, HostRegistry, Interpreter, ScriptError, Value, Vm};

const USAGE: &str = "\
usage: optdiff [options] [path ...]

Differentially tests the execution engines: every `.ss` script found
under the given files/directories (default: tests/lint_corpus) runs
through the tree-walker (raw and optimized AST) and the bytecode VM
(both programs) against the same deterministic fake sensors, across
seeds. Divergent values, divergent errors, an optimized run that costs
more instructions than the original, or a VM run that disagrees with
the tree-walker on the same program are failures.

options:
  --seeds N    number of host seeds to test each script under (default 3)
  --budget N   instruction budget for both runs (default 1000000)
  --verbose    print one line per script/seed, not just failures
  --help       show this help

exit status: 0 all equivalent, 1 divergence found, 2 usage/IO error";

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [lo, hi) with 3 decimal digits, sensor-reading style.
    fn reading(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        ((lo + u * (hi - lo)) * 1000.0).round() / 1000.0
    }
}

fn name_hash(name: &str) -> u64 {
    // FNV-1a, fixed so a capability's stream only depends on (name, seed).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A host registry serving every standard sensing capability with
/// deterministic pseudo-readings. A fresh registry (same seed) replays
/// the exact same stream, so optimized and unoptimized runs see
/// identical sensor data call-for-call.
fn fake_sensing_host(seed: u64) -> HostRegistry {
    let mut host = HostRegistry::new();
    const RANGES: &[(&str, f64, f64)] = &[
        ("get_temperature_readings", 15.0, 30.0),
        ("get_humidity_readings", 20.0, 90.0),
        ("get_light_readings", 0.0, 1000.0),
        ("get_noise_readings", 30.0, 100.0),
        ("get_wifi_readings", -90.0, -30.0),
        ("get_pressure_readings", 980.0, 1040.0),
        ("get_accel_readings", -2.0, 2.0),
        ("get_gps_readings", -180.0, 180.0),
        ("get_compass_readings", 0.0, 360.0),
    ];
    for &(name, lo, hi) in RANGES {
        let calls = Rc::new(Cell::new(0u64));
        host.register(name, move |ctx, args| {
            let n = args
                .first()
                .and_then(Value::as_number)
                .map(|v| v.clamp(1.0, 4096.0) as usize)
                .unwrap_or(1);
            let call = calls.get();
            calls.set(call + 1);
            let mut rng = Rng::new(seed ^ name_hash(name) ^ call.wrapping_mul(0x9e37_79b9));
            let vals: Vec<f64> = (0..n).map(|_| rng.reading(lo, hi)).collect();
            ctx.virtual_time += n as f64 * 0.1;
            Ok(Value::number_array(&vals))
        });
    }
    let calls = Rc::new(Cell::new(0u64));
    host.register("get_location", move |ctx, _args| {
        let call = calls.get();
        calls.set(call + 1);
        let mut rng = Rng::new(seed ^ name_hash("get_location") ^ call.wrapping_mul(0x9e37_79b9));
        ctx.virtual_time += 1.0;
        Ok(Value::number_array(&[rng.reading(-90.0, 90.0), rng.reading(-180.0, 180.0)]))
    });
    host
}

/// Structural value equality: tables by contents (the interpreter's
/// own `PartialEq` compares them by identity), NaN equal to NaN so a
/// deterministic NaN result counts as reproduced.
fn structurally_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => x == y || (x.is_nan() && y.is_nan()),
        (Value::Table(x), Value::Table(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.array.len() == y.array.len()
                && x.hash.len() == y.hash.len()
                && x.array.iter().zip(y.array.iter()).all(|(a, b)| structurally_eq(a, b))
                && x.hash.iter().all(|(k, v)| y.hash.get(k).is_some_and(|w| structurally_eq(v, w)))
        }
        // Closures have no meaningful cross-run identity; a script that
        // returns a function is equivalent if both runs return one —
        // whether tree-walked or compiled.
        (Value::Function(_) | Value::Compiled(_), Value::Function(_) | Value::Compiled(_)) => true,
        _ => a == b,
    }
}

fn error_kind(e: &ScriptError) -> &'static str {
    match e {
        ScriptError::UnexpectedChar { .. } => "UnexpectedChar",
        ScriptError::UnterminatedString { .. } => "UnterminatedString",
        ScriptError::BadNumber { .. } => "BadNumber",
        ScriptError::UnexpectedToken { .. } => "UnexpectedToken",
        ScriptError::TypeError { .. } => "TypeError",
        ScriptError::UndefinedVariable { .. } => "UndefinedVariable",
        ScriptError::ForbiddenFunction { .. } => "ForbiddenFunction",
        ScriptError::BudgetExhausted { .. } => "BudgetExhausted",
        ScriptError::CallDepthExceeded { .. } => "CallDepthExceeded",
        ScriptError::HostError { .. } => "HostError",
        ScriptError::Explicit { .. } => "Explicit",
        ScriptError::BadArguments { .. } => "BadArguments",
    }
}

struct RunResult {
    outcome: Result<Value, ScriptError>,
    instructions: u64,
    output: Vec<String>,
}

fn run(block: &Block, seed: u64, budget: u64) -> RunResult {
    let mut interp = Interpreter::with_host(fake_sensing_host(seed));
    interp.set_budget(budget);
    let outcome = interp.run_block(block);
    RunResult {
        outcome,
        instructions: interp.instructions_used(),
        output: interp.output().to_vec(),
    }
}

fn run_vm(module: &Arc<sor_script::CompiledModule>, seed: u64, budget: u64) -> RunResult {
    let mut vm = Vm::with_host(fake_sensing_host(seed));
    vm.set_budget(budget);
    let outcome = vm.run_module(module);
    RunResult { outcome, instructions: vm.instructions_used(), output: vm.output().to_vec() }
}

/// Checks the VM against the tree-walker on the *same* program: exact
/// agreement required — equal values or error kinds, equal `print`
/// output, equal instruction counts on success (never more on errors).
fn diff_vm(tree: &RunResult, vm: &RunResult) -> Result<(), String> {
    if vm.output != tree.output {
        return Err(format!("vm print output diverges: {:?} vs {:?}", tree.output, vm.output));
    }
    match (&tree.outcome, &vm.outcome) {
        (Ok(a), Ok(b)) => {
            if !structurally_eq(a, b) {
                return Err(format!("vm value diverges: {} vs {}", a.display(), b.display()));
            }
            if vm.instructions != tree.instructions {
                return Err(format!(
                    "vm instruction count diverges: {} vs {}",
                    tree.instructions, vm.instructions
                ));
            }
            Ok(())
        }
        (Err(a), Err(b)) => {
            if error_kind(a) != error_kind(b) {
                return Err(format!(
                    "vm error kind diverges: {} vs {}",
                    error_kind(a),
                    error_kind(b)
                ));
            }
            if vm.instructions > tree.instructions {
                return Err(format!(
                    "vm overcharged on error: {} > {} instructions",
                    vm.instructions, tree.instructions
                ));
            }
            Ok(())
        }
        (a, b) => Err(format!(
            "vm outcome diverges: {} vs {}",
            a.as_ref().map(|v| v.display()).unwrap_or_else(|e| format!("error[{}]", error_kind(e))),
            b.as_ref().map(|v| v.display()).unwrap_or_else(|e| format!("error[{}]", error_kind(e))),
        )),
    }
}

/// Checks one script under one seed. Returns a description of the
/// divergence, if any.
fn diff_one(block: &Block, opt: &Block, seed: u64, budget: u64) -> Result<(u64, u64), String> {
    let base = run(block, seed, budget);
    let fast = run(opt, seed, budget);
    if fast.instructions > base.instructions {
        return Err(format!(
            "optimized run cost more: {} > {} instructions",
            fast.instructions, base.instructions
        ));
    }
    match (&base.outcome, &fast.outcome) {
        (Ok(a), Ok(b)) if structurally_eq(a, b) => Ok((base.instructions, fast.instructions)),
        (Ok(a), Ok(b)) => Err(format!("values diverge: {} vs {}", a.display(), b.display())),
        (Err(a), Err(b)) if error_kind(a) == error_kind(b) => {
            Ok((base.instructions, fast.instructions))
        }
        // The optimized form is allowed to finish where the original
        // ran out of budget — never the reverse.
        (Err(ScriptError::BudgetExhausted { .. }), Ok(_)) => {
            Ok((base.instructions, fast.instructions))
        }
        (a, b) => Err(format!(
            "outcomes diverge: {} vs {}",
            a.as_ref().map(|v| v.display()).unwrap_or_else(|e| format!("error[{}]", error_kind(e))),
            b.as_ref().map(|v| v.display()).unwrap_or_else(|e| format!("error[{}]", error_kind(e))),
        )),
    }
}

fn collect_scripts(paths: &[String], out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    for p in paths {
        let path = std::path::Path::new(p);
        let meta = std::fs::metadata(path).map_err(|e| format!("{p}: {e}"))?;
        if meta.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(path)
                .map_err(|e| format!("{p}: {e}"))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "ss"))
                .collect();
            entries.sort();
            out.extend(entries);
        } else {
            out.push(path.to_path_buf());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut seeds = 3u64;
    let mut budget = 1_000_000u64;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--verbose" | "-v" => verbose = true,
            "--seeds" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => seeds = n,
                _ => {
                    eprintln!("optdiff: --seeds needs a positive number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--budget" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) => budget = n,
                _ => {
                    eprintln!("optdiff: --budget needs a number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("optdiff: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            p => paths.push(p.to_string()),
        }
    }
    if paths.is_empty() {
        paths.push("tests/lint_corpus".to_string());
    }

    let mut scripts = Vec::new();
    if let Err(e) = collect_scripts(&paths, &mut scripts) {
        eprintln!("optdiff: {e}");
        return ExitCode::from(2);
    }
    if scripts.is_empty() {
        eprintln!("optdiff: no .ss scripts found under {paths:?}");
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    let mut checked = 0usize;
    let mut vm_checked = 0usize;
    let mut saved_total: u64 = 0;
    let mut base_total: u64 = 0;
    for path in &scripts {
        let name = path.display();
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("optdiff: {name}: {e}");
                return ExitCode::from(2);
            }
        };
        // Unparseable corpus entries exercise the linter, not the
        // optimizer; both sides would fail identically at parse time.
        let Ok(block) = parse(&src) else {
            if verbose {
                println!("optdiff: {name}: skipped (parse error)");
            }
            continue;
        };
        let (opt, stats) = optimize(&block);
        let raw_module = Arc::new(compile(&block));
        let opt_module = Arc::new(compile(&opt));
        for seed in 1..=seeds {
            checked += 1;
            match diff_one(&block, &opt, seed, budget) {
                Ok((base, fast)) => {
                    base_total += base;
                    saved_total += base - fast;
                    if verbose {
                        println!(
                            "optdiff: {name} seed {seed}: ok ({base} -> {fast} instructions, {} rewrites)",
                            stats.total()
                        );
                    }
                }
                Err(msg) => {
                    failures += 1;
                    eprintln!("optdiff: FAIL {name} seed {seed}: {msg}");
                }
            }
            // Three-way: the VM must agree with the tree-walker on the
            // raw program and on the optimized program.
            for (label, program, module) in
                [("vm/raw", &block, &raw_module), ("vm/opt", &opt, &opt_module)]
            {
                vm_checked += 1;
                let tree = run(program, seed, budget);
                let vm = run_vm(module, seed, budget);
                match diff_vm(&tree, &vm) {
                    Ok(()) => {
                        if verbose {
                            println!(
                                "optdiff: {name} seed {seed} {label}: ok ({} instructions)",
                                vm.instructions
                            );
                        }
                    }
                    Err(msg) => {
                        failures += 1;
                        eprintln!("optdiff: FAIL {name} seed {seed} {label}: {msg}");
                    }
                }
            }
        }
    }

    let pct = (saved_total * 100).checked_div(base_total).unwrap_or(0);
    println!(
        "optdiff: {checked} run(s) over {} script(s), {failures} divergence(s); \
         optimizer saved {saved_total} of {base_total} instructions ({pct}%)",
        scripts.len()
    );
    println!("optdiff: vm cross-checked on {vm_checked} run(s) (raw + optimized programs)");
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
