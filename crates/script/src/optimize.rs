//! Optimizing AST-to-AST lowering for SenseScript.
//!
//! [`optimize`] rewrites a parsed block into an equivalent block that
//! the interpreter executes with the **same observable behaviour** in
//! **at most as many instructions**. Three rewrites are applied:
//!
//! 1. **Constant folding** — arithmetic, concatenation, comparisons,
//!    `not`/negation, and short-circuit `and`/`or` over literals are
//!    evaluated at lowering time using exactly the interpreter's value
//!    semantics (Lua floored modulo, NaN comparisons are false, integer
//!    display rules for concatenation).
//! 2. **Dead-branch pruning** — `if` arms with a constant-false
//!    condition are dropped; a constant-true condition drops every
//!    later arm and the `else`. A surviving bare `else` is kept as
//!    `if true then ... end` so its body stays in its own scope. A
//!    `while false` loop is deleted; `while true` is always kept (the
//!    budget, not the optimizer, decides its fate).
//! 3. **Dead-store elimination** — `local x` / `local x = <literal>`
//!    is removed only when `x` appears *nowhere else in the whole
//!    script* (no read, no write, no shadow, no capture). Anything
//!    weaker could silently retarget a later assignment to a global.
//!
//! Every rewrite either deletes work or replaces a subtree with a
//! single literal (one charge), so the instruction count of the
//! optimized script is bounded by the original's — a property the
//! `optdiff` harness re-checks empirically over the whole corpus.

use std::collections::HashMap;

use crate::ast::{BinOp, Block, Expr, Stmt, TableKey, Target, UnOp};
use crate::value::Value;
use crate::Pos;

/// Counters describing what [`optimize`] changed; fed to sor-obs by the
/// frontend so optimizer savings are visible in metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Expressions replaced by a literal (or a short-circuit operand).
    pub folded_exprs: usize,
    /// `if` arms, `else` blocks, and `while false` loops pruned.
    pub pruned_branches: usize,
    /// Whole statements deleted (dead locals, emptied `if`s).
    pub removed_stmts: usize,
}

impl OptStats {
    /// True when the optimizer rewrote anything at all.
    pub fn changed(&self) -> bool {
        self.folded_exprs + self.pruned_branches + self.removed_stmts > 0
    }

    /// Total number of individual rewrites applied.
    pub fn total(&self) -> usize {
        self.folded_exprs + self.pruned_branches + self.removed_stmts
    }
}

/// Lowers a block to an equivalent, never-more-expensive block.
pub fn optimize(block: &Block) -> (Block, OptStats) {
    let mut stats = OptStats::default();
    let folded = fold_block(block, &mut stats);
    let mut counts = HashMap::new();
    count_names_block(&folded, &mut counts);
    let lowered = eliminate_dead_locals(folded, &counts, &mut stats);
    (lowered, stats)
}

// ---------------------------------------------------------------------------
// Constant folding + branch pruning
// ---------------------------------------------------------------------------

/// Truthiness of an *atomic* literal, mirroring `Value::truthy`.
/// Table and function literals are not atomic (constructors evaluate
/// their element expressions), so they return `None`.
fn literal_truthy(e: &Expr) -> Option<bool> {
    match e {
        Expr::Nil(_) | Expr::Bool(false, _) => Some(false),
        Expr::Bool(true, _) | Expr::Number(..) | Expr::Str(..) => Some(true),
        _ => None,
    }
}

fn is_atomic_literal(e: &Expr) -> bool {
    matches!(e, Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..))
}

/// Converts an atomic literal to the interpreter value it evaluates to.
fn literal_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Nil(_) => Some(Value::Nil),
        Expr::Bool(b, _) => Some(Value::Bool(*b)),
        Expr::Number(n, _) => Some(Value::Number(*n)),
        Expr::Str(s, _) => Some(Value::str(s)),
        _ => None,
    }
}

fn fold_block(block: &Block, stats: &mut OptStats) -> Block {
    let mut out = Vec::with_capacity(block.len());
    for stmt in block {
        fold_stmt(stmt, stats, &mut out);
    }
    out
}

fn fold_stmt(stmt: &Stmt, stats: &mut OptStats, out: &mut Block) {
    match stmt {
        Stmt::Local { name, init, pos } => out.push(Stmt::Local {
            name: name.clone(),
            init: init.as_ref().map(|e| fold_expr(e, stats)),
            pos: *pos,
        }),
        Stmt::Assign { target, value, pos } => {
            let target = match target {
                Target::Name(n) => Target::Name(n.clone()),
                Target::Index { table, key } => {
                    Target::Index { table: fold_expr(table, stats), key: fold_expr(key, stats) }
                }
            };
            out.push(Stmt::Assign { target, value: fold_expr(value, stats), pos: *pos });
        }
        Stmt::ExprStmt(e) => out.push(Stmt::ExprStmt(fold_expr(e, stats))),
        Stmt::If { arms, otherwise } => fold_if(arms, otherwise.as_ref(), stats, out),
        Stmt::While { cond, body } => {
            let cond = fold_expr(cond, stats);
            if literal_truthy(&cond) == Some(false) {
                // The loop can never run and its condition is a pure
                // literal; the whole statement is dead.
                stats.pruned_branches += 1;
                return;
            }
            out.push(Stmt::While { cond, body: fold_block(body, stats) });
        }
        Stmt::NumericFor { var, start, stop, step, body } => out.push(Stmt::NumericFor {
            var: var.clone(),
            start: fold_expr(start, stats),
            stop: fold_expr(stop, stats),
            step: step.as_ref().map(|e| fold_expr(e, stats)),
            body: fold_block(body, stats),
        }),
        Stmt::GenericFor { key_var, value_var, iterable, body } => out.push(Stmt::GenericFor {
            key_var: key_var.clone(),
            value_var: value_var.clone(),
            iterable: fold_expr(iterable, stats),
            body: fold_block(body, stats),
        }),
        Stmt::LocalFunction { name, params, body, pos } => out.push(Stmt::LocalFunction {
            name: name.clone(),
            params: params.clone(),
            body: fold_block(body, stats),
            pos: *pos,
        }),
        Stmt::Break(p) => out.push(Stmt::Break(*p)),
        Stmt::Return(e, p) => out.push(Stmt::Return(e.as_ref().map(|e| fold_expr(e, stats)), *p)),
    }
}

/// Folds and prunes one `if` statement. Constant-false arms disappear;
/// a constant-true arm truncates everything after it. If no arm
/// survives, the `else` body (when present) is re-emitted as
/// `if true then ... end` so its locals keep their own scope at the
/// cost of a single condition charge — never more than the original
/// spent evaluating the pruned conditions.
fn fold_if(
    arms: &[(Expr, Block)],
    otherwise: Option<&Block>,
    stats: &mut OptStats,
    out: &mut Block,
) {
    let if_pos = arms.first().map(|(c, _)| c.pos()).unwrap_or(Pos { line: 1, col: 1 });
    let mut new_arms: Vec<(Expr, Block)> = Vec::new();
    let mut new_else = otherwise.map(|b| fold_block(b, stats));
    for (i, (cond, body)) in arms.iter().enumerate() {
        let cond = fold_expr(cond, stats);
        match literal_truthy(&cond) {
            Some(false) => stats.pruned_branches += 1,
            Some(true) => {
                new_arms.push((cond, fold_block(body, stats)));
                // Everything after a constant-true arm is unreachable.
                let dropped = (arms.len() - i - 1) + new_else.is_some() as usize;
                stats.pruned_branches += dropped;
                new_else = None;
                break;
            }
            None => new_arms.push((cond, fold_block(body, stats))),
        }
    }
    if new_arms.is_empty() {
        match new_else {
            // All conditions were constant-false: promote the `else`
            // into `if true then ... end`, keeping its scope.
            Some(body) => {
                out.push(Stmt::If { arms: vec![(Expr::Bool(true, if_pos), body)], otherwise: None })
            }
            None => stats.removed_stmts += 1, // nothing can ever run
        }
        return;
    }
    out.push(Stmt::If { arms: new_arms, otherwise: new_else });
}

fn fold_expr(e: &Expr, stats: &mut OptStats) -> Expr {
    match e {
        Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..) | Expr::Var(..) => {
            e.clone()
        }
        Expr::Unary { op, expr, pos } => {
            let inner = fold_expr(expr, stats);
            if let Some(folded) = fold_unary(*op, &inner, *pos) {
                stats.folded_exprs += 1;
                return folded;
            }
            Expr::Unary { op: *op, expr: Box::new(inner), pos: *pos }
        }
        Expr::Binary { op, lhs, rhs, pos } => {
            let l = fold_expr(lhs, stats);
            let r = fold_expr(rhs, stats);
            if let Some(folded) = fold_binary(*op, &l, &r, *pos) {
                stats.folded_exprs += 1;
                return folded;
            }
            Expr::Binary { op: *op, lhs: Box::new(l), rhs: Box::new(r), pos: *pos }
        }
        Expr::Call { callee, args, pos } => Expr::Call {
            callee: Box::new(fold_expr(callee, stats)),
            args: args.iter().map(|a| fold_expr(a, stats)).collect(),
            pos: *pos,
        },
        Expr::Index { table, key, pos } => Expr::Index {
            table: Box::new(fold_expr(table, stats)),
            key: Box::new(fold_expr(key, stats)),
            pos: *pos,
        },
        Expr::Table { array, hash, pos } => Expr::Table {
            array: array.iter().map(|a| fold_expr(a, stats)).collect(),
            hash: hash
                .iter()
                .map(|(k, v)| {
                    let k = match k {
                        TableKey::Name(n) => TableKey::Name(n.clone()),
                        TableKey::Expr(e) => TableKey::Expr(fold_expr(e, stats)),
                    };
                    (k, fold_expr(v, stats))
                })
                .collect(),
            pos: *pos,
        },
        Expr::Function { params, body, pos } => {
            Expr::Function { params: params.clone(), body: fold_block(body, stats), pos: *pos }
        }
    }
}

fn fold_unary(op: UnOp, inner: &Expr, pos: Pos) -> Option<Expr> {
    match op {
        // `-n` on a number literal is exact; any other literal would be
        // a runtime type error, which folding must preserve.
        UnOp::Neg => match inner {
            Expr::Number(n, _) => Some(Expr::Number(-n, pos)),
            _ => None,
        },
        UnOp::Not => literal_truthy(inner).map(|t| Expr::Bool(!t, pos)),
        // `#` of a string literal matches the interpreter's char count.
        UnOp::Len => match inner {
            Expr::Str(s, _) => Some(Expr::Number(s.chars().count() as f64, pos)),
            _ => None,
        },
    }
}

fn fold_binary(op: BinOp, l: &Expr, r: &Expr, pos: Pos) -> Option<Expr> {
    use BinOp::*;
    match op {
        // Short-circuit operators return an *operand*; folding only
        // needs the left side to be a pure literal.
        And => match literal_truthy(l)? {
            true => Some(r.clone()),
            false => Some(l.clone()),
        },
        Or => match literal_truthy(l)? {
            true => Some(l.clone()),
            false => Some(r.clone()),
        },
        Add | Sub | Mul | Div | Mod | Pow => {
            let (Expr::Number(a, _), Expr::Number(b, _)) = (l, r) else { return None };
            let (a, b) = (*a, *b);
            let n = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a - (a / b).floor() * b, // Lua's floored modulo
                Pow => a.powf(b),
                _ => unreachable!(),
            };
            Some(Expr::Number(n, pos))
        }
        Concat => match (l, r) {
            (Expr::Str(..) | Expr::Number(..), Expr::Str(..) | Expr::Number(..)) => {
                let lv = literal_value(l).expect("matched literal");
                let rv = literal_value(r).expect("matched literal");
                Some(Expr::Str(format!("{}{}", lv.display(), rv.display()), pos))
            }
            _ => None,
        },
        Eq | Ne => {
            if !is_atomic_literal(l) || !is_atomic_literal(r) {
                return None;
            }
            let eq = literal_value(l)? == literal_value(r)?;
            Some(Expr::Bool(if op == Eq { eq } else { !eq }, pos))
        }
        Lt | Le | Gt | Ge => {
            // Only number/number and string/string compare at runtime;
            // mixed literals would be a type error we must not erase.
            let ord = match (l, r) {
                (Expr::Number(a, _), Expr::Number(b, _)) => a.partial_cmp(b),
                (Expr::Str(a, _), Expr::Str(b, _)) => Some(a.cmp(b)),
                _ => return None,
            };
            let b = match ord {
                None => false, // NaN comparisons are false
                Some(ord) => match op {
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    Ge => ord.is_ge(),
                    _ => unreachable!(),
                },
            };
            Some(Expr::Bool(b, pos))
        }
    }
}

// ---------------------------------------------------------------------------
// Dead-store elimination
// ---------------------------------------------------------------------------

/// Removes `local x` / `local x = <literal>` statements whose name
/// occurs exactly once in the whole script (the declaration itself).
/// The census counts *every* identifier occurrence — reads, writes,
/// shadowing declarations, loop variables, parameters — so removal can
/// never change what any other occurrence resolves to.
fn eliminate_dead_locals(
    block: Block,
    counts: &HashMap<String, usize>,
    stats: &mut OptStats,
) -> Block {
    let mut out = Vec::with_capacity(block.len());
    for stmt in block {
        match stmt {
            Stmt::Local { ref name, ref init, .. }
                if counts.get(name.as_str()).copied() == Some(1)
                    && init.as_ref().is_none_or(is_atomic_literal) =>
            {
                stats.removed_stmts += 1;
            }
            Stmt::If { arms, otherwise } => out.push(Stmt::If {
                arms: arms
                    .into_iter()
                    .map(|(c, b)| (c, eliminate_dead_locals(b, counts, stats)))
                    .collect(),
                otherwise: otherwise.map(|b| eliminate_dead_locals(b, counts, stats)),
            }),
            Stmt::While { cond, body } => {
                out.push(Stmt::While { cond, body: eliminate_dead_locals(body, counts, stats) })
            }
            Stmt::NumericFor { var, start, stop, step, body } => out.push(Stmt::NumericFor {
                var,
                start,
                stop,
                step,
                body: eliminate_dead_locals(body, counts, stats),
            }),
            Stmt::GenericFor { key_var, value_var, iterable, body } => out.push(Stmt::GenericFor {
                key_var,
                value_var,
                iterable,
                body: eliminate_dead_locals(body, counts, stats),
            }),
            Stmt::LocalFunction { name, params, body, pos } => out.push(Stmt::LocalFunction {
                name,
                params,
                body: eliminate_dead_locals(body, counts, stats),
                pos,
            }),
            other => out.push(other),
        }
    }
    out
}

fn count_names_block(block: &Block, counts: &mut HashMap<String, usize>) {
    for stmt in block {
        count_names_stmt(stmt, counts);
    }
}

fn tally(name: &str, counts: &mut HashMap<String, usize>) {
    *counts.entry(name.to_string()).or_insert(0) += 1;
}

fn count_names_stmt(stmt: &Stmt, counts: &mut HashMap<String, usize>) {
    match stmt {
        Stmt::Local { name, init, .. } => {
            tally(name, counts);
            if let Some(e) = init {
                count_names_expr(e, counts);
            }
        }
        Stmt::Assign { target, value, .. } => {
            match target {
                Target::Name(n) => tally(n, counts),
                Target::Index { table, key } => {
                    count_names_expr(table, counts);
                    count_names_expr(key, counts);
                }
            }
            count_names_expr(value, counts);
        }
        Stmt::ExprStmt(e) => count_names_expr(e, counts),
        Stmt::If { arms, otherwise } => {
            for (c, b) in arms {
                count_names_expr(c, counts);
                count_names_block(b, counts);
            }
            if let Some(b) = otherwise {
                count_names_block(b, counts);
            }
        }
        Stmt::While { cond, body } => {
            count_names_expr(cond, counts);
            count_names_block(body, counts);
        }
        Stmt::NumericFor { var, start, stop, step, body } => {
            tally(var, counts);
            count_names_expr(start, counts);
            count_names_expr(stop, counts);
            if let Some(e) = step {
                count_names_expr(e, counts);
            }
            count_names_block(body, counts);
        }
        Stmt::GenericFor { key_var, value_var, iterable, body } => {
            tally(key_var, counts);
            if let Some(v) = value_var {
                tally(v, counts);
            }
            count_names_expr(iterable, counts);
            count_names_block(body, counts);
        }
        Stmt::LocalFunction { name, params, body, .. } => {
            tally(name, counts);
            for p in params {
                tally(p, counts);
            }
            count_names_block(body, counts);
        }
        Stmt::Break(_) => {}
        Stmt::Return(e, _) => {
            if let Some(e) = e {
                count_names_expr(e, counts);
            }
        }
    }
}

fn count_names_expr(e: &Expr, counts: &mut HashMap<String, usize>) {
    match e {
        Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..) => {}
        Expr::Var(name, _) => tally(name, counts),
        Expr::Unary { expr, .. } => count_names_expr(expr, counts),
        Expr::Binary { lhs, rhs, .. } => {
            count_names_expr(lhs, counts);
            count_names_expr(rhs, counts);
        }
        Expr::Call { callee, args, .. } => {
            count_names_expr(callee, counts);
            for a in args {
                count_names_expr(a, counts);
            }
        }
        Expr::Index { table, key, .. } => {
            count_names_expr(table, counts);
            count_names_expr(key, counts);
        }
        Expr::Table { array, hash, .. } => {
            for a in array {
                count_names_expr(a, counts);
            }
            for (k, v) in hash {
                if let TableKey::Expr(ke) = k {
                    count_names_expr(ke, counts);
                }
                count_names_expr(v, counts);
            }
        }
        Expr::Function { params, body, .. } => {
            for p in params {
                tally(p, counts);
            }
            count_names_block(body, counts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::parser::parse;

    fn run_both(src: &str) -> (Value, u64, Value, u64, OptStats) {
        let block = parse(src).expect("parses");
        let (opt, stats) = optimize(&block);
        let mut a = Interpreter::new();
        let va = a.run_block(&block).expect("original runs");
        let ia = a.instructions_used();
        let mut b = Interpreter::new();
        let vb = b.run_block(&opt).expect("optimized runs");
        let ib = b.instructions_used();
        (va, ia, vb, ib, stats)
    }

    fn assert_equiv_and_cheaper(src: &str) -> OptStats {
        let (va, ia, vb, ib, stats) = run_both(src);
        assert_eq!(va, vb, "values diverge for {src:?}");
        assert!(ib <= ia, "optimized costs more ({ib} > {ia}) for {src:?}");
        stats
    }

    #[test]
    fn folds_arithmetic_exactly() {
        let stats = assert_equiv_and_cheaper("return 1 + 2 * 3 - 4 / 2 + 2 ^ 3 + 7 % 3");
        assert!(stats.folded_exprs > 0);
    }

    #[test]
    fn folds_floored_modulo_like_interpreter() {
        assert_equiv_and_cheaper("return -5 % 3");
        assert_equiv_and_cheaper("return 5 % -3");
    }

    #[test]
    fn folds_concat_with_integer_display() {
        let block = parse("return 1 .. ' ' .. 2.5").unwrap();
        let (opt, _) = optimize(&block);
        let mut i = Interpreter::new();
        assert_eq!(i.run_block(&opt).unwrap(), Value::str("1 2.5"));
    }

    #[test]
    fn folds_comparisons_and_equality() {
        assert_equiv_and_cheaper("return 1 < 2");
        assert_equiv_and_cheaper("return 'a' < 'b'");
        assert_equiv_and_cheaper("return 1 == 1.0");
        assert_equiv_and_cheaper("return 'x' ~= 1");
        assert_equiv_and_cheaper("return nil == nil");
    }

    #[test]
    fn nan_comparison_folds_to_false() {
        // 0/0 folds to a NaN literal; NaN < NaN must stay false.
        assert_equiv_and_cheaper("return (0 / 0) < (0 / 0)");
    }

    #[test]
    fn does_not_fold_mixed_type_errors_away() {
        let block = parse("return 1 + 'x'").unwrap();
        let (opt, _) = optimize(&block);
        let mut i = Interpreter::new();
        assert!(i.run_block(&opt).is_err(), "type error must survive optimization");
    }

    #[test]
    fn short_circuit_folds_to_operand() {
        assert_equiv_and_cheaper("return true and 5");
        assert_equiv_and_cheaper("return false and clock()");
        assert_equiv_and_cheaper("return nil or 'fallback'");
        assert_equiv_and_cheaper("return 1 or clock()");
    }

    #[test]
    fn folds_unary_on_literals() {
        assert_equiv_and_cheaper("return -(2 + 3)");
        assert_equiv_and_cheaper("return not nil");
        assert_equiv_and_cheaper("return #'hello'");
    }

    #[test]
    fn prunes_constant_false_branch() {
        let src = "local x = 1\nif 1 > 2 then x = 10 end\nreturn x";
        let stats = assert_equiv_and_cheaper(src);
        assert!(stats.pruned_branches > 0 || stats.removed_stmts > 0);
    }

    #[test]
    fn constant_true_arm_drops_later_arms_and_else() {
        let src =
            "if 2 > 1 then return 'yes' elseif clock() > 0 then return 'a' else return 'b' end";
        let (va, _, vb, _, stats) = run_both(src);
        assert_eq!(va, vb);
        assert!(stats.pruned_branches >= 2);
    }

    #[test]
    fn surviving_else_keeps_its_own_scope() {
        // The promoted `if true` block must not leak `y` outward; `y`
        // outside resolves to the outer local.
        let src = "local y = 1\nif false then y = 2 else local y = 9\nprint(y) end\nreturn y";
        let (va, _, vb, _, _) = run_both(src);
        assert_eq!(va, Value::Number(1.0));
        assert_eq!(va, vb);
    }

    #[test]
    fn while_false_is_deleted_and_while_true_is_kept() {
        let block = parse("while 1 > 2 do clock() end\nreturn 1").unwrap();
        let (opt, stats) = optimize(&block);
        assert_eq!(opt.len(), 1, "while false should be deleted");
        assert_eq!(stats.pruned_branches, 1);

        let block = parse("while true do return 7 end").unwrap();
        let (opt, _) = optimize(&block);
        assert!(matches!(opt[0], Stmt::While { .. }), "while true must be kept");
    }

    #[test]
    fn removes_truly_unused_literal_locals_only() {
        let src = "local unused = 42\nlocal kept = clock()\nreturn 1";
        let block = parse(src).unwrap();
        let (opt, stats) = optimize(&block);
        // `unused` goes; `kept` has a side-effecting init and stays.
        assert_eq!(opt.len(), 2);
        assert_eq!(stats.removed_stmts, 1);
        assert_equiv_and_cheaper(src);
    }

    #[test]
    fn keeps_local_when_name_occurs_anywhere_else() {
        // Removing the `local` would retarget the assignment below to a
        // global; the census must prevent that.
        let src = "local x = 1\nx = 2\nreturn x";
        let block = parse(src).unwrap();
        let (opt, _) = optimize(&block);
        assert_eq!(opt.len(), block.len());
        assert_equiv_and_cheaper(src);
    }

    #[test]
    fn keeps_local_captured_only_by_a_closure() {
        let src = "local x = 5\nlocal function f() return x end\nreturn f()";
        let block = parse(src).unwrap();
        let (opt, _) = optimize(&block);
        assert_eq!(opt.len(), block.len());
        assert_equiv_and_cheaper(src);
    }

    #[test]
    fn folds_inside_function_bodies_and_loops() {
        let src = "local function f(a) return a + (2 * 3) end\nlocal s = 0\nfor i = 1, 3 do s = s + f(i) end\nreturn s";
        let stats = assert_equiv_and_cheaper(src);
        assert!(stats.folded_exprs > 0);
    }

    #[test]
    fn idempotent_on_already_optimized_output() {
        let src = "local x = 1\nif 1 < 2 then x = 2 + 3 end\nreturn x .. ''";
        let block = parse(src).unwrap();
        let (once, _) = optimize(&block);
        let (twice, stats) = optimize(&once);
        assert_eq!(format!("{once:?}"), format!("{twice:?}"));
        assert!(!stats.changed(), "second pass should be a fixpoint");
    }

    #[test]
    fn stats_total_sums_counters() {
        let block = parse("local dead = 1\nif false then clock() end\nreturn 2 + 2").unwrap();
        let (_, stats) = optimize(&block);
        assert_eq!(stats.total(), stats.folded_exprs + stats.pruned_branches + stats.removed_stmts);
        assert!(stats.changed());
    }
}
