//! Runtime values of SenseScript.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::Block;

/// A SenseScript runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `nil`.
    Nil,
    /// Booleans.
    Bool(bool),
    /// All numbers are f64 (Lua 5.1 semantics).
    Number(f64),
    /// Immutable interned-ish strings.
    Str(Rc<str>),
    /// Mutable shared tables (array part + string-keyed hash part).
    Table(Rc<RefCell<Table>>),
    /// Script-defined functions (closures).
    Function(Rc<Closure>),
    /// Bytecode-compiled script functions (closures over a VM
    /// environment; see [`crate::bytecode`]). Indistinguishable from
    /// [`Value::Function`] to scripts: `type()` reports `function`.
    Compiled(Rc<crate::bytecode::VmClosure>),
}

/// A table: contiguous 1-based array part plus string-keyed hash part,
/// the two halves of Lua's associative arrays that sensing scripts use.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Array part; index 1 in script = index 0 here.
    pub array: Vec<Value>,
    /// Hash part (string keys).
    pub hash: HashMap<String, Value>,
}

/// A script closure: parameters, body, and the captured environment.
pub struct Closure {
    /// Parameter names.
    pub params: Vec<String>,
    /// Function body.
    pub body: Block,
    /// Captured lexical scope.
    pub env: crate::interp::ScopeRef,
}

impl std::fmt::Debug for Closure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Closure")
            .field("params", &self.params)
            .field("body_stmts", &self.body.len())
            .finish()
    }
}

impl Value {
    /// Makes a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Makes a table value from parts.
    pub fn table(array: Vec<Value>, hash: HashMap<String, Value>) -> Value {
        Value::Table(Rc::new(RefCell::new(Table { array, hash })))
    }

    /// Makes an array-only table from numbers (the common shape of
    /// sensor readings handed to scripts).
    pub fn number_array(values: &[f64]) -> Value {
        Value::table(values.iter().map(|&v| Value::Number(v)).collect(), HashMap::new())
    }

    /// Lua truthiness: everything except `nil` and `false` is true.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// The type name used in error messages and by `type()`.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
            Value::Table(_) => "table",
            Value::Function(_) | Value::Compiled(_) => "function",
        }
    }

    /// Numeric view, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// String view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts `[f64]` from an array-shaped table.
    pub fn as_number_array(&self) -> Option<Vec<f64>> {
        match self {
            Value::Table(t) => {
                t.borrow().array.iter().map(|v| v.as_number()).collect::<Option<Vec<f64>>>()
            }
            _ => None,
        }
    }

    /// Renders the value the way `tostring`/`print` do.
    pub fn display(&self) -> String {
        match self {
            Value::Nil => "nil".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Str(s) => s.to_string(),
            Value::Table(t) => {
                let t = t.borrow();
                let mut parts: Vec<String> = t.array.iter().map(|v| v.display()).collect();
                let mut keys: Vec<&String> = t.hash.keys().collect();
                keys.sort();
                for k in keys {
                    parts.push(format!("{k}={}", t.hash[k].display()));
                }
                format!("{{{}}}", parts.join(", "))
            }
            Value::Function(_) | Value::Compiled(_) => "function".to_string(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            // Reference equality, as in Lua.
            (Value::Table(a), Value::Table(b)) => Rc::ptr_eq(a, b),
            (Value::Function(a), Value::Function(b)) => Rc::ptr_eq(a, b),
            (Value::Compiled(a), Value::Compiled(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_follows_lua() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Number(0.0).truthy()); // 0 is truthy in Lua!
        assert!(Value::str("").truthy());
    }

    #[test]
    fn tables_compare_by_reference() {
        let a = Value::number_array(&[1.0]);
        let b = Value::number_array(&[1.0]);
        assert_ne!(a, b);
        let c = a.clone();
        assert_eq!(a, c);
    }

    #[test]
    fn display_renders_integers_without_fraction() {
        assert_eq!(Value::Number(5.0).display(), "5");
        assert_eq!(Value::Number(5.5).display(), "5.5");
        assert_eq!(Value::Nil.display(), "nil");
    }

    #[test]
    fn number_array_roundtrip() {
        let v = Value::number_array(&[1.5, 2.5]);
        assert_eq!(v.as_number_array().unwrap(), vec![1.5, 2.5]);
    }

    #[test]
    fn mixed_table_is_not_number_array() {
        let v = Value::table(vec![Value::Number(1.0), Value::str("x")], HashMap::new());
        assert!(v.as_number_array().is_none());
    }

    #[test]
    fn table_display_sorted_keys() {
        let mut hash = HashMap::new();
        hash.insert("b".into(), Value::Number(2.0));
        hash.insert("a".into(), Value::Number(1.0));
        let v = Value::table(vec![Value::Number(9.0)], hash);
        assert_eq!(v.display(), "{9, a=1, b=2}");
    }
}
