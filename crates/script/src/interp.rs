//! The SenseScript tree-walking interpreter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{BinOp, Block, Expr, Stmt, TableKey, Target};
use crate::host::{HostContext, HostRegistry};
use crate::ops;
use crate::parser::parse;
use crate::stdlib;
use crate::value::{Closure, Value};
use crate::{Pos, ScriptError};

/// A lexical scope: locals plus a parent link.
#[derive(Debug, Default)]
pub struct Scope {
    vars: HashMap<String, Value>,
    parent: Option<ScopeRef>,
}

/// Shared handle to a scope (closures capture these).
pub type ScopeRef = Rc<RefCell<Scope>>;

fn child_scope(parent: &ScopeRef) -> ScopeRef {
    Rc::new(RefCell::new(Scope { vars: HashMap::new(), parent: Some(Rc::clone(parent)) }))
}

fn lookup(scope: &ScopeRef, name: &str) -> Option<Value> {
    let s = scope.borrow();
    if let Some(v) = s.vars.get(name) {
        return Some(v.clone());
    }
    s.parent.as_ref().and_then(|p| lookup(p, name))
}

/// Sets `name` in the innermost scope that already defines it; returns
/// false if no scope does.
fn assign_existing(scope: &ScopeRef, name: &str, value: &Value) -> bool {
    let mut s = scope.borrow_mut();
    if let Some(slot) = s.vars.get_mut(name) {
        *slot = value.clone();
        return true;
    }
    match &s.parent {
        Some(p) => assign_existing(p, name, value),
        None => false,
    }
}

fn define(scope: &ScopeRef, name: &str, value: Value) {
    scope.borrow_mut().vars.insert(name.to_string(), value);
}

enum Flow {
    Normal,
    Break,
    Return(Value),
}

/// Default instruction budget: generous for sensing scripts, tight
/// enough to abort runaway loops quickly.
pub const DEFAULT_BUDGET: u64 = 1_000_000;

/// Default maximum script-call nesting (protects the host stack; a
/// sensing script has no business recursing hundreds deep).
pub const DEFAULT_MAX_DEPTH: usize = 100;

/// The interpreter: a host whitelist, a virtual-time context, and an
/// instruction budget.
///
/// # Example
///
/// ```
/// use sor_script::{Interpreter, Value};
///
/// let mut interp = Interpreter::new();
/// interp.host_mut().register("get_fake_reading", |_ctx, _args| {
///     Ok(Value::Number(21.5))
/// });
/// let v = interp.run("return get_fake_reading() * 2")?;
/// assert_eq!(v, Value::Number(43.0));
/// # Ok::<(), sor_script::ScriptError>(())
/// ```
#[derive(Debug)]
pub struct Interpreter {
    host: HostRegistry,
    ctx: HostContext,
    budget: u64,
    remaining: u64,
    max_depth: usize,
    depth: usize,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Interpreter with an empty whitelist and the default budget.
    pub fn new() -> Self {
        Interpreter {
            host: HostRegistry::new(),
            ctx: HostContext::new(),
            budget: DEFAULT_BUDGET,
            remaining: DEFAULT_BUDGET,
            max_depth: DEFAULT_MAX_DEPTH,
            depth: 0,
        }
    }

    /// Interpreter with a pre-built whitelist.
    pub fn with_host(host: HostRegistry) -> Self {
        Interpreter { host, ..Self::new() }
    }

    /// Sets the instruction budget for subsequent runs.
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Sets the maximum script-call nesting depth for subsequent runs.
    pub fn set_max_depth(&mut self, depth: usize) {
        self.max_depth = depth;
    }

    /// Mutable access to the whitelist.
    pub fn host_mut(&mut self) -> &mut HostRegistry {
        &mut self.host
    }

    /// The whitelist.
    pub fn host(&self) -> &HostRegistry {
        &self.host
    }

    /// Captured `print` output of the last run.
    pub fn output(&self) -> &[String] {
        &self.ctx.output
    }

    /// Virtual clock after the last run (seconds).
    pub fn virtual_time(&self) -> f64 {
        self.ctx.virtual_time
    }

    /// Parses and executes `src`, returning the script's `return` value
    /// (or [`Value::Nil`] if it fell off the end). Output and virtual
    /// time are reset per run.
    ///
    /// # Errors
    ///
    /// Any [`ScriptError`] from lexing, parsing or execution.
    pub fn run(&mut self, src: &str) -> Result<Value, ScriptError> {
        let block = parse(src)?;
        self.run_block(&block)
    }

    /// Runs an already-parsed block with a fresh context, budget, and
    /// global scope — for embedders that parse (or transform) the AST
    /// themselves, e.g. to execute an optimized lowering of a script.
    ///
    /// # Errors
    ///
    /// Any [`ScriptError`] from execution.
    pub fn run_block(&mut self, block: &Block) -> Result<Value, ScriptError> {
        self.ctx = HostContext::new();
        self.remaining = self.budget;
        self.depth = 0;
        let globals: ScopeRef = Rc::new(RefCell::new(Scope::default()));
        match self.exec_block(block, &globals)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Nil),
        }
    }

    /// Instructions consumed by the last (or current) run: one per
    /// statement executed, expression evaluated, and loop iteration.
    /// The static cost pass in [`crate::analysis`] upper-bounds this.
    pub fn instructions_used(&self) -> u64 {
        self.budget - self.remaining
    }

    fn charge(&mut self, at: Pos) -> Result<(), ScriptError> {
        if self.remaining == 0 {
            return Err(ScriptError::BudgetExhausted { budget: self.budget, at });
        }
        self.remaining -= 1;
        Ok(())
    }

    fn exec_block(&mut self, block: &Block, scope: &ScopeRef) -> Result<Flow, ScriptError> {
        for stmt in block {
            match self.exec_stmt(stmt, scope)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, scope: &ScopeRef) -> Result<Flow, ScriptError> {
        self.charge(stmt.pos())?;
        match stmt {
            Stmt::Local { name, init, .. } => {
                let v = match init {
                    Some(e) => self.eval(e, scope)?,
                    None => Value::Nil,
                };
                define(scope, name, v);
                Ok(Flow::Normal)
            }
            Stmt::LocalFunction { name, params, body, .. } => {
                // Define the name first so the body can recurse.
                define(scope, name, Value::Nil);
                let closure = Value::Function(Rc::new(Closure {
                    params: params.clone(),
                    body: body.clone(),
                    env: Rc::clone(scope),
                }));
                define(scope, name, closure);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value, pos } => {
                let v = self.eval(value, scope)?;
                match target {
                    Target::Name(name) => {
                        if !assign_existing(scope, name, &v) {
                            // Lua semantics: assignment to an unknown name
                            // creates a global.
                            let mut root = Rc::clone(scope);
                            loop {
                                let parent = root.borrow().parent.clone();
                                match parent {
                                    Some(p) => root = p,
                                    None => break,
                                }
                            }
                            define(&root, name, v);
                        }
                    }
                    Target::Index { table, key } => {
                        let t = self.eval(table, scope)?;
                        let k = self.eval(key, scope)?;
                        ops::index_set(&t, &k, v, *pos)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ExprStmt(e) => {
                self.eval(e, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::If { arms, otherwise } => {
                for (cond, body) in arms {
                    if self.eval(cond, scope)?.truthy() {
                        return self.exec_block(body, &child_scope(scope));
                    }
                }
                if let Some(body) = otherwise {
                    return self.exec_block(body, &child_scope(scope));
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, scope)?.truthy() {
                    self.charge(cond.pos())?;
                    match self.exec_block(body, &child_scope(scope))? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::NumericFor { var, start, stop, step, body } => {
                let pos = start.pos();
                let start_v = self.expect_number(start, scope)?;
                let stop_v = self.expect_number(stop, scope)?;
                let step_v = match step {
                    Some(e) => self.expect_number(e, scope)?,
                    None => 1.0,
                };
                if step_v == 0.0 {
                    return Err(ScriptError::TypeError {
                        message: "for-loop step must be non-zero".to_string(),
                        at: pos,
                    });
                }
                let mut i = start_v;
                while (step_v > 0.0 && i <= stop_v) || (step_v < 0.0 && i >= stop_v) {
                    self.charge(pos)?;
                    let inner = child_scope(scope);
                    define(&inner, var, Value::Number(i));
                    match self.exec_block(body, &inner)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal => {}
                    }
                    i += step_v;
                }
                Ok(Flow::Normal)
            }
            Stmt::GenericFor { key_var, value_var, iterable, body } => {
                let v = self.eval(iterable, scope)?;
                let Value::Table(t) = v else {
                    return Err(ScriptError::TypeError {
                        message: format!("generic for expects a table, got {}", v.type_name()),
                        at: iterable.pos(),
                    });
                };
                // Snapshot entries so body mutations can't invalidate
                // iteration (and can't deadlock the RefCell).
                let entries = ops::iteration_snapshot(&t);
                for (k, v) in entries {
                    self.charge(iterable.pos())?;
                    let inner = child_scope(scope);
                    define(&inner, key_var, k);
                    if let Some(vv) = value_var {
                        define(&inner, vv, v);
                    }
                    match self.exec_block(body, &inner)? {
                        Flow::Break => break,
                        Flow::Return(rv) => return Ok(Flow::Return(rv)),
                        Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Return(e, _) => {
                let v = match e {
                    Some(e) => self.eval(e, scope)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn expect_number(&mut self, e: &Expr, scope: &ScopeRef) -> Result<f64, ScriptError> {
        let v = self.eval(e, scope)?;
        v.as_number().ok_or_else(|| ScriptError::TypeError {
            message: format!("expected number, got {}", v.type_name()),
            at: e.pos(),
        })
    }

    fn eval(&mut self, e: &Expr, scope: &ScopeRef) -> Result<Value, ScriptError> {
        self.charge(e.pos())?;
        match e {
            Expr::Nil(_) => Ok(Value::Nil),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Number(n, _) => Ok(Value::Number(*n)),
            Expr::Str(s, _) => Ok(Value::str(s)),
            Expr::Var(name, pos) => lookup(scope, name)
                .ok_or_else(|| ScriptError::UndefinedVariable { name: name.clone(), at: *pos }),
            Expr::Unary { op, expr, pos } => {
                let v = self.eval(expr, scope)?;
                ops::apply_unary(*op, v, *pos)
            }
            Expr::Binary { op, lhs, rhs, pos } => match op {
                BinOp::And => {
                    let l = self.eval(lhs, scope)?;
                    if l.truthy() {
                        self.eval(rhs, scope)
                    } else {
                        Ok(l)
                    }
                }
                BinOp::Or => {
                    let l = self.eval(lhs, scope)?;
                    if l.truthy() {
                        Ok(l)
                    } else {
                        self.eval(rhs, scope)
                    }
                }
                _ => {
                    let l = self.eval(lhs, scope)?;
                    let r = self.eval(rhs, scope)?;
                    ops::apply_binary(*op, l, r, *pos)
                }
            },
            Expr::Index { table, key, pos } => {
                let t = self.eval(table, scope)?;
                let k = self.eval(key, scope)?;
                ops::index_get(&t, &k, *pos)
            }
            Expr::Table { array, hash, .. } => {
                let mut arr = Vec::with_capacity(array.len());
                for e in array {
                    arr.push(self.eval(e, scope)?);
                }
                let mut map = HashMap::new();
                for (k, ve) in hash {
                    let v = self.eval(ve, scope)?;
                    match k {
                        TableKey::Name(n) => {
                            map.insert(n.clone(), v);
                        }
                        TableKey::Expr(ke) => {
                            let kv = self.eval(ke, scope)?;
                            // Numeric keys in constructors extend the
                            // array part when contiguous.
                            match ops::constructor_slot(&kv, arr.len(), ke.pos())? {
                                ops::ConstructorSlot::Append => arr.push(v),
                                ops::ConstructorSlot::Hash(key) => {
                                    map.insert(key, v);
                                }
                            }
                        }
                    }
                }
                Ok(Value::table(arr, map))
            }
            Expr::Function { params, body, .. } => Ok(Value::Function(Rc::new(Closure {
                params: params.clone(),
                body: body.clone(),
                env: Rc::clone(scope),
            }))),
            Expr::Call { callee, args, pos } => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a, scope)?);
                }
                // Named calls may hit locals, builtins, or the host
                // whitelist (in that order).
                if let Expr::Var(name, _) = callee.as_ref() {
                    if let Some(v) = lookup(scope, name) {
                        return self.call_value(v, &arg_vals, *pos);
                    }
                    if let Some(res) = stdlib::call(name, &arg_vals, &mut self.ctx, *pos) {
                        return res;
                    }
                    if let Some(f) = self.host.get(name) {
                        return f(&mut self.ctx, &arg_vals)
                            .map_err(|message| ScriptError::HostError { message, at: *pos });
                    }
                    return Err(ScriptError::ForbiddenFunction { name: name.clone(), at: *pos });
                }
                let f = self.eval(callee, scope)?;
                self.call_value(f, &arg_vals, *pos)
            }
        }
    }

    fn call_value(&mut self, f: Value, args: &[Value], pos: Pos) -> Result<Value, ScriptError> {
        match f {
            Value::Function(closure) => {
                if self.depth >= self.max_depth {
                    return Err(ScriptError::CallDepthExceeded { limit: self.max_depth, at: pos });
                }
                self.depth += 1;
                let inner = child_scope(&closure.env);
                for (i, p) in closure.params.iter().enumerate() {
                    define(&inner, p, args.get(i).cloned().unwrap_or(Value::Nil));
                }
                let result = match self.exec_block(&closure.body, &inner)? {
                    Flow::Return(v) => Ok(v),
                    _ => Ok(Value::Nil),
                };
                self.depth -= 1;
                result
            }
            other => Err(ScriptError::TypeError {
                message: format!("attempt to call a {} value", other.type_name()),
                at: pos,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Result<Value, ScriptError> {
        Interpreter::new().run(src)
    }

    fn num(src: &str) -> f64 {
        run(src).unwrap().as_number().expect("number result")
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(num("return 1 + 2 * 3"), 7.0);
        assert_eq!(num("return (1 + 2) * 3"), 9.0);
        assert_eq!(num("return 2 ^ 3 ^ 2"), 512.0); // right assoc
        assert_eq!(num("return 7 % 3"), 1.0);
        assert_eq!(num("return -7 % 3"), 2.0); // floored modulo
        assert_eq!(num("return -2 ^ 2"), -4.0);
    }

    #[test]
    fn locals_and_assignment() {
        assert_eq!(num("local x = 1\nx = x + 1\nreturn x"), 2.0);
    }

    #[test]
    fn global_creation_on_assignment() {
        // Assignment to an undeclared name creates a global (Lua rules);
        // the inner scope's write is visible outside.
        assert_eq!(num("if true then g = 5 end\nreturn g"), 5.0);
    }

    #[test]
    fn undefined_read_is_error() {
        assert!(matches!(run("return never_defined"), Err(ScriptError::UndefinedVariable { .. })));
    }

    #[test]
    fn if_elseif_else() {
        let src = |n: i32| {
            format!(
                "local x = {n}\nif x < 0 then return \"neg\" elseif x == 0 then return \"zero\" else return \"pos\" end"
            )
        };
        assert_eq!(run(&src(-5)).unwrap(), Value::str("neg"));
        assert_eq!(run(&src(0)).unwrap(), Value::str("zero"));
        assert_eq!(run(&src(3)).unwrap(), Value::str("pos"));
    }

    #[test]
    fn while_loop_with_break() {
        assert_eq!(
            num("local i = 0\nwhile true do i = i + 1\nif i >= 5 then break end end\nreturn i"),
            5.0
        );
    }

    #[test]
    fn numeric_for_up_down_step() {
        assert_eq!(num("local s = 0\nfor i = 1, 4 do s = s + i end\nreturn s"), 10.0);
        assert_eq!(
            num("local s = 0\nfor i = 10, 1, -3 do s = s + i end\nreturn s"),
            10.0 + 7.0 + 4.0 + 1.0
        );
        assert_eq!(num("local s = 0\nfor i = 5, 1 do s = s + 1 end\nreturn s"), 0.0);
    }

    #[test]
    fn zero_step_for_is_error() {
        assert!(matches!(run("for i = 1, 5, 0 do end"), Err(ScriptError::TypeError { .. })));
    }

    #[test]
    fn tables_and_length() {
        assert_eq!(num("local t = {10, 20, 30}\nreturn t[2]"), 20.0);
        assert_eq!(num("local t = {10, 20, 30}\nreturn #t"), 3.0);
        assert_eq!(num("local t = {x = 7}\nreturn t.x"), 7.0);
        assert_eq!(num("local t = {}\nt[1] = 5\nt[2] = 6\nreturn t[1] + t[2]"), 11.0);
        assert_eq!(num("local t = {}\nt.key = 3\nreturn t['key']"), 3.0);
    }

    #[test]
    fn sparse_write_rejected() {
        assert!(matches!(run("local t = {}\nt[100] = 1"), Err(ScriptError::TypeError { .. })));
    }

    #[test]
    fn missing_index_is_nil() {
        assert_eq!(run("local t = {1}\nreturn t[5]").unwrap(), Value::Nil);
        assert_eq!(run("local t = {}\nreturn t.missing").unwrap(), Value::Nil);
    }

    #[test]
    fn functions_and_recursion() {
        let src = r#"
            local function fib(n)
                if n < 2 then return n end
                return fib(n - 1) + fib(n - 2)
            end
            return fib(12)
        "#;
        assert_eq!(num(src), 144.0);
    }

    #[test]
    fn closures_capture_environment() {
        let src = r#"
            local function make_counter()
                local n = 0
                return function()
                    n = n + 1
                    return n
                end
            end
            local c = make_counter()
            c()
            c()
            return c()
        "#;
        assert_eq!(num(src), 3.0);
    }

    #[test]
    fn higher_order_functions() {
        let src = r#"
            local function apply(f, x) return f(x) end
            return apply(function(v) return v * 10 end, 4)
        "#;
        assert_eq!(num(src), 40.0);
    }

    #[test]
    fn string_operations() {
        assert_eq!(run("return 'a' .. 'b' .. 1").unwrap(), Value::str("ab1"));
        assert_eq!(run("return 'abc' < 'abd'").unwrap(), Value::Bool(true));
        assert_eq!(num("return #'hello'"), 5.0);
    }

    #[test]
    fn logical_short_circuit_returns_operand() {
        assert_eq!(num("return false or 5"), 5.0);
        assert_eq!(num("return nil and error('never') or 7"), 7.0);
        assert_eq!(run("return 1 and 2").unwrap(), Value::Number(2.0));
    }

    #[test]
    fn generic_for_iterates_array_part() {
        let src = r#"
            local t = {10, 20, 30}
            local s = 0
            local ksum = 0
            for i, v in t do
                s = s + v
                ksum = ksum + i
            end
            return s + ksum
        "#;
        assert_eq!(num(src), 66.0); // 60 values + 1+2+3 keys
    }

    #[test]
    fn generic_for_iterates_hash_part_sorted() {
        let src = r#"
            local t = {b = 2, a = 1, c = 3}
            local keys = ""
            local sum = 0
            for k, v in t do
                keys = keys .. k
                sum = sum + v
            end
            return keys .. sum
        "#;
        assert_eq!(run(src).unwrap(), Value::str("abc6"));
    }

    #[test]
    fn generic_for_single_variable_and_break() {
        let src = r#"
            local t = {5, 6, 7, 8}
            local count = 0
            for i in t do
                if i == 3 then break end
                count = count + 1
            end
            return count
        "#;
        assert_eq!(num(src), 2.0);
    }

    #[test]
    fn generic_for_return_propagates() {
        let src = r#"
            local t = {1, 2, 3}
            for _, v in t do
                if v == 2 then return v * 100 end
            end
            return -1
        "#;
        assert_eq!(num(src), 200.0);
    }

    #[test]
    fn generic_for_over_non_table_is_error() {
        assert!(matches!(run("for k, v in 5 do end"), Err(ScriptError::TypeError { .. })));
    }

    #[test]
    fn generic_for_body_mutation_is_safe() {
        // Appending while iterating must not loop forever (we iterate a
        // snapshot).
        let src = r#"
            local t = {1, 2}
            local n = 0
            for _, v in t do
                insert(t, v)
                n = n + 1
            end
            return n
        "#;
        assert_eq!(num(src), 2.0);
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let mut interp = Interpreter::new();
        interp.set_budget(10_000);
        assert!(matches!(
            interp.run("while true do end"),
            Err(ScriptError::BudgetExhausted { budget: 10_000, .. })
        ));
        assert_eq!(interp.instructions_used(), 10_000);
    }

    #[test]
    fn forbidden_function_rejected() {
        assert!(matches!(
            run("os_execute('rm -rf /')"),
            Err(ScriptError::ForbiddenFunction { .. })
        ));
    }

    #[test]
    fn whitelisted_host_function_callable() {
        let mut interp = Interpreter::new();
        interp.host_mut().register("get_light_readings", |ctx, args| {
            let n = args.first().and_then(Value::as_number).unwrap_or(1.0) as usize;
            ctx.virtual_time += n as f64 * 0.2;
            Ok(Value::number_array(&vec![420.0; n]))
        });
        let v = interp.run("local r = get_light_readings(5)\nreturn mean(r)").unwrap();
        assert_eq!(v, Value::Number(420.0));
        assert!((interp.virtual_time() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn host_error_surfaces() {
        let mut interp = Interpreter::new();
        interp.host_mut().register("flaky", |_, _| Err("sensor timeout".to_string()));
        assert!(matches!(
            interp.run("flaky()"),
            Err(ScriptError::HostError { ref message, at: Pos { line: 1, col: 6 } })
                if message == "sensor timeout"
        ));
    }

    #[test]
    fn locals_shadow_builtins_and_host() {
        let src = r#"
            local mean = function(t) return 999 end
            return mean({1, 2, 3})
        "#;
        assert_eq!(num(src), 999.0);
    }

    #[test]
    fn print_output_captured_per_run() {
        let mut interp = Interpreter::new();
        interp.run("print('a')\nprint('b', 1)").unwrap();
        assert_eq!(interp.output(), &["a".to_string(), "b\t1".to_string()]);
        interp.run("print('fresh')").unwrap();
        assert_eq!(interp.output(), &["fresh".to_string()]);
    }

    #[test]
    fn full_sensing_script_shape() {
        // The Fig. 4 pattern: loop, sample, pace with sleep, report.
        let mut interp = Interpreter::new();
        interp.host_mut().register("get_accel", |ctx, _| {
            ctx.virtual_time += 0.1;
            Ok(Value::number_array(&[0.1, -0.2, 9.8]))
        });
        interp.host_mut().register("report", |ctx, args| {
            ctx.output.push(format!("report:{}", args[0].display()));
            Ok(Value::Nil)
        });
        let src = r#"
            local samples = {}
            for i = 1, 3 do
                local a = get_accel()
                insert(samples, stddev(a))
                sleep(1)
            end
            report(mean(samples))
            return #samples
        "#;
        assert_eq!(interp.run(src).unwrap(), Value::Number(3.0));
        assert_eq!(interp.output().len(), 1);
        assert!(interp.output()[0].starts_with("report:"));
        assert!((interp.virtual_time() - 3.3).abs() < 1e-9);
    }

    #[test]
    fn calling_non_function_value_is_type_error() {
        assert!(matches!(run("local x = 5\nx()"), Err(ScriptError::TypeError { .. })));
    }

    #[test]
    fn nan_comparison_is_false() {
        assert_eq!(run("local nan = 0/0\nreturn nan < 1").unwrap(), Value::Bool(false));
        assert_eq!(run("local nan = 0/0\nreturn nan == nan").unwrap(), Value::Bool(false));
    }

    #[test]
    fn deep_recursion_hits_depth_limit_not_stack() {
        let mut interp = Interpreter::new();
        let src = r#"
            local function down(n)
                if n == 0 then return 0 end
                return down(n - 1)
            end
            return down(100000)
        "#;
        assert!(matches!(
            interp.run(src),
            Err(ScriptError::CallDepthExceeded { limit: DEFAULT_MAX_DEPTH, .. })
        ));
    }

    #[test]
    fn recursion_within_depth_limit_is_fine() {
        let mut interp = Interpreter::new();
        let src = r#"
            local function down(n)
                if n == 0 then return 0 end
                return down(n - 1)
            end
            return down(80)
        "#;
        assert_eq!(interp.run(src).unwrap(), Value::Number(0.0));
    }
}
