//! Pure builtin functions available to every script.
//!
//! These are the "Lua's own functions" side of the paper's interpreter:
//! safe, side-effect-free helpers (plus `print`, which writes to the
//! captured output, and `sleep`, which advances the *virtual* clock —
//! no real blocking, so a task thread can simulate paced sampling).

use crate::host::HostContext;
use crate::value::Value;
use crate::{Pos, ScriptError};

/// Dispatches a builtin by name. Returns `None` if `name` is not a
/// builtin (the interpreter then consults the host whitelist).
pub fn call(
    name: &str,
    args: &[Value],
    ctx: &mut HostContext,
    at: Pos,
) -> Option<Result<Value, ScriptError>> {
    let r = match name {
        "print" => {
            let line = args.iter().map(Value::display).collect::<Vec<_>>().join("\t");
            ctx.output.push(line);
            Ok(Value::Nil)
        }
        "tostring" => Ok(Value::str(arg(args, 0).display())),
        "tonumber" => Ok(match arg(args, 0) {
            Value::Number(n) => Value::Number(n),
            Value::Str(s) => s.trim().parse::<f64>().map(Value::Number).unwrap_or(Value::Nil),
            _ => Value::Nil,
        }),
        "type" => Ok(Value::str(arg(args, 0).type_name())),
        "abs" => num1(name, args, at, f64::abs),
        "floor" => num1(name, args, at, f64::floor),
        "ceil" => num1(name, args, at, f64::ceil),
        "sqrt" => num1(name, args, at, f64::sqrt),
        "exp" => num1(name, args, at, f64::exp),
        "log" => num1(name, args, at, f64::ln),
        "min" => fold_nums(name, args, at, f64::INFINITY, f64::min),
        "max" => fold_nums(name, args, at, f64::NEG_INFINITY, f64::max),
        "sum" => array_stat(name, args, at, |xs| xs.iter().sum()),
        "mean" => array_stat(name, args, at, |xs| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        }),
        "stddev" => array_stat(name, args, at, |xs| {
            if xs.len() < 2 {
                0.0
            } else {
                let m = xs.iter().sum::<f64>() / xs.len() as f64;
                (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
            }
        }),
        "histogram" => {
            let bins = match args.get(1) {
                Some(v) => match v.as_number() {
                    Some(b) if b >= 1.0 && b.fract() == 0.0 && b <= 1024.0 => b as usize,
                    _ => {
                        return Some(bad(name, at, "expected (array, integer bin count 1..=1024)"))
                    }
                },
                None => 8,
            };
            match arg(args, 0).as_number_array() {
                Some(xs) => {
                    let mut counts = vec![0.0; bins];
                    if !xs.is_empty() {
                        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
                        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        let width = (hi - lo) / bins as f64;
                        for x in &xs {
                            let i = if width > 0.0 && width.is_finite() {
                                (((x - lo) / width) as usize).min(bins - 1)
                            } else {
                                0
                            };
                            counts[i] += 1.0;
                        }
                    }
                    Ok(Value::number_array(&counts))
                }
                None => bad(name, at, "expected a numeric array table"),
            }
        }
        "insert" => match (arg(args, 0), args.get(1)) {
            (Value::Table(t), Some(v)) => {
                t.borrow_mut().array.push(v.clone());
                Ok(Value::Nil)
            }
            _ => bad(name, at, "expected (table, value)"),
        },
        "remove" => match arg(args, 0) {
            Value::Table(t) => Ok(t.borrow_mut().array.pop().unwrap_or(Value::Nil)),
            _ => bad(name, at, "expected (table)"),
        },
        "sort" => match arg(args, 0) {
            Value::Table(t) => {
                let mut b = t.borrow_mut();
                if b.array.iter().any(|v| v.as_number().is_none()) {
                    return Some(bad(name, at, "table must contain only numbers"));
                }
                b.array.sort_by(|a, b| {
                    a.as_number().expect("checked").total_cmp(&b.as_number().expect("checked"))
                });
                Ok(Value::Nil)
            }
            _ => bad(name, at, "expected (table)"),
        },
        "sleep" => match arg(args, 0).as_number() {
            Some(s) if s >= 0.0 => {
                ctx.virtual_time += s;
                Ok(Value::Nil)
            }
            _ => bad(name, at, "expected non-negative seconds"),
        },
        "clock" => Ok(Value::Number(ctx.virtual_time)),
        "assert" => {
            if arg(args, 0).truthy() {
                Ok(arg(args, 0))
            } else {
                let msg = args
                    .get(1)
                    .map(Value::display)
                    .unwrap_or_else(|| "assertion failed".to_string());
                Err(ScriptError::Explicit { message: msg, at })
            }
        }
        "error" => Err(ScriptError::Explicit { message: arg(args, 0).display(), at }),
        "round" => num1(name, args, at, f64::round),
        "clamp" => {
            match (arg(args, 0).as_number(), arg(args, 1).as_number(), arg(args, 2).as_number()) {
                (Some(x), Some(lo), Some(hi)) if lo <= hi => Ok(Value::Number(x.clamp(lo, hi))),
                _ => bad(name, at, "expected (x, lo, hi) with lo <= hi"),
            }
        }
        "upper" => str1(name, args, at, |s| s.to_uppercase()),
        "lower" => str1(name, args, at, |s| s.to_lowercase()),
        "trim" => str1(name, args, at, |s| s.trim().to_string()),
        "substr" => match (arg(args, 0), arg(args, 1).as_number(), arg(args, 2).as_number()) {
            (Value::Str(s), Some(i), Some(j)) if i >= 1.0 && j >= i - 1.0 => {
                let chars: Vec<char> = s.chars().collect();
                let lo = (i as usize - 1).min(chars.len());
                let hi = (j as usize).min(chars.len());
                Ok(Value::str(chars[lo..hi].iter().collect::<String>()))
            }
            _ => bad(name, at, "expected (string, i, j) with 1-based inclusive bounds"),
        },
        "contains" => match (arg(args, 0), arg(args, 1)) {
            (Value::Str(s), Value::Str(needle)) => Ok(Value::Bool(s.contains(needle.as_ref()))),
            _ => bad(name, at, "expected (string, string)"),
        },
        "keys" => match arg(args, 0) {
            Value::Table(t) => {
                let t = t.borrow();
                let mut ks: Vec<String> = t.hash.keys().cloned().collect();
                ks.sort();
                Ok(Value::table(
                    ks.into_iter().map(Value::str).collect(),
                    std::collections::HashMap::new(),
                ))
            }
            _ => bad(name, at, "expected (table)"),
        },
        "values" => match arg(args, 0) {
            Value::Table(t) => {
                let t = t.borrow();
                let mut ks: Vec<&String> = t.hash.keys().collect();
                ks.sort();
                let vs: Vec<Value> = ks.into_iter().map(|k| t.hash[k].clone()).collect();
                Ok(Value::table(vs, std::collections::HashMap::new()))
            }
            _ => bad(name, at, "expected (table)"),
        },
        _ => return None,
    };
    Some(r)
}

/// Whether `name` is a builtin (used by diagnostics).
pub fn is_builtin(name: &str) -> bool {
    const NAMES: &[&str] = &[
        "print",
        "tostring",
        "tonumber",
        "type",
        "abs",
        "floor",
        "ceil",
        "sqrt",
        "exp",
        "log",
        "min",
        "max",
        "sum",
        "mean",
        "stddev",
        "histogram",
        "insert",
        "remove",
        "sort",
        "sleep",
        "clock",
        "assert",
        "error",
        "round",
        "clamp",
        "upper",
        "lower",
        "trim",
        "substr",
        "contains",
        "keys",
        "values",
    ];
    NAMES.contains(&name)
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Nil)
}

fn bad(function: &str, at: Pos, message: &str) -> Result<Value, ScriptError> {
    Err(ScriptError::BadArguments {
        function: function.to_string(),
        message: message.to_string(),
        at,
    })
}

fn str1(
    name: &str,
    args: &[Value],
    at: Pos,
    f: impl Fn(&str) -> String,
) -> Result<Value, ScriptError> {
    match arg(args, 0) {
        Value::Str(s) => Ok(Value::str(f(&s))),
        _ => bad(name, at, "expected a string"),
    }
}

fn num1(name: &str, args: &[Value], at: Pos, f: impl Fn(f64) -> f64) -> Result<Value, ScriptError> {
    match arg(args, 0).as_number() {
        Some(n) => Ok(Value::Number(f(n))),
        None => bad(name, at, "expected a number"),
    }
}

fn fold_nums(
    name: &str,
    args: &[Value],
    at: Pos,
    init: f64,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Value, ScriptError> {
    if args.is_empty() {
        return bad(name, at, "expected at least one number");
    }
    // Accept either varargs of numbers or a single numeric table.
    let nums: Vec<f64> = if args.len() == 1 {
        match &args[0] {
            Value::Table(_) => match args[0].as_number_array() {
                Some(v) if !v.is_empty() => v,
                _ => return bad(name, at, "table must be a non-empty numeric array"),
            },
            v => vec![match v.as_number() {
                Some(n) => n,
                None => return bad(name, at, "expected numbers"),
            }],
        }
    } else {
        match args.iter().map(|v| v.as_number()).collect::<Option<Vec<_>>>() {
            Some(v) => v,
            None => return bad(name, at, "expected numbers"),
        }
    };
    Ok(Value::Number(nums.into_iter().fold(init, f)))
}

fn array_stat(
    name: &str,
    args: &[Value],
    at: Pos,
    f: impl Fn(&[f64]) -> f64,
) -> Result<Value, ScriptError> {
    match arg(args, 0).as_number_array() {
        Some(xs) => Ok(Value::Number(f(&xs))),
        None => bad(name, at, "expected a numeric array table"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        let mut ctx = HostContext::new();
        call(name, args, &mut ctx, Pos::default()).expect("builtin exists")
    }

    #[test]
    fn math_builtins() {
        assert_eq!(run("abs", &[Value::Number(-3.0)]).unwrap(), Value::Number(3.0));
        assert_eq!(run("floor", &[Value::Number(2.7)]).unwrap(), Value::Number(2.0));
        assert_eq!(run("sqrt", &[Value::Number(9.0)]).unwrap(), Value::Number(3.0));
        assert_eq!(
            run("min", &[Value::Number(3.0), Value::Number(1.0)]).unwrap(),
            Value::Number(1.0)
        );
        assert_eq!(
            run("max", &[Value::number_array(&[1.0, 9.0, 4.0])]).unwrap(),
            Value::Number(9.0)
        );
    }

    #[test]
    fn statistics_builtins() {
        let xs = Value::number_array(&[2.0, 4.0, 6.0]);
        assert_eq!(run("sum", std::slice::from_ref(&xs)).unwrap(), Value::Number(12.0));
        assert_eq!(run("mean", std::slice::from_ref(&xs)).unwrap(), Value::Number(4.0));
        let sd = run("stddev", &[xs]).unwrap().as_number().unwrap();
        assert!((sd - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // Degenerate arrays.
        assert_eq!(run("mean", &[Value::number_array(&[])]).unwrap(), Value::Number(0.0));
        assert_eq!(run("stddev", &[Value::number_array(&[5.0])]).unwrap(), Value::Number(0.0));
    }

    #[test]
    fn histogram_builtin() {
        let xs = Value::number_array(&[1.0, 2.0, 3.0, 4.0]);
        let h = run("histogram", &[xs.clone(), Value::Number(2.0)]).unwrap();
        assert_eq!(h.as_number_array().unwrap(), vec![2.0, 2.0]);
        // Default bin count is 8, and constant arrays land in bin 1.
        let flat = Value::number_array(&[5.0, 5.0, 5.0]);
        let h = run("histogram", std::slice::from_ref(&flat)).unwrap();
        assert_eq!(h.as_number_array().unwrap(), vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Empty arrays produce all-zero counts.
        let h = run("histogram", &[Value::number_array(&[]), Value::Number(3.0)]).unwrap();
        assert_eq!(h.as_number_array().unwrap(), vec![0.0, 0.0, 0.0]);
        // Bad bin counts are rejected.
        assert!(run("histogram", &[xs, Value::Number(0.0)]).is_err());
    }

    #[test]
    fn table_builtins() {
        let t = Value::number_array(&[3.0, 1.0]);
        run("insert", &[t.clone(), Value::Number(2.0)]).unwrap();
        run("sort", std::slice::from_ref(&t)).unwrap();
        assert_eq!(t.as_number_array().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(run("remove", std::slice::from_ref(&t)).unwrap(), Value::Number(3.0));
    }

    #[test]
    fn print_captures_output() {
        let mut ctx = HostContext::new();
        call("print", &[Value::str("a"), Value::Number(1.0)], &mut ctx, Pos::default())
            .unwrap()
            .unwrap();
        assert_eq!(ctx.output, vec!["a\t1".to_string()]);
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let mut ctx = HostContext::new();
        call("sleep", &[Value::Number(2.5)], &mut ctx, Pos::default()).unwrap().unwrap();
        let t = call("clock", &[], &mut ctx, Pos::default()).unwrap().unwrap();
        assert_eq!(t, Value::Number(2.5));
    }

    #[test]
    fn sleep_rejects_negative() {
        let mut ctx = HostContext::new();
        assert!(call("sleep", &[Value::Number(-1.0)], &mut ctx, Pos::default()).unwrap().is_err());
    }

    #[test]
    fn conversion_builtins() {
        assert_eq!(run("tostring", &[Value::Number(5.0)]).unwrap(), Value::str("5"));
        assert_eq!(run("tonumber", &[Value::str(" 2.5 ")]).unwrap(), Value::Number(2.5));
        assert_eq!(run("tonumber", &[Value::str("abc")]).unwrap(), Value::Nil);
        assert_eq!(run("type", &[Value::Nil]).unwrap(), Value::str("nil"));
    }

    #[test]
    fn assert_and_error() {
        assert!(run("assert", &[Value::Bool(true)]).is_ok());
        assert!(matches!(
            run("assert", &[Value::Bool(false), Value::str("boom")]),
            Err(ScriptError::Explicit { message, .. }) if message == "boom"
        ));
        assert!(matches!(run("error", &[Value::str("bad")]), Err(ScriptError::Explicit { .. })));
    }

    #[test]
    fn string_builtins() {
        assert_eq!(run("upper", &[Value::str("abc")]).unwrap(), Value::str("ABC"));
        assert_eq!(run("lower", &[Value::str("ABC")]).unwrap(), Value::str("abc"));
        assert_eq!(run("trim", &[Value::str("  x  ")]).unwrap(), Value::str("x"));
        assert_eq!(
            run("substr", &[Value::str("sensor"), Value::Number(2.0), Value::Number(4.0)]).unwrap(),
            Value::str("ens")
        );
        assert_eq!(
            run("contains", &[Value::str("temperature"), Value::str("era")]).unwrap(),
            Value::Bool(true)
        );
        assert!(run("upper", &[Value::Number(1.0)]).is_err());
        assert!(run("substr", &[Value::str("x"), Value::Number(0.0), Value::Number(1.0)]).is_err());
    }

    #[test]
    fn numeric_extras() {
        assert_eq!(run("round", &[Value::Number(2.6)]).unwrap(), Value::Number(3.0));
        assert_eq!(
            run("clamp", &[Value::Number(9.0), Value::Number(0.0), Value::Number(5.0)]).unwrap(),
            Value::Number(5.0)
        );
        assert!(
            run("clamp", &[Value::Number(1.0), Value::Number(5.0), Value::Number(0.0)]).is_err()
        );
    }

    #[test]
    fn keys_and_values_builtins() {
        let mut hash = std::collections::HashMap::new();
        hash.insert("b".to_string(), Value::Number(2.0));
        hash.insert("a".to_string(), Value::Number(1.0));
        let t = Value::table(vec![Value::Number(9.0)], hash);
        let ks = run("keys", std::slice::from_ref(&t)).unwrap();
        assert_eq!(ks.display(), "{a, b}");
        let vs = run("values", &[t]).unwrap();
        assert_eq!(vs.as_number_array().unwrap(), vec![1.0, 2.0]);
        assert!(run("keys", &[Value::Number(1.0)]).is_err());
    }

    #[test]
    fn unknown_name_returns_none() {
        let mut ctx = HostContext::new();
        assert!(call("launch_missiles", &[], &mut ctx, Pos::default()).is_none());
        assert!(!is_builtin("launch_missiles"));
        assert!(is_builtin("mean"));
    }
}
