//! The compiled form of a script: constant/name pools and function
//! prototypes.

use std::sync::Arc;

use super::instr::{Const, Instr};

/// How a compiled function binds its variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// The function body contains no function literals, so every local
    /// is lexically resolvable and lives in a flat slot frame — the
    /// fast path that makes the VM worth having.
    Slot,
    /// The body creates closures, so locals live in chained by-name
    /// environments that exactly replicate the tree-walker's scope
    /// chains (closures capture an environment reference).
    Env,
}

/// One compiled function: the main chunk (prototype 0) or a function
/// literal.
#[derive(Debug)]
pub(crate) struct FnProto {
    /// Bytecode; always ends in a `Return`/`ReturnNil`.
    pub code: Vec<Instr>,
    /// Parameter names (interned indices), in declaration order. Slot
    /// mode binds them to slots `0..params.len()`; env mode defines
    /// them by name in the call environment.
    pub params: Vec<u32>,
    /// Slot-frame size ([`Mode::Slot`] only; 0 in env mode).
    pub n_slots: u16,
    /// Variable binding strategy.
    pub mode: Mode,
}

/// A compiled script, shareable across phones: the compilation cache
/// hands out `Arc<CompiledModule>` clones, and every run materialises
/// its own runtime state (a `CompiledModule` is immutable and
/// `Send + Sync`; all mutable state lives in the [`super::Vm`]).
#[derive(Debug)]
pub struct CompiledModule {
    /// Interned literals (deduplicated; numbers by bit pattern).
    pub(crate) consts: Vec<Const>,
    /// Interned identifiers (variable, field, and callee names).
    pub(crate) names: Vec<Arc<str>>,
    /// Function prototypes; index 0 is the main chunk.
    pub(crate) protos: Vec<FnProto>,
}

impl CompiledModule {
    /// Total number of bytecode instructions across all prototypes — a
    /// rough code-size figure for logs and benches.
    pub fn code_len(&self) -> usize {
        self.protos.iter().map(|p| p.code.len()).sum()
    }

    /// Number of function prototypes (main chunk included).
    pub fn proto_count(&self) -> usize {
        self.protos.len()
    }
}
