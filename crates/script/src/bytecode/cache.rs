//! The script compilation cache.
//!
//! The sensing server dispatches the *same* script text to every phone
//! in a schedule, so without a cache each phone re-parses, re-analyzes
//! and re-compiles an identical program per dispatch. The cache keys
//! on an FNV fingerprint of the source text, the optimizer flag, and
//! the capability vocabulary (the same collision-safe
//! fingerprint-plus-verify pattern as the server's rank cache), holds
//! `Arc`-shared [`CompiledModule`]s, and evicts least-recently-used
//! entries at a bounded capacity — adversarial many-unique-script
//! loads cannot grow it past its configured size.
//!
//! Static rejections are cached too: a script the analyzer refuses is
//! refused from the cache on every later dispatch without re-running
//! the analyzer.

use std::sync::{Arc, Mutex};

use crate::analysis::{analyze, analyze_block, CapabilitySet, Cost};
use crate::optimize::optimize;
use crate::parser::parse;

use super::compiler::compile;
use super::module::CompiledModule;

/// Default bound on cached entries per cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fingerprint of the capability vocabulary: the analyzer's verdict
/// depends on which host functions exist, so two phones with different
/// sensor stacks must not share cache entries.
fn caps_fingerprint(caps: &CapabilitySet) -> u64 {
    let mut names: Vec<&str> = caps.names().collect();
    names.sort_unstable();
    let mut h = FNV_OFFSET;
    for n in names {
        h = fnv1a(n.as_bytes(), h);
        h = fnv1a(&[0xff], h); // separator, so ["ab"] != ["a","b"]
    }
    h
}

/// Everything the frontend needs to run a cached script: the compiled
/// module plus the static-analysis evidence that was computed once at
/// compile time.
#[derive(Debug)]
pub struct PreparedScript {
    /// The compiled program (of the optimized lowering when the
    /// optimizer flag was on).
    pub module: Arc<CompiledModule>,
    /// The analyzer's cost bound for the *original* source, when
    /// bounded — the figure reported to observability.
    pub static_bound: Option<u64>,
    /// The cost bound of the program as compiled (post-optimizer when
    /// optimizing, else identical to `static_bound`) — the sound fuel
    /// limit for the VM.
    pub exec_bound: Option<u64>,
    /// Optimizer rewrites applied (0 when the flag was off).
    pub opt_rewrites: u64,
    /// `bound(original) - bound(lowered)` when both are finite.
    pub bound_saved: Option<u64>,
    /// Whether the optimizer produced this module.
    pub optimized: bool,
}

/// A cache lookup result: a runnable module or a cached static
/// rejection (the analyzer's findings, joined).
#[derive(Debug, Clone)]
pub enum Prepared {
    /// The script compiled; run it on the VM.
    Ready(Arc<PreparedScript>),
    /// The analyzer rejected the script; the message lists the
    /// error-severity findings.
    Rejected(Arc<str>),
}

/// What one `get_or_prepare` call did, for the caller's metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheOutcome {
    /// Served from cache without compiling.
    pub hit: bool,
    /// A compilation ran (miss on a compilable script).
    pub compiled: bool,
    /// An older entry was evicted to make room.
    pub evicted: bool,
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that had to prepare.
    pub misses: u64,
    /// Entries evicted (LRU or fingerprint collision).
    pub evictions: u64,
    /// Compilations performed (misses that reached the compiler).
    pub compiles: u64,
}

struct Slot {
    key: u64,
    /// Full key material, verified on hit: an FNV collision must never
    /// run the wrong program.
    src: String,
    optimized: bool,
    caps_fp: u64,
    prepared: Prepared,
    last_used: u64,
}

struct Inner {
    slots: Vec<Slot>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

/// A shared, thread-safe script compilation cache. Clones are handles
/// to the same cache, so a simulation world hands one handle to every
/// phone and the whole fleet shares compilations.
#[derive(Clone)]
pub struct ScriptCache {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for ScriptCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("script cache poisoned");
        f.debug_struct("ScriptCache")
            .field("len", &inner.slots.len())
            .field("capacity", &inner.capacity)
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Default for ScriptCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ScriptCache {
    /// A cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A cache bounded to `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        ScriptCache {
            inner: Arc::new(Mutex::new(Inner {
                slots: Vec::new(),
                capacity: capacity.max(1),
                tick: 0,
                stats: CacheStats::default(),
            })),
        }
    }

    /// Looks up (or analyzes, optimizes and compiles) `src` under the
    /// given optimizer flag and capability vocabulary. Preparation runs
    /// under the cache lock, so concurrent phones dispatching the same
    /// script compile it exactly once and the hit/miss counters are
    /// deterministic regardless of thread count.
    pub fn get_or_prepare(
        &self,
        src: &str,
        optimize_flag: bool,
        caps: &CapabilitySet,
    ) -> (Prepared, CacheOutcome) {
        let caps_fp = caps_fingerprint(caps);
        let key = fnv1a(
            &caps_fp.to_le_bytes(),
            fnv1a(&[u8::from(optimize_flag)], fnv1a(src.as_bytes(), FNV_OFFSET)),
        );
        let mut guard = self.inner.lock().expect("script cache poisoned");
        let inner = &mut *guard;
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(idx) = inner.slots.iter().position(|s| s.key == key) {
            let slot = &mut inner.slots[idx];
            if slot.src == src && slot.optimized == optimize_flag && slot.caps_fp == caps_fp {
                slot.last_used = tick;
                let prepared = slot.prepared.clone();
                inner.stats.hits += 1;
                return (prepared, CacheOutcome { hit: true, ..CacheOutcome::default() });
            }
            // Fingerprint collision: drop the stale entry and fall
            // through to a fresh prepare.
            inner.slots.swap_remove(idx);
            inner.stats.evictions += 1;
        }

        inner.stats.misses += 1;
        let prepared = prepare(src, optimize_flag, caps);
        let compiled = matches!(prepared, Prepared::Ready(_));
        if compiled {
            inner.stats.compiles += 1;
        }

        let mut evicted = false;
        if inner.slots.len() >= inner.capacity {
            let lru = inner
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1, so slots is non-empty here");
            inner.slots.swap_remove(lru);
            inner.stats.evictions += 1;
            evicted = true;
        }
        inner.slots.push(Slot {
            key,
            src: src.to_string(),
            optimized: optimize_flag,
            caps_fp,
            prepared: prepared.clone(),
            last_used: tick,
        });
        (prepared, CacheOutcome { hit: false, compiled, evicted })
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("script cache poisoned").stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("script cache poisoned").slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("script cache poisoned").slots.clear();
    }
}

/// The compile pipeline: analyze → (reject | parse → optionally
/// optimize → compile), with the static cost bounds captured alongside
/// the module.
fn prepare(src: &str, optimize_flag: bool, caps: &CapabilitySet) -> Prepared {
    let verdict = analyze(src, caps);
    if verdict.has_errors() {
        let findings: Vec<String> = verdict.errors().map(ToString::to_string).collect();
        return Prepared::Rejected(Arc::from(findings.join("; ")));
    }
    let static_bound = match verdict.cost {
        Cost::Bounded(n) => Some(n),
        Cost::Unbounded => None,
    };
    let Ok(block) = parse(src) else {
        // Unreachable when `analyze` passed (it parses internally), but
        // a parse failure must stay a rejection, not a panic.
        return Prepared::Rejected(Arc::from("script failed to parse"));
    };
    let (module, exec_bound, opt_rewrites, bound_saved) = if optimize_flag {
        let (lowered, stats) = optimize(&block);
        let exec_bound = match analyze_block(&lowered, caps, verdict.budget).cost {
            Cost::Bounded(n) => Some(n),
            Cost::Unbounded => None,
        };
        let bound_saved = match (static_bound, exec_bound) {
            (Some(orig), Some(opt)) => Some(orig.saturating_sub(opt)),
            _ => None,
        };
        (compile(&lowered), exec_bound, stats.total() as u64, bound_saved)
    } else {
        (compile(&block), static_bound, 0, None)
    };
    Prepared::Ready(Arc::new(PreparedScript {
        module: Arc::new(module),
        static_bound,
        exec_bound,
        opt_rewrites,
        bound_saved,
        optimized: optimize_flag,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> CapabilitySet {
        CapabilitySet::standard_sensing()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_module() {
        let cache = ScriptCache::new();
        let (first, o1) = cache.get_or_prepare("return 1 + 1", false, &caps());
        let (second, o2) = cache.get_or_prepare("return 1 + 1", false, &caps());
        assert!(!o1.hit && o1.compiled);
        assert!(o2.hit && !o2.compiled);
        let (Prepared::Ready(a), Prepared::Ready(b)) = (&first, &second) else {
            panic!("expected compiles: {first:?} / {second:?}")
        };
        assert!(Arc::ptr_eq(&a.module, &b.module), "hit must share the compiled module");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0, compiles: 1 });
    }

    #[test]
    fn optimizer_flag_separates_entries() {
        let cache = ScriptCache::new();
        let src = "local scale = 2 * 3\nreturn scale";
        let (_, a) = cache.get_or_prepare(src, false, &caps());
        let (_, b) = cache.get_or_prepare(src, true, &caps());
        assert!(!a.hit && !b.hit, "flag flip must not hit the other entry");
        assert_eq!(cache.len(), 2);
        let (Prepared::Ready(opt), _) = cache.get_or_prepare(src, true, &caps()) else { panic!() };
        assert!(opt.optimized);
        assert!(opt.opt_rewrites > 0, "constant fold expected");
    }

    #[test]
    fn capability_vocabulary_separates_entries() {
        let cache = ScriptCache::new();
        let src = "return 1";
        cache.get_or_prepare(src, false, &caps());
        let (_, o) = cache.get_or_prepare(src, false, &CapabilitySet::new());
        assert!(!o.hit, "different capabilities must not share entries");
    }

    #[test]
    fn rejected_scripts_are_cached_rejections() {
        let cache = ScriptCache::new();
        let src = "steal_contacts()";
        let (first, o1) = cache.get_or_prepare(src, false, &caps());
        let (second, o2) = cache.get_or_prepare(src, false, &caps());
        assert!(matches!(first, Prepared::Rejected(_)));
        assert!(matches!(second, Prepared::Rejected(_)));
        assert!(!o1.compiled, "rejections never reach the compiler");
        assert!(o2.hit, "rejections are cached too");
        assert_eq!(cache.stats().compiles, 0);
    }

    #[test]
    fn adversarial_unique_scripts_stay_bounded() {
        let cache = ScriptCache::with_capacity(8);
        for i in 0..1_000 {
            cache.get_or_prepare(&format!("return {i}"), false, &caps());
            assert!(cache.len() <= 8, "cache grew past capacity at {i}");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1_000);
        assert_eq!(stats.evictions, 1_000 - 8);
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache = ScriptCache::with_capacity(2);
        cache.get_or_prepare("return 1", false, &caps());
        cache.get_or_prepare("return 2", false, &caps());
        // Touch 1 so 2 becomes the LRU victim.
        cache.get_or_prepare("return 1", false, &caps());
        cache.get_or_prepare("return 3", false, &caps());
        let (_, o1) = cache.get_or_prepare("return 1", false, &caps());
        assert!(o1.hit, "recently used entry survived");
        let (_, o2) = cache.get_or_prepare("return 2", false, &caps());
        assert!(!o2.hit, "LRU entry was evicted");
    }

    #[test]
    fn bounds_cover_the_executed_program() {
        let cache = ScriptCache::new();
        let src = "local scale = 2 * 3 - 5\nif 1 > 2 then return 0 end\nreturn scale";
        let (Prepared::Ready(p), _) = cache.get_or_prepare(src, true, &caps()) else { panic!() };
        let (orig, exec) = (p.static_bound.unwrap(), p.exec_bound.unwrap());
        assert!(exec <= orig, "optimized bound must not exceed the original");
        assert_eq!(p.bound_saved, Some(orig - exec));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = ScriptCache::new();
        cache.get_or_prepare("return 1", false, &caps());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
