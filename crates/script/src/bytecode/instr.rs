//! The SenseScript bytecode instruction set.
//!
//! A compact stack-machine ISA with an explicit fuel discipline that
//! reproduces the tree-walker's instruction accounting exactly:
//!
//! * **Cost-1 instructions** carry a [`Pos`] and charge one unit of
//!   fuel when executed — one per AST node the tree-walker would have
//!   charged for ([`Instr::Fuel`] stands in for statement entries and
//!   loop-iteration charges, which have no value-producing node).
//! * **Cost-0 instructions** (jumps, stores, environment bookkeeping,
//!   `*Raw` variants) are pure plumbing the tree-walker never charged
//!   for, so they never touch the fuel counter.
//!
//! Statement charges are emitted pre-order (a `Fuel` before the
//! statement's operand code, exactly where the tree-walker charges);
//! expression charges ride on the value-producing instruction itself,
//! which executes post-order. Both orderings charge the same node
//! multiset on a completed evaluation, and the post-order set is
//! always a subset of the pre-order set at any intermediate error
//! point — which is why the VM's count can never exceed the
//! tree-walker's (the `optdiff` gate enforces equality on success).

use crate::ast::{BinOp, UnOp};
use crate::Pos;

/// One bytecode instruction. Jump targets are absolute indices into
/// the owning prototype's code vector; `u32` indices point into the
/// module's constant, name, and prototype pools.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Instr {
    // ---- cost 1: each charges one fuel unit at `Pos` ----
    /// Pure charge: a statement entry or loop-iteration step.
    Fuel(Pos),
    /// Push the interned constant (a literal expression node).
    Const(u32, Pos),
    /// Push a slot-resolved local.
    LoadSlot(u16, Pos),
    /// Push a dynamically scoped name (env chain walk); errors with
    /// `UndefinedVariable` when no scope and no global defines it.
    LoadDyn(u32, Pos),
    /// Apply a unary operator to the top of stack.
    Unary(UnOp, Pos),
    /// Apply a non-short-circuit binary operator to the top two.
    Binary(BinOp, Pos),
    /// `and`: charge; if top is falsy jump (keeping it as the result),
    /// else pop and fall through to the right operand.
    AndJump(u32, Pos),
    /// `or`: charge; if top is truthy jump (keeping it), else pop.
    OrJump(u32, Pos),
    /// Pop key and table, push `t[k]`.
    IndexGet(Pos),
    /// Push a fresh empty table (the constructor node's charge).
    NewTable(Pos),
    /// Push a closure over prototype `[0]`, capturing the current
    /// environment (a function-literal expression).
    MakeClosure(u32, Pos),
    /// Call a named callee: env chain, then stdlib, then the host
    /// whitelist, else `ForbiddenFunction`. Pops `argc` arguments.
    CallNamed {
        /// Interned callee name.
        name: u32,
        /// Argument count on the stack.
        argc: u8,
        /// Call-site position.
        pos: Pos,
    },
    /// Call the value under the arguments. Pops the callee plus
    /// `argc` arguments.
    CallValue {
        /// Argument count on the stack (callee sits above them).
        argc: u8,
        /// Call-site position.
        pos: Pos,
    },
    /// Generic-for step: if the iterator has a next entry, charge one
    /// fuel (the per-iteration charge), push value (two-variable form)
    /// then key; else pop the iterator state and jump to `exit`.
    IterNext {
        /// Jump target once exhausted.
        exit: u32,
        /// Charge position (the iterable's position).
        pos: Pos,
        /// Whether the loop binds a value variable too.
        push_value: bool,
    },
    /// Numeric-for step: while in range, charge one fuel, push the
    /// control number, and advance; once out of range pop the loop
    /// state and jump to `exit`.
    ForNext {
        /// Jump target once out of range.
        exit: u32,
        /// Charge position (the start expression's position).
        pos: Pos,
    },

    // ---- cost 0: plumbing the tree-walker never charged for ----
    /// Push a constant without charging (synthesised operands, e.g. a
    /// numeric-for's implicit step of 1).
    ConstRaw(u32),
    /// Push nil without charging (implicit `return` values).
    NilRaw,
    /// Push a slot without charging (named-call callee fetch, which
    /// the tree-walker resolves without evaluating a `Var` node).
    LoadSlotRaw(u16),
    /// Discard the top of stack (expression-statement result).
    Pop,
    /// Pop into a slot-resolved local.
    StoreSlot(u16),
    /// Pop and assign the innermost scope that defines the name, else
    /// create a global at the root (Lua assignment semantics).
    StoreDyn(u32),
    /// Pop and define the name in the current environment (a `local`
    /// declaration under dynamic scoping).
    DeclareDyn(u32),
    /// Push a child environment (block entry in env-mode functions).
    PushEnv,
    /// Pop the innermost environment (block exit).
    PopEnv,
    /// Unconditional jump.
    Jump(u32),
    /// Pop the condition; jump when falsy.
    JumpIfFalse(u32),
    /// Assert the top of stack is a number (numeric-for operand
    /// validation; `TypeError` at `Pos` otherwise). Leaves it in place.
    CheckNum(Pos),
    /// Pop step, stop, and start; reject a zero step (`TypeError` at
    /// `Pos`); push numeric loop state.
    ForPrep(Pos),
    /// Pop a table (else `TypeError` at `Pos`) and push its iteration
    /// snapshot as generic-for loop state.
    IterPrep(Pos),
    /// Discard the innermost loop state (`break` out of a `for`).
    PopLoop,
    /// Pop value, key, and table below them; `t[k] = v` assignment.
    IndexSet(Pos),
    /// Pop a value and append it to the table at top of stack
    /// (constructor array part).
    AppendArray,
    /// Pop a value and set it under the interned name on the table at
    /// top of stack (constructor `name = v` entry).
    SetField(u32),
    /// Pop key and value and place them per the constructor
    /// numeric-key rule on the table below (`[expr] = v` entry;
    /// `TypeError` at `Pos` for invalid key types).
    SetFieldExpr(Pos),
    /// Like [`Instr::MakeClosure`] but uncharged (`local function`
    /// statements, whose closure creation the tree-walker performs
    /// without evaluating an expression node).
    MakeClosureRaw(u32),
    /// Pop the return value and leave the frame (`return` statements;
    /// the statement's own charge was a preceding `Fuel`).
    Return,
    /// Leave the frame with nil, uncharged (falling off the end).
    ReturnNil,
}

/// An interned constant. Kept `Send + Sync` (strings as `Arc<str>`)
/// so a [`crate::bytecode::CompiledModule`] can sit in the shared
/// cross-phone compilation cache; the VM materialises per-run
/// [`crate::Value`]s from these once per execution.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Const {
    /// `nil`.
    Nil,
    /// `true` / `false`.
    Bool(bool),
    /// A numeric literal.
    Num(f64),
    /// A string literal.
    Str(std::sync::Arc<str>),
}
