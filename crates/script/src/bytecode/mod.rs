//! Bytecode compilation and execution for SenseScript.
//!
//! The tree-walking [`crate::Interpreter`] re-traverses the AST on
//! every dispatch — fine for one phone, wasteful when a sensing server
//! fans the same script out to a whole fleet. This subsystem splits
//! that cost into a pay-once compile and a cheap run:
//!
//! 1. [`compile`] lowers a parsed (optionally optimizer-lowered) block
//!    to a compact stack-machine program — interned constants and
//!    names, jump-threaded control flow, and slot-resolved locals for
//!    literal-free functions (see `compiler`).
//! 2. [`Vm`] executes a [`CompiledModule`] with the same observable
//!    semantics as the tree-walker: identical values, error kinds,
//!    `print` output, virtual time, and instruction counts. Its budget
//!    is a **fuel limit** the frontend clamps to the static analyzer's
//!    cost bound.
//! 3. [`ScriptCache`] memoises the whole analyze→optimize→compile
//!    pipeline keyed by source text, optimizer flag and capability
//!    vocabulary, so a fleet of phones compiles each script once.
//!
//! The `optdiff` binary cross-checks all three engines (tree-walker,
//! optimized tree-walker, VM) over the lint corpus and fails CI on any
//! divergence.

mod cache;
mod compiler;
mod instr;
mod module;
pub(crate) mod vm;

pub use cache::{
    CacheOutcome, CacheStats, Prepared, PreparedScript, ScriptCache, DEFAULT_CACHE_CAPACITY,
};
pub use compiler::compile;
pub use module::CompiledModule;
pub use vm::{Vm, VmClosure};
