//! The SenseScript bytecode virtual machine.
//!
//! Mirrors the tree-walking [`crate::Interpreter`]'s public surface
//! (host whitelist, virtual-time context, instruction budget, call
//! depth limit) and its observable semantics bit for bit: same return
//! values, same error kinds, same `print` output and virtual time,
//! and an identical instruction count on every completed run. The
//! budget doubles as a **fuel limit**: the frontend clamps it to the
//! static analyzer's cost bound, so a compromised or miscompiled
//! script is cut off at the first instruction past what was proven.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use crate::host::{HostContext, HostRegistry};
use crate::interp::{DEFAULT_BUDGET, DEFAULT_MAX_DEPTH};
use crate::ops;
use crate::stdlib;
use crate::value::Value;
use crate::{Pos, ScriptError};

use super::instr::{Const, Instr};
use super::module::{CompiledModule, Mode};

/// A dynamic scope for env-mode frames: by-name bindings plus a parent
/// link, replicating the tree-walker's scope chain.
#[derive(Debug, Default)]
struct Env {
    vars: HashMap<String, Value>,
    parent: Option<EnvRef>,
}

type EnvRef = Rc<RefCell<Env>>;

fn child_env(parent: &EnvRef) -> EnvRef {
    Rc::new(RefCell::new(Env { vars: HashMap::new(), parent: Some(Rc::clone(parent)) }))
}

fn env_lookup(env: &EnvRef, name: &str) -> Option<Value> {
    let mut cur = Rc::clone(env);
    loop {
        if let Some(v) = cur.borrow().vars.get(name) {
            return Some(v.clone());
        }
        let parent = cur.borrow().parent.clone();
        match parent {
            Some(p) => cur = p,
            None => return None,
        }
    }
}

/// Assigns in the innermost env that defines `name`; false if none do.
fn env_assign_existing(env: &EnvRef, name: &str, value: &Value) -> bool {
    let mut cur = Rc::clone(env);
    loop {
        if let Some(slot) = cur.borrow_mut().vars.get_mut(name) {
            *slot = value.clone();
            return true;
        }
        let parent = cur.borrow().parent.clone();
        match parent {
            Some(p) => cur = p,
            None => return false,
        }
    }
}

/// Defines `name` at the root of `env`'s chain (global creation on
/// assignment, as the tree-walker does).
fn env_define_global(env: &EnvRef, name: &str, value: Value) {
    let mut root = Rc::clone(env);
    loop {
        let parent = root.borrow().parent.clone();
        match parent {
            Some(p) => root = p,
            None => break,
        }
    }
    root.borrow_mut().vars.insert(name.to_string(), value);
}

/// A compiled closure: a prototype index plus the captured environment.
/// Scripts see it as an ordinary function value.
pub struct VmClosure {
    proto: usize,
    env: EnvRef,
}

impl std::fmt::Debug for VmClosure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmClosure").field("proto", &self.proto).finish()
    }
}

/// Per-frame loop state (numeric range or generic-for snapshot).
enum LoopState {
    Num { i: f64, stop: f64, step: f64 },
    Iter { entries: Vec<(Value, Value)>, idx: usize },
}

/// The bytecode VM. Interchangeable with [`crate::Interpreter`] for
/// running compiled scripts — same construction, same knobs, same
/// result accessors.
///
/// # Example
///
/// ```
/// use sor_script::{compile, parser::parse, Value, Vm};
///
/// let block = parse("local s = 0\nfor i = 1, 10 do s = s + i end\nreturn s")?;
/// let module = std::sync::Arc::new(compile(&block));
/// let mut vm = Vm::new();
/// assert_eq!(vm.run_module(&module)?, Value::Number(55.0));
/// # Ok::<(), sor_script::ScriptError>(())
/// ```
#[derive(Debug)]
pub struct Vm {
    host: HostRegistry,
    ctx: HostContext,
    budget: u64,
    remaining: u64,
    max_depth: usize,
    depth: usize,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vm {
    /// A VM with an empty whitelist and the default budget.
    pub fn new() -> Self {
        Vm {
            host: HostRegistry::new(),
            ctx: HostContext::new(),
            budget: DEFAULT_BUDGET,
            remaining: DEFAULT_BUDGET,
            max_depth: DEFAULT_MAX_DEPTH,
            depth: 0,
        }
    }

    /// A VM with a pre-built whitelist.
    pub fn with_host(host: HostRegistry) -> Self {
        Vm { host, ..Self::new() }
    }

    /// Sets the fuel limit for subsequent runs. The frontend passes the
    /// static analyzer's cost bound here (clamped to the default
    /// budget), making the proven bound an enforced runtime contract.
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Sets the maximum script-call nesting depth for subsequent runs.
    pub fn set_max_depth(&mut self, depth: usize) {
        self.max_depth = depth;
    }

    /// Mutable access to the whitelist.
    pub fn host_mut(&mut self) -> &mut HostRegistry {
        &mut self.host
    }

    /// The whitelist.
    pub fn host(&self) -> &HostRegistry {
        &self.host
    }

    /// Captured `print` output of the last run.
    pub fn output(&self) -> &[String] {
        &self.ctx.output
    }

    /// Virtual clock after the last run (seconds).
    pub fn virtual_time(&self) -> f64 {
        self.ctx.virtual_time
    }

    /// Fuel consumed by the last (or current) run. Matches the
    /// tree-walker's [`crate::Interpreter::instructions_used`] exactly
    /// on completed runs — the `optdiff` gate holds the two equal over
    /// the corpus.
    pub fn instructions_used(&self) -> u64 {
        self.budget - self.remaining
    }

    /// Executes a compiled module's main chunk with a fresh context,
    /// fuel tank, and global environment, returning the script's
    /// `return` value (nil if it fell off the end).
    ///
    /// # Errors
    ///
    /// Any runtime [`ScriptError`]; out-of-fuel surfaces as
    /// [`ScriptError::BudgetExhausted`], same as the tree-walker.
    pub fn run_module(&mut self, module: &Arc<CompiledModule>) -> Result<Value, ScriptError> {
        self.ctx = HostContext::new();
        self.remaining = self.budget;
        self.depth = 0;
        // Materialise the shared (Send+Sync) constant pool into cheap
        // per-run runtime values once.
        let consts: Vec<Value> = module
            .consts
            .iter()
            .map(|c| match c {
                Const::Nil => Value::Nil,
                Const::Bool(b) => Value::Bool(*b),
                Const::Num(n) => Value::Number(*n),
                Const::Str(s) => Value::str(s.as_ref()),
            })
            .collect();
        let root: EnvRef = Rc::new(RefCell::new(Env::default()));
        let main = &module.protos[0];
        let slots = vec![Value::Nil; main.n_slots as usize];
        // The main chunk runs directly in the root environment (the
        // tree-walker executes the top block in the global scope).
        self.exec_frame(module, &consts, 0, slots, root)
    }

    fn charge(&mut self, at: Pos) -> Result<(), ScriptError> {
        if self.remaining == 0 {
            return Err(ScriptError::BudgetExhausted { budget: self.budget, at });
        }
        self.remaining -= 1;
        Ok(())
    }

    fn call_value(
        &mut self,
        m: &CompiledModule,
        consts: &[Value],
        f: Value,
        args: &[Value],
        pos: Pos,
    ) -> Result<Value, ScriptError> {
        match f {
            Value::Compiled(closure) => {
                if self.depth >= self.max_depth {
                    return Err(ScriptError::CallDepthExceeded { limit: self.max_depth, at: pos });
                }
                self.depth += 1;
                let proto = &m.protos[closure.proto];
                let result = match proto.mode {
                    Mode::Slot => {
                        let mut slots = vec![Value::Nil; proto.n_slots as usize];
                        for (i, slot) in slots.iter_mut().enumerate().take(proto.params.len()) {
                            *slot = args.get(i).cloned().unwrap_or(Value::Nil);
                        }
                        self.exec_frame(m, consts, closure.proto, slots, Rc::clone(&closure.env))
                    }
                    Mode::Env => {
                        let env = child_env(&closure.env);
                        for (i, &p) in proto.params.iter().enumerate() {
                            env.borrow_mut().vars.insert(
                                m.names[p as usize].to_string(),
                                args.get(i).cloned().unwrap_or(Value::Nil),
                            );
                        }
                        self.exec_frame(m, consts, closure.proto, Vec::new(), env)
                    }
                }?;
                self.depth -= 1;
                Ok(result)
            }
            other => Err(ScriptError::TypeError {
                message: format!("attempt to call a {} value", other.type_name()),
                at: pos,
            }),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_frame(
        &mut self,
        m: &CompiledModule,
        consts: &[Value],
        proto: usize,
        mut slots: Vec<Value>,
        base_env: EnvRef,
    ) -> Result<Value, ScriptError> {
        let code = &m.protos[proto].code;
        let mut pc = 0usize;
        let mut stack: Vec<Value> = Vec::new();
        let mut envs: Vec<EnvRef> = vec![base_env];
        let mut loops: Vec<LoopState> = Vec::new();
        // Small helpers keep the dispatch arms flat. Stack discipline
        // is guaranteed by the compiler, so underflows are bugs — the
        // expect messages say which invariant broke.
        macro_rules! pop {
            () => {
                stack.pop().expect("compiler bug: value stack underflow")
            };
        }
        loop {
            let instr = &code[pc];
            pc += 1;
            match instr {
                Instr::Fuel(p) => self.charge(*p)?,
                Instr::Const(i, p) => {
                    self.charge(*p)?;
                    stack.push(consts[*i as usize].clone());
                }
                Instr::ConstRaw(i) => stack.push(consts[*i as usize].clone()),
                Instr::NilRaw => stack.push(Value::Nil),
                Instr::LoadSlot(s, p) => {
                    self.charge(*p)?;
                    stack.push(slots[*s as usize].clone());
                }
                Instr::LoadSlotRaw(s) => stack.push(slots[*s as usize].clone()),
                Instr::LoadDyn(n, p) => {
                    self.charge(*p)?;
                    let name = &m.names[*n as usize];
                    let cur = envs.last().expect("base env never popped");
                    match env_lookup(cur, name) {
                        Some(v) => stack.push(v),
                        None => {
                            return Err(ScriptError::UndefinedVariable {
                                name: name.to_string(),
                                at: *p,
                            })
                        }
                    }
                }
                Instr::Unary(op, p) => {
                    self.charge(*p)?;
                    let v = pop!();
                    stack.push(ops::apply_unary(*op, v, *p)?);
                }
                Instr::Binary(op, p) => {
                    self.charge(*p)?;
                    let r = pop!();
                    let l = pop!();
                    stack.push(ops::apply_binary(*op, l, r, *p)?);
                }
                Instr::AndJump(t, p) => {
                    self.charge(*p)?;
                    if stack.last().expect("compiler bug: and without lhs").truthy() {
                        pop!();
                    } else {
                        pc = *t as usize;
                    }
                }
                Instr::OrJump(t, p) => {
                    self.charge(*p)?;
                    if stack.last().expect("compiler bug: or without lhs").truthy() {
                        pc = *t as usize;
                    } else {
                        pop!();
                    }
                }
                Instr::IndexGet(p) => {
                    self.charge(*p)?;
                    let k = pop!();
                    let t = pop!();
                    stack.push(ops::index_get(&t, &k, *p)?);
                }
                Instr::NewTable(p) => {
                    self.charge(*p)?;
                    stack.push(Value::table(Vec::new(), HashMap::new()));
                }
                Instr::MakeClosure(pi, p) => {
                    self.charge(*p)?;
                    let env = Rc::clone(envs.last().expect("base env never popped"));
                    stack.push(Value::Compiled(Rc::new(VmClosure { proto: *pi as usize, env })));
                }
                Instr::MakeClosureRaw(pi) => {
                    let env = Rc::clone(envs.last().expect("base env never popped"));
                    stack.push(Value::Compiled(Rc::new(VmClosure { proto: *pi as usize, env })));
                }
                Instr::CallNamed { name, argc, pos } => {
                    self.charge(*pos)?;
                    let args = stack.split_off(stack.len() - *argc as usize);
                    let nm = &m.names[*name as usize];
                    // Same resolution order as the tree-walker: scope
                    // chain, stdlib builtins, host whitelist.
                    let cur = envs.last().expect("base env never popped");
                    let result = if let Some(v) = env_lookup(cur, nm) {
                        self.call_value(m, consts, v, &args, *pos)?
                    } else if let Some(res) = stdlib::call(nm, &args, &mut self.ctx, *pos) {
                        res?
                    } else if let Some(f) = self.host.get(nm) {
                        f(&mut self.ctx, &args)
                            .map_err(|message| ScriptError::HostError { message, at: *pos })?
                    } else {
                        return Err(ScriptError::ForbiddenFunction {
                            name: nm.to_string(),
                            at: *pos,
                        });
                    };
                    stack.push(result);
                }
                Instr::CallValue { argc, pos } => {
                    self.charge(*pos)?;
                    let callee = pop!();
                    let args = stack.split_off(stack.len() - *argc as usize);
                    let result = self.call_value(m, consts, callee, &args, *pos)?;
                    stack.push(result);
                }
                Instr::Pop => {
                    pop!();
                }
                Instr::StoreSlot(s) => {
                    slots[*s as usize] = pop!();
                }
                Instr::StoreDyn(n) => {
                    let v = pop!();
                    let name = &m.names[*n as usize];
                    let cur = envs.last().expect("base env never popped");
                    if !env_assign_existing(cur, name, &v) {
                        env_define_global(cur, name, v);
                    }
                }
                Instr::DeclareDyn(n) => {
                    let v = pop!();
                    let name = &m.names[*n as usize];
                    envs.last()
                        .expect("base env never popped")
                        .borrow_mut()
                        .vars
                        .insert(name.to_string(), v);
                }
                Instr::PushEnv => {
                    let child = child_env(envs.last().expect("base env never popped"));
                    envs.push(child);
                }
                Instr::PopEnv => {
                    envs.pop();
                }
                Instr::Jump(t) => pc = *t as usize,
                Instr::JumpIfFalse(t) => {
                    if !pop!().truthy() {
                        pc = *t as usize;
                    }
                }
                Instr::CheckNum(p) => {
                    let top = stack.last().expect("compiler bug: checknum on empty stack");
                    if top.as_number().is_none() {
                        return Err(ScriptError::TypeError {
                            message: format!("expected number, got {}", top.type_name()),
                            at: *p,
                        });
                    }
                }
                Instr::ForPrep(p) => {
                    let step = pop!().as_number().expect("checked by CheckNum");
                    let stop = pop!().as_number().expect("checked by CheckNum");
                    let start = pop!().as_number().expect("checked by CheckNum");
                    if step == 0.0 {
                        return Err(ScriptError::TypeError {
                            message: "for-loop step must be non-zero".to_string(),
                            at: *p,
                        });
                    }
                    loops.push(LoopState::Num { i: start, stop, step });
                }
                Instr::ForNext { exit, pos } => {
                    let LoopState::Num { i, stop, step } =
                        loops.last_mut().expect("compiler bug: ForNext without ForPrep")
                    else {
                        unreachable!("compiler bug: ForNext on iterator state")
                    };
                    if (*step > 0.0 && *i <= *stop) || (*step < 0.0 && *i >= *stop) {
                        // The per-iteration charge, then the control
                        // value for the loop variable binding.
                        self.charge(*pos)?;
                        stack.push(Value::Number(*i));
                        *i += *step;
                    } else {
                        loops.pop();
                        pc = *exit as usize;
                    }
                }
                Instr::IterPrep(p) => {
                    let v = pop!();
                    let Value::Table(t) = v else {
                        return Err(ScriptError::TypeError {
                            message: format!("generic for expects a table, got {}", v.type_name()),
                            at: *p,
                        });
                    };
                    loops.push(LoopState::Iter { entries: ops::iteration_snapshot(&t), idx: 0 });
                }
                Instr::IterNext { exit, pos, push_value } => {
                    let LoopState::Iter { entries, idx } =
                        loops.last_mut().expect("compiler bug: IterNext without IterPrep")
                    else {
                        unreachable!("compiler bug: IterNext on numeric state")
                    };
                    if *idx < entries.len() {
                        let (k, v) = entries[*idx].clone();
                        *idx += 1;
                        self.charge(*pos)?;
                        // Key on top: the binding sequence stores key
                        // first, then value.
                        if *push_value {
                            stack.push(v);
                        }
                        stack.push(k);
                    } else {
                        loops.pop();
                        pc = *exit as usize;
                    }
                }
                Instr::PopLoop => {
                    loops.pop();
                }
                Instr::IndexSet(p) => {
                    let k = pop!();
                    let t = pop!();
                    let v = pop!();
                    ops::index_set(&t, &k, v, *p)?;
                }
                Instr::AppendArray => {
                    let v = pop!();
                    let Some(Value::Table(t)) = stack.last() else {
                        unreachable!("compiler bug: AppendArray without table")
                    };
                    t.borrow_mut().array.push(v);
                }
                Instr::SetField(n) => {
                    let v = pop!();
                    let Some(Value::Table(t)) = stack.last() else {
                        unreachable!("compiler bug: SetField without table")
                    };
                    t.borrow_mut().hash.insert(m.names[*n as usize].to_string(), v);
                }
                Instr::SetFieldExpr(p) => {
                    let k = pop!();
                    let v = pop!();
                    let Some(Value::Table(t)) = stack.last() else {
                        unreachable!("compiler bug: SetFieldExpr without table")
                    };
                    let mut t = t.borrow_mut();
                    match ops::constructor_slot(&k, t.array.len(), *p)? {
                        ops::ConstructorSlot::Append => t.array.push(v),
                        ops::ConstructorSlot::Hash(key) => {
                            t.hash.insert(key, v);
                        }
                    }
                }
                Instr::Return => return Ok(pop!()),
                Instr::ReturnNil => return Ok(Value::Nil),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::compiler::compile;
    use super::*;
    use crate::interp::Interpreter;
    use crate::parser::parse;

    fn run_vm(src: &str) -> Result<Value, ScriptError> {
        let module = Arc::new(compile(&parse(src).expect("test script parses")));
        Vm::new().run_module(&module)
    }

    /// Both engines, same source: equal results and instruction counts.
    fn assert_engines_agree(src: &str) {
        let mut interp = Interpreter::new();
        let tree = interp.run(src).expect("tree-walker succeeds");
        let module = Arc::new(compile(&parse(src).unwrap()));
        let mut vm = Vm::new();
        let byte = vm.run_module(&module).expect("vm succeeds");
        assert_eq!(tree, byte, "results diverge for {src:?}");
        assert_eq!(
            interp.instructions_used(),
            vm.instructions_used(),
            "instruction counts diverge for {src:?}"
        );
        assert_eq!(interp.output(), vm.output(), "print output diverges for {src:?}");
    }

    #[test]
    fn slot_mode_basics_match_tree_walker() {
        for src in [
            "return 1 + 2 * 3",
            "local x = 1\nx = x + 1\nreturn x",
            "local s = 0\nfor i = 1, 10 do s = s + i end\nreturn s",
            "local s = 0\nfor i = 10, 1, -3 do s = s + i end\nreturn s",
            "local i = 0\nwhile i < 5 do i = i + 1 end\nreturn i",
            "local t = {10, 20, x = 7}\nreturn t[2] + t.x + #t",
            "return 'a' .. 'b' .. 1",
            "return nil and error('never') or 7",
            "local s = ''\nfor k, v in {b = 2, a = 1} do s = s .. k .. v end\nreturn s",
            "if 1 > 2 then return 'a' elseif 2 > 1 then return 'b' else return 'c' end",
            "print('x', 1)\nreturn 0",
        ] {
            assert_engines_agree(src);
        }
    }

    #[test]
    fn env_mode_closures_match_tree_walker() {
        assert_engines_agree(
            r#"
            local function make_counter()
                local n = 0
                return function()
                    n = n + 1
                    return n
                end
            end
            local c = make_counter()
            c()
            c()
            return c()
        "#,
        );
        assert_engines_agree(
            r#"
            local function fib(n)
                if n < 2 then return n end
                return fib(n - 1) + fib(n - 2)
            end
            return fib(12)
        "#,
        );
        assert_engines_agree(
            r#"
            local function apply(f, x) return f(x) end
            return apply(function(v) return v * 10 end, 4)
        "#,
        );
    }

    #[test]
    fn global_creation_on_assignment_matches() {
        assert_engines_agree("if true then g = 5 end\nreturn g");
        assert_engines_agree("x = 5\nlocal x = 1\nreturn x");
    }

    #[test]
    fn error_kinds_match_tree_walker() {
        for src in [
            "return never_defined",
            "for i = 1, 5, 0 do end",
            "local t = {}\nt[100] = 1",
            "for k, v in 5 do end",
            "local x = 5\nx()",
            "os_execute('rm')",
        ] {
            let tree = Interpreter::new().run(src).expect_err("tree-walker errors");
            let byte = run_vm(src).expect_err("vm errors");
            assert_eq!(
                std::mem::discriminant(&tree),
                std::mem::discriminant(&byte),
                "error kinds diverge for {src:?}: {tree:?} vs {byte:?}"
            );
        }
    }

    #[test]
    fn fuel_exhaustion_is_deterministic() {
        let module = Arc::new(compile(&parse("while true do end").unwrap()));
        let mut vm = Vm::new();
        vm.set_budget(10_000);
        assert!(matches!(
            vm.run_module(&module),
            Err(ScriptError::BudgetExhausted { budget: 10_000, .. })
        ));
        assert_eq!(vm.instructions_used(), 10_000);
        // Same module, same fuel: the identical outcome again.
        assert!(matches!(
            vm.run_module(&module),
            Err(ScriptError::BudgetExhausted { budget: 10_000, .. })
        ));
    }

    #[test]
    fn vm_never_exceeds_tree_walker_fuel_on_errors() {
        // On error paths the VM's post-order expression charging may
        // under-count relative to the pre-order tree-walker, never
        // over-count.
        for src in ["return 1 + never_defined", "local t = {1, unbound, 3}"] {
            let mut interp = Interpreter::new();
            interp.run(src).expect_err("errors");
            let module = Arc::new(compile(&parse(src).unwrap()));
            let mut vm = Vm::new();
            vm.run_module(&module).expect_err("errors");
            assert!(
                vm.instructions_used() <= interp.instructions_used(),
                "vm overcharged for {src:?}"
            );
        }
    }

    #[test]
    fn depth_limit_matches() {
        let src = r#"
            local function down(n)
                if n == 0 then return 0 end
                return down(n - 1)
            end
            return down(100000)
        "#;
        assert!(matches!(
            run_vm(src),
            Err(ScriptError::CallDepthExceeded { limit: DEFAULT_MAX_DEPTH, .. })
        ));
    }

    #[test]
    fn break_unwinds_envs_and_loop_state() {
        assert_engines_agree(
            r#"
            local out = 0
            for i = 1, 10 do
                if i == 4 then
                    local hidden = 1
                    break
                end
                out = out + i
            end
            while true do break end
            return out
        "#,
        );
        // A closure in scope forces env mode for the whole chunk.
        assert_engines_agree(
            r#"
            local f = function() return 1 end
            local out = 0
            for i = 1, 10 do
                if i == 4 then break end
                out = out + f()
            end
            return out
        "#,
        );
    }

    #[test]
    fn host_functions_and_virtual_time_match() {
        let src = "local r = light(3)\nreturn mean(r)";
        let register = |host: &mut HostRegistry| {
            host.register("light", |ctx, args| {
                let n = args.first().and_then(Value::as_number).unwrap_or(1.0) as usize;
                ctx.virtual_time += n as f64 * 0.5;
                Ok(Value::number_array(&vec![7.0; n]))
            });
        };
        let mut interp = Interpreter::new();
        register(interp.host_mut());
        let tree = interp.run(src).unwrap();

        let module = Arc::new(compile(&parse(src).unwrap()));
        let mut vm = Vm::new();
        register(vm.host_mut());
        let byte = vm.run_module(&module).unwrap();

        assert_eq!(tree, byte);
        assert!((interp.virtual_time() - vm.virtual_time()).abs() < 1e-12);
        assert_eq!(interp.instructions_used(), vm.instructions_used());
    }

    #[test]
    fn same_name_loop_vars_take_the_value() {
        assert_engines_agree("local s = 0\nfor x, x in {5, 6} do s = s + x end\nreturn s");
    }

    #[test]
    fn table_constructor_expr_keys_match() {
        assert_engines_agree(
            "local t = {[1] = 'a', [2] = 'b', [10] = 'c'}\nreturn t[2] .. t['10']",
        );
    }
}
