//! Lowers a parsed (and possibly optimized) AST to bytecode.
//!
//! Each function is compiled in one of two binding modes (see
//! [`Mode`]): literal-free bodies get flat slot frames with
//! compile-time lexical resolution; bodies that create closures fall
//! back to dynamic by-name environments that replicate the
//! tree-walker's scope chains instruction for instruction. The split
//! is per function, so a hot literal-free helper inside a
//! closure-heavy script still runs on the fast path.
//!
//! Fuel emission mirrors the interpreter's charge points exactly: one
//! [`Instr::Fuel`] per statement entry (pre-order), one charged
//! instruction per expression node (post-order), and the loop-step
//! instructions charge once per iteration. On a completed run the two
//! engines therefore count identical instruction totals — the
//! `optdiff` three-way gate enforces this over the whole corpus.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{BinOp, Block, Expr, Stmt, TableKey, Target};

use super::instr::{Const, Instr};
use super::module::{CompiledModule, FnProto, Mode};

/// Compiles a parsed block into an immutable, shareable module.
/// Prototype 0 is the main chunk; function literals become further
/// prototypes referenced by `MakeClosure` instructions.
pub fn compile(block: &Block) -> CompiledModule {
    let mut c = Compiler::default();
    let main = c.compile_function(&[], block);
    debug_assert_eq!(main, 0, "main chunk must be prototype 0");
    CompiledModule { consts: c.consts, names: c.names, protos: c.protos }
}

/// Hashable identity of a constant for pool interning (`f64` by bit
/// pattern, so `0.0` and `-0.0` intern separately and NaN is stable).
#[derive(Hash, PartialEq, Eq)]
enum ConstKey {
    Nil,
    Bool(bool),
    Num(u64),
    Str(String),
}

#[derive(Default)]
struct Compiler {
    consts: Vec<Const>,
    const_ids: HashMap<ConstKey, u32>,
    names: Vec<Arc<str>>,
    name_ids: HashMap<String, u32>,
    protos: Vec<FnProto>,
}

impl Compiler {
    fn intern_const(&mut self, key: ConstKey) -> u32 {
        if let Some(&id) = self.const_ids.get(&key) {
            return id;
        }
        let c = match &key {
            ConstKey::Nil => Const::Nil,
            ConstKey::Bool(b) => Const::Bool(*b),
            ConstKey::Num(bits) => Const::Num(f64::from_bits(*bits)),
            ConstKey::Str(s) => Const::Str(Arc::from(s.as_str())),
        };
        let id = self.consts.len() as u32;
        self.consts.push(c);
        self.const_ids.insert(key, id);
        id
    }

    fn intern_name(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(Arc::from(name));
        self.name_ids.insert(name.to_string(), id);
        id
    }

    /// Compiles one function (or the main chunk) and returns its
    /// prototype index. Reserves the slot up front so the main chunk
    /// is always prototype 0 even though nested literals finish first.
    fn compile_function(&mut self, params: &[String], body: &Block) -> u32 {
        let idx = self.protos.len() as u32;
        self.protos.push(FnProto {
            code: Vec::new(),
            params: Vec::new(),
            n_slots: 0,
            mode: Mode::Env,
        });
        let mode = if block_creates_functions(body) { Mode::Env } else { Mode::Slot };
        let param_ids: Vec<u32> = params.iter().map(|p| self.intern_name(p)).collect();

        let mut f = FnCompiler {
            shared: self,
            code: Vec::new(),
            mode,
            scopes: vec![HashMap::new()],
            next_slot: 0,
            env_depth: 0,
            loops: Vec::new(),
        };
        if mode == Mode::Slot {
            // Params live in slots 0..n, in the same lexical block as
            // the body's top-level locals (the tree-walker defines both
            // in the call scope).
            for p in params {
                f.declare_slot(p);
            }
        }
        f.block(body);
        f.code.push(Instr::ReturnNil);
        let (code, n_slots) = (f.code, f.next_slot);
        let proto = &mut self.protos[idx as usize];
        proto.code = code;
        proto.params = param_ids;
        proto.n_slots = n_slots;
        proto.mode = mode;
        idx
    }
}

/// Per-loop compile state: where `break` jumps to and how much scope
/// unwinding it must emit to get there.
struct LoopCtx {
    /// `for` loops keep iteration state on the loop stack; `break`
    /// must discard it (`while` loops keep nothing).
    is_for: bool,
    /// Environment depth at the jump target, so `break` inside nested
    /// blocks pops back down before leaving.
    env_depth: u32,
    /// `Jump` indices to patch to the loop exit.
    break_jumps: Vec<usize>,
}

struct FnCompiler<'a> {
    shared: &'a mut Compiler,
    code: Vec<Instr>,
    mode: Mode,
    /// Lexical blocks for slot resolution (slot mode; also tracked in
    /// env mode but unused there).
    scopes: Vec<HashMap<String, u16>>,
    /// Monotonic slot allocator — slots are never reused, which keeps
    /// resolution trivially correct under shadowing.
    next_slot: u16,
    /// Compile-time environment nesting (env mode), for `break`
    /// unwinding.
    env_depth: u32,
    loops: Vec<LoopCtx>,
}

impl FnCompiler<'_> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        match &mut self.code[at] {
            Instr::Jump(t)
            | Instr::JumpIfFalse(t)
            | Instr::AndJump(t, _)
            | Instr::OrJump(t, _)
            | Instr::ForNext { exit: t, .. }
            | Instr::IterNext { exit: t, .. } => *t = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }

    fn declare_slot(&mut self, name: &str) -> u16 {
        let slot = self.next_slot;
        self.next_slot = self.next_slot.checked_add(1).expect("script exceeds 65536 locals");
        self.scopes.last_mut().expect("scope stack never empty").insert(name.to_string(), slot);
        slot
    }

    fn resolve_slot(&self, name: &str) -> Option<u16> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Compiles a nested block with its own lexical scope: a child
    /// environment in env mode, a shadowing slot scope in slot mode.
    /// `bind` runs after scope entry to declare loop variables.
    fn scoped_block(&mut self, body: &Block, bind: impl FnOnce(&mut Self)) {
        self.enter_scope();
        bind(self);
        self.block(body);
        self.exit_scope();
    }

    fn enter_scope(&mut self) {
        self.scopes.push(HashMap::new());
        if self.mode == Mode::Env {
            self.emit(Instr::PushEnv);
            self.env_depth += 1;
        }
    }

    fn exit_scope(&mut self) {
        self.scopes.pop();
        if self.mode == Mode::Env {
            self.emit(Instr::PopEnv);
            self.env_depth -= 1;
        }
    }

    fn block(&mut self, block: &Block) {
        for stmt in block {
            self.stmt(stmt);
        }
    }

    /// Declares `name` and emits the store for a value already on the
    /// stack (locals and loop variables).
    fn declare_and_store(&mut self, name: &str) {
        if self.mode == Mode::Slot {
            let slot = self.declare_slot(name);
            self.emit(Instr::StoreSlot(slot));
        } else {
            let n = self.shared.intern_name(name);
            self.emit(Instr::DeclareDyn(n));
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        self.emit(Instr::Fuel(stmt.pos()));
        match stmt {
            Stmt::Local { name, init, .. } => {
                match init {
                    Some(e) => self.expr(e),
                    None => {
                        self.emit(Instr::NilRaw);
                    }
                }
                // Declared after the initializer compiles, so `local x
                // = x` reads the outer binding (interpreter order).
                self.declare_and_store(name);
            }
            Stmt::LocalFunction { name, params, body, .. } => {
                // A function literal forced env mode for this body.
                let n = self.shared.intern_name(name);
                // Pre-declare as nil so the body can recurse, then
                // rebind to the closure — the tree-walker's two
                // `define` calls.
                self.emit(Instr::NilRaw);
                self.emit(Instr::DeclareDyn(n));
                let proto = self.shared.compile_function(params, body);
                self.emit(Instr::MakeClosureRaw(proto));
                self.emit(Instr::DeclareDyn(n));
            }
            Stmt::Assign { target, value, pos } => {
                self.expr(value);
                match target {
                    Target::Name(name) => match self.resolve_slot(name) {
                        Some(slot) if self.mode == Mode::Slot => {
                            self.emit(Instr::StoreSlot(slot));
                        }
                        _ => {
                            let n = self.shared.intern_name(name);
                            self.emit(Instr::StoreDyn(n));
                        }
                    },
                    Target::Index { table, key } => {
                        // Interpreter evaluation order: value, table, key.
                        self.expr(table);
                        self.expr(key);
                        self.emit(Instr::IndexSet(*pos));
                    }
                }
            }
            Stmt::ExprStmt(e) => {
                self.expr(e);
                self.emit(Instr::Pop);
            }
            Stmt::If { arms, otherwise } => {
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    self.expr(cond);
                    let skip = self.emit(Instr::JumpIfFalse(0));
                    self.scoped_block(body, |_| {});
                    end_jumps.push(self.emit(Instr::Jump(0)));
                    self.patch(skip);
                }
                if let Some(body) = otherwise {
                    self.scoped_block(body, |_| {});
                }
                for j in end_jumps {
                    self.patch(j);
                }
            }
            Stmt::While { cond, body } => {
                let head = self.here();
                self.expr(cond);
                let exit_jump = self.emit(Instr::JumpIfFalse(0));
                // The tree-walker charges once more per iteration at
                // the condition's position, after it proves truthy.
                self.emit(Instr::Fuel(cond.pos()));
                self.loops.push(LoopCtx {
                    is_for: false,
                    env_depth: self.env_depth,
                    break_jumps: Vec::new(),
                });
                self.scoped_block(body, |_| {});
                self.emit(Instr::Jump(head));
                self.patch(exit_jump);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j);
                }
            }
            Stmt::NumericFor { var, start, stop, step, body } => {
                let pos = start.pos();
                self.expr(start);
                self.emit(Instr::CheckNum(pos));
                self.expr(stop);
                self.emit(Instr::CheckNum(stop.pos()));
                match step {
                    Some(e) => {
                        self.expr(e);
                        self.emit(Instr::CheckNum(e.pos()));
                    }
                    None => {
                        let one = self.shared.intern_const(ConstKey::Num(1f64.to_bits()));
                        self.emit(Instr::ConstRaw(one));
                    }
                }
                self.emit(Instr::ForPrep(pos));
                let head = self.here();
                let next = self.emit(Instr::ForNext { exit: 0, pos });
                self.loops.push(LoopCtx {
                    is_for: true,
                    env_depth: self.env_depth,
                    break_jumps: Vec::new(),
                });
                self.scoped_block(body, |f| f.declare_and_store(var));
                self.emit(Instr::Jump(head));
                self.patch(next);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j);
                }
            }
            Stmt::GenericFor { key_var, value_var, iterable, body } => {
                let pos = iterable.pos();
                self.expr(iterable);
                self.emit(Instr::IterPrep(pos));
                let head = self.here();
                let next =
                    self.emit(Instr::IterNext { exit: 0, pos, push_value: value_var.is_some() });
                self.loops.push(LoopCtx {
                    is_for: true,
                    env_depth: self.env_depth,
                    break_jumps: Vec::new(),
                });
                // IterNext leaves [value, key] with the key on top;
                // binding key first then value makes the value win for
                // `for x, x in t`, as the tree-walker's map insert does.
                self.scoped_block(body, |f| {
                    f.declare_and_store(key_var);
                    if let Some(v) = value_var {
                        f.declare_and_store(v);
                    }
                });
                self.emit(Instr::Jump(head));
                self.patch(next);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for j in ctx.break_jumps {
                    self.patch(j);
                }
            }
            Stmt::Break(_) => {
                match self.loops.last() {
                    Some(ctx) => {
                        let pops = self.env_depth - ctx.env_depth;
                        let is_for = ctx.is_for;
                        for _ in 0..pops {
                            self.emit(Instr::PopEnv);
                        }
                        if is_for {
                            self.emit(Instr::PopLoop);
                        }
                        let j = self.emit(Instr::Jump(0));
                        self.loops.last_mut().expect("checked above").break_jumps.push(j);
                    }
                    None => {
                        // A stray `break` propagates Flow::Break to the
                        // top of the function, which the tree-walker
                        // turns into a nil result.
                        self.emit(Instr::ReturnNil);
                    }
                }
            }
            Stmt::Return(e, _) => {
                match e {
                    Some(e) => self.expr(e),
                    None => {
                        self.emit(Instr::NilRaw);
                    }
                }
                self.emit(Instr::Return);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Nil(pos) => {
                let c = self.shared.intern_const(ConstKey::Nil);
                self.emit(Instr::Const(c, *pos));
            }
            Expr::Bool(b, pos) => {
                let c = self.shared.intern_const(ConstKey::Bool(*b));
                self.emit(Instr::Const(c, *pos));
            }
            Expr::Number(n, pos) => {
                let c = self.shared.intern_const(ConstKey::Num(n.to_bits()));
                self.emit(Instr::Const(c, *pos));
            }
            Expr::Str(s, pos) => {
                let c = self.shared.intern_const(ConstKey::Str(s.clone()));
                self.emit(Instr::Const(c, *pos));
            }
            Expr::Var(name, pos) => match self.resolve_slot(name) {
                Some(slot) if self.mode == Mode::Slot => {
                    self.emit(Instr::LoadSlot(slot, *pos));
                }
                _ => {
                    let n = self.shared.intern_name(name);
                    self.emit(Instr::LoadDyn(n, *pos));
                }
            },
            Expr::Unary { op, expr, pos } => {
                self.expr(expr);
                self.emit(Instr::Unary(*op, *pos));
            }
            Expr::Binary { op, lhs, rhs, pos } => match op {
                BinOp::And => {
                    self.expr(lhs);
                    let short = self.emit(Instr::AndJump(0, *pos));
                    self.expr(rhs);
                    self.patch(short);
                }
                BinOp::Or => {
                    self.expr(lhs);
                    let short = self.emit(Instr::OrJump(0, *pos));
                    self.expr(rhs);
                    self.patch(short);
                }
                _ => {
                    self.expr(lhs);
                    self.expr(rhs);
                    self.emit(Instr::Binary(*op, *pos));
                }
            },
            Expr::Index { table, key, pos } => {
                self.expr(table);
                self.expr(key);
                self.emit(Instr::IndexGet(*pos));
            }
            Expr::Table { array, hash, pos } => {
                // The constructor node's own charge comes first (the
                // tree-walker charges it before evaluating entries).
                self.emit(Instr::NewTable(*pos));
                for e in array {
                    self.expr(e);
                    self.emit(Instr::AppendArray);
                }
                for (k, ve) in hash {
                    self.expr(ve);
                    match k {
                        TableKey::Name(n) => {
                            let n = self.shared.intern_name(n);
                            self.emit(Instr::SetField(n));
                        }
                        TableKey::Expr(ke) => {
                            self.expr(ke);
                            self.emit(Instr::SetFieldExpr(ke.pos()));
                        }
                    }
                }
            }
            Expr::Function { params, body, pos } => {
                let proto = self.shared.compile_function(params, body);
                self.emit(Instr::MakeClosure(proto, *pos));
            }
            Expr::Call { callee, args, pos } => {
                for a in args {
                    self.expr(a);
                }
                let argc = u8::try_from(args.len()).expect("more than 255 call arguments");
                if let Expr::Var(name, _) = callee.as_ref() {
                    // The tree-walker resolves a named callee *after*
                    // evaluating the arguments and without charging for
                    // the name — hence the raw load here.
                    match self.resolve_slot(name) {
                        Some(slot) if self.mode == Mode::Slot => {
                            self.emit(Instr::LoadSlotRaw(slot));
                            self.emit(Instr::CallValue { argc, pos: *pos });
                        }
                        _ => {
                            let n = self.shared.intern_name(name);
                            self.emit(Instr::CallNamed { name: n, argc, pos: *pos });
                        }
                    }
                } else {
                    self.expr(callee);
                    self.emit(Instr::CallValue { argc, pos: *pos });
                }
            }
        }
    }
}

/// Whether a block contains a function literal (`function` expression
/// or `local function` statement) outside nested function bodies —
/// the trigger for env-mode compilation. Nested bodies pick their own
/// mode, so the walk stops at each literal rather than descending.
fn block_creates_functions(block: &Block) -> bool {
    block.iter().any(stmt_creates_functions)
}

fn stmt_creates_functions(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::LocalFunction { .. } => true,
        Stmt::Local { init, .. } => init.as_ref().is_some_and(expr_creates_functions),
        Stmt::Assign { target, value, .. } => {
            expr_creates_functions(value)
                || match target {
                    Target::Name(_) => false,
                    Target::Index { table, key } => {
                        expr_creates_functions(table) || expr_creates_functions(key)
                    }
                }
        }
        Stmt::ExprStmt(e) => expr_creates_functions(e),
        Stmt::If { arms, otherwise } => {
            arms.iter().any(|(c, b)| expr_creates_functions(c) || block_creates_functions(b))
                || otherwise.as_ref().is_some_and(block_creates_functions)
        }
        Stmt::While { cond, body } => expr_creates_functions(cond) || block_creates_functions(body),
        Stmt::NumericFor { start, stop, step, body, .. } => {
            expr_creates_functions(start)
                || expr_creates_functions(stop)
                || step.as_ref().is_some_and(expr_creates_functions)
                || block_creates_functions(body)
        }
        Stmt::GenericFor { iterable, body, .. } => {
            expr_creates_functions(iterable) || block_creates_functions(body)
        }
        Stmt::Break(_) => false,
        Stmt::Return(e, _) => e.as_ref().is_some_and(expr_creates_functions),
    }
}

fn expr_creates_functions(e: &Expr) -> bool {
    match e {
        Expr::Function { .. } => true,
        Expr::Nil(_) | Expr::Bool(..) | Expr::Number(..) | Expr::Str(..) | Expr::Var(..) => false,
        Expr::Unary { expr, .. } => expr_creates_functions(expr),
        Expr::Binary { lhs, rhs, .. } => expr_creates_functions(lhs) || expr_creates_functions(rhs),
        Expr::Index { table, key, .. } => {
            expr_creates_functions(table) || expr_creates_functions(key)
        }
        Expr::Table { array, hash, .. } => {
            array.iter().any(expr_creates_functions)
                || hash.iter().any(|(k, v)| {
                    expr_creates_functions(v)
                        || matches!(k, TableKey::Expr(ke) if expr_creates_functions(ke))
                })
        }
        Expr::Call { callee, args, .. } => {
            expr_creates_functions(callee) || args.iter().any(expr_creates_functions)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::module::Mode;
    use super::*;
    use crate::parser::parse;

    fn module(src: &str) -> CompiledModule {
        compile(&parse(src).expect("test script parses"))
    }

    #[test]
    fn literal_free_main_compiles_to_slot_mode() {
        let m = module("local x = 1\nreturn x + 1");
        assert_eq!(m.protos[0].mode, Mode::Slot);
        assert!(m.protos[0].n_slots >= 1);
        assert!(m.protos[0].code.iter().any(|i| matches!(i, Instr::LoadSlot(..))));
        assert!(!m.protos[0].code.iter().any(|i| matches!(i, Instr::PushEnv)));
    }

    #[test]
    fn function_literal_forces_env_mode_in_enclosing_body_only() {
        let m = module("local f = function(a) return a end\nreturn f(1)");
        assert_eq!(m.protos[0].mode, Mode::Env, "main creates a closure");
        assert_eq!(m.protos[1].mode, Mode::Slot, "the literal itself is literal-free");
        assert_eq!(m.protos[1].params.len(), 1);
    }

    #[test]
    fn constants_are_interned_once() {
        let m = module("return 5 + 5 + 5");
        let fives = m.consts.iter().filter(|c| matches!(c, Const::Num(n) if *n == 5.0)).count();
        assert_eq!(fives, 1);
    }

    #[test]
    fn every_proto_ends_in_a_return() {
        let m = module("local function f() end\nif true then return f() end");
        for p in &m.protos {
            assert!(matches!(p.code.last(), Some(Instr::Return | Instr::ReturnNil)), "{p:?}");
        }
    }

    #[test]
    fn jump_targets_stay_in_bounds() {
        let src = r#"
            local s = 0
            for i = 1, 10 do
                if i % 2 == 0 then s = s + i else s = s - 1 end
                while s > 100 do break end
            end
            for k, v in {1, 2, a = 3} do s = s + v end
            return s
        "#;
        let m = module(src);
        for p in &m.protos {
            let len = p.code.len() as u32;
            for i in &p.code {
                let target = match i {
                    Instr::Jump(t)
                    | Instr::JumpIfFalse(t)
                    | Instr::AndJump(t, _)
                    | Instr::OrJump(t, _)
                    | Instr::ForNext { exit: t, .. }
                    | Instr::IterNext { exit: t, .. } => Some(*t),
                    _ => None,
                };
                if let Some(t) = target {
                    assert!(t < len, "jump to {t} out of {len} in {i:?}");
                }
            }
        }
    }
}
