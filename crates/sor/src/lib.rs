//! **SOR** — a mobile-phone-Sensing based Objective Ranking system.
//!
//! From-scratch Rust reproduction of *"SOR: An Objective Ranking System
//! Based on Mobile Phone Sensing"* (Sheng, Tang, Wang, Gao, Xue — IEEE
//! ICDCS 2014). SOR ranks target places (coffee shops, hiking trails)
//! from **objective sensor data** gathered by participating smartphones
//! instead of subjective star ratings.
//!
//! This facade re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `sor-core` | coverage-maximising sensing scheduler (greedy 1/2-approx over a matroid) + personalizable ranking (weighted-footrule aggregation via min-cost flow) |
//! | [`flow`] | `sor-flow` | min-cost flow / Hungarian assignment substrate |
//! | [`proto`] | `sor-proto` | binary wire protocol (varints, CRC-framed messages) |
//! | [`script`] | `sor-script` | SenseScript — the Lua-like sensing-task DSL with a whitelisted interpreter |
//! | [`sensors`] | `sor-sensors` | provider/manager sensor stack over synthetic environments |
//! | [`frontend`] | `sor-frontend` | the mobile app: task manager, script-driven acquisition, privacy preferences |
//! | [`store`] | `sor-store` | embedded typed table store (the PostgreSQL role) |
//! | [`server`] | `sor-server` | sensing server: participation, scheduling, data processing, ranking |
//! | [`sim`] | `sor-sim` | discrete-event world, lossy transport, the paper's §V scenarios |
//!
//! # Quickstart
//!
//! ```
//! // Rank two places for a user who likes quiet.
//! use sor::core::ranking::{Feature, FeatureMatrix, PersonalizableRanker, Preference};
//! use sor::core::UserPreferences;
//!
//! let h = FeatureMatrix::new(
//!     vec!["library cafe".into(), "sports bar".into()],
//!     vec![Feature::new("noise", "dB")],
//!     vec![vec![35.0], vec![80.0]],
//! )?;
//! let prefs = UserPreferences::new("reader", vec![Preference::smallest(5)]);
//! let outcome = PersonalizableRanker::new().rank(&h, &prefs)?;
//! assert_eq!(outcome.named_order(&h)[0], "library cafe");
//! # Ok::<(), sor::core::CoreError>(())
//! ```
//!
//! Run the paper's experiments with the binaries in `sor-bench`
//! (`cargo run -p sor-bench --bin fig14`, `table1`, …) or the examples
//! (`cargo run --example coffee_shop_ranking`).

#![forbid(unsafe_code)]

pub use sor_core as core;
pub use sor_flow as flow;
pub use sor_frontend as frontend;
pub use sor_obs as obs;
pub use sor_proto as proto;
pub use sor_script as script;
pub use sor_sensors as sensors;
pub use sor_server as server;
pub use sor_sim as sim;
pub use sor_store as store;
