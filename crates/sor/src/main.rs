//! `sor` — the workspace command-line tool.
//!
//! Subcommands:
//!
//! - `sor export <dir>` — run the deterministic traced quick coffee-shop
//!   field test and write `trace.json`, `metrics.json`, and `health.txt`
//!   into `<dir>`. The same run backs the CI `trace_lint` step, so the
//!   outputs are byte-stable for a given build.
//! - `sor lint <trace.json>` — structural trace lint: duplicate span
//!   ids, orphan parents, spans that end before they start, and
//!   cross-component (phone ↔ server) spans missing a `trace_id`
//!   attribute. Exits 1 when any finding is reported.
//! - `sor health <trace.json>` — grade a finished run from its exported
//!   trace: every `slo.alert` event the online health engine recorded
//!   is replayed, and the run fails (exit 1) if any objective was
//!   breached.

use std::process::ExitCode;

use sor_obs::lint::lint_trace_json;
use sor_obs::{parse_json, Json, Recorder};
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

const USAGE: &str = "usage: sor <export <dir> | lint <trace.json> | health <trace.json>>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match (args.first().map(String::as_str), args.get(1)) {
        (Some("export"), Some(dir)) => cmd_export(dir),
        (Some("lint"), Some(path)) => cmd_lint(path),
        (Some("health"), Some(path)) => cmd_health(path),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Runs the deterministic traced field test and exports its artifacts.
fn cmd_export(dir: &str) -> ExitCode {
    let rec = Recorder::enabled();
    let out = match run_coffee_field_test_traced(FieldTestConfig::quick(3), rec.clone()) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("sor export: field test failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = rec.trace_json().expect("enabled recorder exports a trace");
    let metrics = rec.metrics_json().expect("enabled recorder exports metrics");
    let health =
        out.health.as_ref().map_or_else(|| "health: ungraded\n".to_string(), |h| h.render());
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(format!("{dir}/trace.json"), &trace))
        .and_then(|()| std::fs::write(format!("{dir}/metrics.json"), &metrics))
        .and_then(|()| std::fs::write(format!("{dir}/health.txt"), &health))
    {
        eprintln!("sor export: cannot write {dir}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "exported trace.json ({} bytes), metrics.json ({} bytes), health.txt to {dir}",
        trace.len(),
        metrics.len()
    );
    ExitCode::SUCCESS
}

/// Lints an exported trace; any finding fails the run.
fn cmd_lint(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("sor lint: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match lint_trace_json(&src) {
        Ok(findings) if findings.is_empty() => {
            println!("trace lint OK: {path}");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("lint: {f}");
            }
            eprintln!("sor lint: {} finding(s) in {path}", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sor lint: {path} is not valid trace JSON: {e}");
            ExitCode::from(2)
        }
    }
}

/// Grades a finished run from the `slo.alert` events in its trace.
fn cmd_health(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("sor health: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match parse_json(&src) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("sor health: {path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = doc.get("spans").and_then(Json::items).map_or(0, <[Json]>::len);
    let events = doc.get("events").and_then(Json::items).unwrap_or(&[]);
    let mut alerts = 0usize;
    for ev in events {
        let name = match ev.get("name") {
            Some(Json::Str(s)) => s.as_str(),
            _ => continue,
        };
        if name != "slo.alert" {
            continue;
        }
        alerts += 1;
        let time = ev.get("time").and_then(Json::as_f64).unwrap_or(0.0);
        let detail = match ev.get("detail") {
            Some(Json::Str(s)) => s.as_str(),
            _ => "",
        };
        println!("ALERT t={time:.1}s {detail}");
    }
    println!("{path}: {spans} spans, {} events, {alerts} SLO alert(s)", events.len());
    if alerts == 0 {
        println!("health OK: every objective held");
        ExitCode::SUCCESS
    } else {
        eprintln!("sor health: {alerts} SLO alert(s) fired");
        ExitCode::FAILURE
    }
}
