//! `sor` — the workspace command-line tool.
//!
//! Subcommands:
//!
//! - `sor export <dir>` — run the deterministic traced quick coffee-shop
//!   field test and write `trace.json`, `metrics.json`, `windows.json`,
//!   and `health.txt` into `<dir>`. The trace passes through the
//!   tail-based sampler (`SOR_TRACE_SAMPLE`, default 1.0 = keep all, so
//!   the outputs stay byte-stable for a given build); sampler keep/drop
//!   accounting lands in `metrics.json` under `obs.*`.
//! - `sor lint <trace.json>` — structural trace lint: duplicate span
//!   ids, orphan parents, spans that end before they start, and
//!   cross-component (phone ↔ server) spans missing a `trace_id`
//!   attribute. Exits 1 when any finding is reported.
//! - `sor health <trace.json>` — grade a finished run from its exported
//!   trace: every `slo.alert` event the online health engine recorded
//!   is replayed, and the run fails (exit 1) if any objective was
//!   breached.
//! - `sor top <dir>` — render the deterministic ASCII dashboard (stage
//!   cost attribution, top-k tables, windowed trend arrows, sampler
//!   accounting, health grades) from a directory written by
//!   `sor export`.

use std::process::ExitCode;

use sor_obs::dashboard::render_dashboard;
use sor_obs::lint::lint_trace_json;
use sor_obs::sample::{sample_trace, SamplePolicy};
use sor_obs::{parse_json, Json, Recorder};
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

const USAGE: &str =
    "usage: sor <export <dir> | lint <trace.json> | health <trace.json> | top <dir>>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match (args.first().map(String::as_str), args.get(1)) {
        (Some("export"), Some(dir)) => cmd_export(dir),
        (Some("lint"), Some(path)) => cmd_lint(path),
        (Some("health"), Some(path)) => cmd_health(path),
        (Some("top"), Some(dir)) => cmd_top(dir),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Runs the deterministic traced field test and exports its artifacts.
fn cmd_export(dir: &str) -> ExitCode {
    let cfg = FieldTestConfig::quick(3);
    let policy = SamplePolicy::from_env(cfg.seed);
    let rec = Recorder::enabled();
    let out = match run_coffee_field_test_traced(cfg, rec.clone()) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("sor export: field test failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Tail-sample the finished trace: at the default rate 1.0 the
    // export is byte-identical to the raw buffer; at lower rates the
    // error/SLO/slowest-decile trees always survive and the exact drop
    // accounting goes out with the metrics.
    let raw_trace = rec.trace_snapshot().expect("enabled recorder exports a trace");
    let (sampled, stats) = sample_trace(&raw_trace, &policy);
    let mut metrics = rec.metrics_snapshot().expect("enabled recorder exports metrics");
    stats.record_into(&mut metrics);
    let trace = sampled.to_json();
    let metrics = metrics.to_json();
    let windows = out.windows.as_ref().map(sor_obs::WindowRing::summary_json);
    let health =
        out.health.as_ref().map_or_else(|| "health: ungraded\n".to_string(), |h| h.render());
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(format!("{dir}/trace.json"), &trace))
        .and_then(|()| std::fs::write(format!("{dir}/metrics.json"), &metrics))
        .and_then(|()| match &windows {
            Some(w) => std::fs::write(format!("{dir}/windows.json"), w),
            None => Ok(()),
        })
        .and_then(|()| std::fs::write(format!("{dir}/health.txt"), &health))
    {
        eprintln!("sor export: cannot write {dir}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "exported trace.json ({} bytes, {}/{} trees kept), metrics.json ({} bytes), \
         windows.json ({} windows), health.txt to {dir}",
        trace.len(),
        stats.traces_kept,
        stats.traces_total,
        metrics.len(),
        out.windows.as_ref().map_or(0, sor_obs::WindowRing::len),
    );
    ExitCode::SUCCESS
}

/// Renders the ASCII dashboard from an exported run directory.
fn cmd_top(dir: &str) -> ExitCode {
    let read_doc = |name: &str, required: bool| -> Result<Option<Json>, ExitCode> {
        let path = format!("{dir}/{name}");
        match std::fs::read_to_string(&path) {
            Ok(src) => match parse_json(&src) {
                Ok(doc) => Ok(Some(doc)),
                Err(e) => {
                    eprintln!("sor top: {path} is not valid JSON: {e}");
                    Err(ExitCode::from(2))
                }
            },
            Err(e) if required => {
                eprintln!("sor top: cannot read {path}: {e}");
                Err(ExitCode::from(2))
            }
            Err(_) => Ok(None),
        }
    };
    let trace = match read_doc("trace.json", true) {
        Ok(doc) => doc.expect("required"),
        Err(code) => return code,
    };
    let metrics = match read_doc("metrics.json", true) {
        Ok(doc) => doc.expect("required"),
        Err(code) => return code,
    };
    let windows = match read_doc("windows.json", false) {
        Ok(doc) => doc,
        Err(code) => return code,
    };
    let health = std::fs::read_to_string(format!("{dir}/health.txt")).ok();
    print!("{}", render_dashboard(&trace, &metrics, windows.as_ref(), health.as_deref()));
    ExitCode::SUCCESS
}

/// Lints an exported trace; any finding fails the run.
fn cmd_lint(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("sor lint: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match lint_trace_json(&src) {
        Ok(findings) if findings.is_empty() => {
            println!("trace lint OK: {path}");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("lint: {f}");
            }
            eprintln!("sor lint: {} finding(s) in {path}", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sor lint: {path} is not valid trace JSON: {e}");
            ExitCode::from(2)
        }
    }
}

/// Grades a finished run from the `slo.alert` events in its trace.
fn cmd_health(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("sor health: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match parse_json(&src) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("sor health: {path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = doc.get("spans").and_then(Json::items).map_or(0, <[Json]>::len);
    let events = doc.get("events").and_then(Json::items).unwrap_or(&[]);
    let mut alerts = 0usize;
    for ev in events {
        let name = match ev.get("name") {
            Some(Json::Str(s)) => s.as_str(),
            _ => continue,
        };
        if name != "slo.alert" {
            continue;
        }
        alerts += 1;
        let time = ev.get("time").and_then(Json::as_f64).unwrap_or(0.0);
        let detail = match ev.get("detail") {
            Some(Json::Str(s)) => s.as_str(),
            _ => "",
        };
        println!("ALERT t={time:.1}s {detail}");
    }
    println!("{path}: {spans} spans, {} events, {alerts} SLO alert(s)", events.len());
    if alerts == 0 {
        println!("health OK: every objective held");
        ExitCode::SUCCESS
    } else {
        eprintln!("sor health: {alerts} SLO alert(s) fired");
        ExitCode::FAILURE
    }
}
