//! `sor` — the workspace command-line tool.
//!
//! Subcommands:
//!
//! - `sor export <dir>` — run the deterministic traced quick coffee-shop
//!   field test and write `trace.json`, `metrics.json`, `windows.json`,
//!   and `health.txt` into `<dir>`. The trace passes through the
//!   tail-based sampler (`SOR_TRACE_SAMPLE`, default 1.0 = keep all, so
//!   the outputs stay byte-stable for a given build); sampler keep/drop
//!   accounting lands in `metrics.json` under `obs.*`.
//! - `sor lint <trace.json>` — structural trace lint: duplicate span
//!   ids, orphan parents, spans that end before they start, and
//!   cross-component (phone ↔ server) spans missing a `trace_id`
//!   attribute. Exits 1 when any finding is reported.
//! - `sor health <trace.json>` — grade a finished run from its exported
//!   trace: every `slo.alert` event the online health engine recorded
//!   is replayed, and the run fails (exit 1) if any objective was
//!   breached.
//! - `sor top <dir>` — render the deterministic ASCII dashboard (stage
//!   cost attribution, top-k tables, windowed trend arrows, sampler
//!   accounting, health grades) from a directory written by
//!   `sor export`.
//! - `sor query <run.sorar> …` — interrogate a sealed run archive:
//!   metadata, raw trace JSON, causal span trees, span filters,
//!   per-family latency roll-ups, windowed metric series, or a full
//!   re-export of the original `sor export` artifact directory.
//! - `sor diff <a.sorar> <b.sorar>` / `sor diff --against <history>` —
//!   noise-aware cross-run regression detection; exits 1 when any
//!   tolerance band is breached.
//! - `sor degrade <in> <out> <metric> <factor>` — copy an archive with
//!   one latency histogram synthetically scaled, so CI can prove the
//!   diff gate catches a real regression.

use std::path::Path;
use std::process::ExitCode;

use sor_durable::{read_sealed, write_sealed};
use sor_obs::dashboard::render_dashboard;
use sor_obs::lint::lint_trace_json;
use sor_obs::query::{
    causal_tree, family_latencies, filter_spans, metric_series, render_families, render_spans,
    SpanFilter,
};
use sor_obs::{
    diff, parse_json, ArchiveStats, DiffConfig, Json, MetricsRegistry, Recorder, RunArchive,
};
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

const USAGE: &str = "usage: sor <command>\n\
     \x20 export <dir>                      run the quick field test, write artifacts + run.sorar\n\
     \x20 lint <trace.json>                 structural trace lint\n\
     \x20 health <trace.json>               replay SLO alerts from an exported trace\n\
     \x20 top <dir>                         ASCII dashboard over an exported run\n\
     \x20 query <run.sorar> meta            archive provenance (sha, seed, threads, knobs)\n\
     \x20 query <run.sorar> trace           raw trace JSON (byte-identical to trace.json)\n\
     \x20 query <run.sorar> tree [pattern]  causal span forest, optionally root-filtered\n\
     \x20 query <run.sorar> spans [--name S] [--attr K=V] [--min-duration SECS]\n\
     \x20 query <run.sorar> families        per-root-family latency roll-up (exact quantiles)\n\
     \x20 query <run.sorar> series <metric> [q]   per-window quantile time-series\n\
     \x20 query <run.sorar> export <dir>    rewrite the full artifact directory from the archive\n\
     \x20 diff <a.sorar> <b.sorar> [--tolerance R]   compare two archived runs (exit 1 on regression)\n\
     \x20 diff --against <history.jsonl>    newest bench entry vs nearest comparable baseline\n\
     \x20 degrade <in> <out> <metric> <factor>      copy archive with one histogram scaled";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match (args.first().map(String::as_str), args.get(1)) {
        (Some("export"), Some(dir)) => cmd_export(dir),
        (Some("lint"), Some(path)) => cmd_lint(path),
        (Some("health"), Some(path)) => cmd_health(path),
        (Some("top"), Some(dir)) => cmd_top(dir),
        (Some("query"), Some(_)) => cmd_query(&args[1..]),
        (Some("diff"), Some(_)) => cmd_diff(&args[1..]),
        (Some("degrade"), Some(_)) => cmd_degrade(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The commit the running binary should stamp into archives: the
/// `SOR_RUN_SHA` override (CI), else `git rev-parse HEAD`, else
/// `"unknown"` outside a repository.
fn run_sha() -> String {
    if let Ok(sha) = std::env::var("SOR_RUN_SHA") {
        return sha;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Writes the four human-readable artifacts (plus `windows.json` when
/// present) derived *from the archive*, so the files on disk and the
/// sealed blob can never disagree.
fn write_artifacts(dir: &str, archive: &RunArchive) -> std::io::Result<(usize, usize)> {
    let trace = archive.trace.to_json();
    let metrics = archive.metrics.to_json();
    let windows = archive.windows.as_ref().map(sor_obs::WindowRing::summary_json);
    let health =
        archive.health.as_ref().map_or_else(|| "health: ungraded\n".to_string(), |h| h.render());
    std::fs::create_dir_all(dir)?;
    std::fs::write(format!("{dir}/trace.json"), &trace)?;
    std::fs::write(format!("{dir}/metrics.json"), &metrics)?;
    if let Some(w) = &windows {
        std::fs::write(format!("{dir}/windows.json"), w)?;
    }
    std::fs::write(format!("{dir}/health.txt"), &health)?;
    Ok((trace.len(), metrics.len()))
}

/// Runs the deterministic traced field test, seals the run archive, and
/// exports its artifacts.
fn cmd_export(dir: &str) -> ExitCode {
    let cfg = FieldTestConfig::quick(3);
    let rec = Recorder::enabled();
    let out = match run_coffee_field_test_traced(cfg, rec.clone()) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("sor export: field test failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The archive hook tail-samples the trace (SOR_TRACE_SAMPLE,
    // default 1.0 = keep all) and folds the sampler accounting into the
    // archived registry; every on-disk artifact below derives from the
    // archive, so `sor query … export` reproduces this directory
    // byte-for-byte.
    let Some((archive, stats)) = out.archive(&rec, &cfg, "coffee_field_test", &run_sha()) else {
        eprintln!("sor export: recorder produced no artifacts");
        return ExitCode::FAILURE;
    };
    let payload = archive.to_bytes();
    let (trace_len, metrics_len) = match write_artifacts(dir, &archive) {
        Ok(sizes) => sizes,
        Err(e) => {
            eprintln!("sor export: cannot write {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sorar = format!("{dir}/run.sorar");
    if let Err(e) = write_sealed(Path::new(&sorar), &payload) {
        eprintln!("sor export: cannot seal {sorar}: {e}");
        return ExitCode::FAILURE;
    }
    // Archive accounting lives in a side registry, never the archived
    // one — the sealed payload must stay byte-identical to a re-export.
    let astats = archive.stats(payload.len());
    let mut accounting = MetricsRegistry::new();
    astats.record_into(&mut accounting);
    if let Err(e) = std::fs::write(format!("{dir}/archive_metrics.json"), accounting.to_json()) {
        eprintln!("sor export: cannot write {dir}/archive_metrics.json: {e}");
        return ExitCode::FAILURE;
    }
    let ArchiveStats { bytes_written, spans_archived, .. } = astats;
    println!(
        "exported trace.json ({trace_len} bytes, {}/{} trees kept), metrics.json \
         ({metrics_len} bytes), windows.json ({} windows), health.txt, run.sorar \
         ({bytes_written} payload bytes, {spans_archived} spans) to {dir}",
        stats.traces_kept,
        stats.traces_total,
        out.windows.as_ref().map_or(0, sor_obs::WindowRing::len),
    );
    ExitCode::SUCCESS
}

/// Loads and unseals a run archive, reporting failures on stderr.
fn load_archive(path: &str) -> Result<RunArchive, ExitCode> {
    let payload = read_sealed(Path::new(path)).map_err(|e| {
        eprintln!("sor: cannot open archive {path}: {e}");
        ExitCode::from(2)
    })?;
    RunArchive::from_bytes(&payload).ok_or_else(|| {
        eprintln!("sor: {path}: sealed payload is not a readable run archive");
        ExitCode::from(2)
    })
}

/// `sor query <run.sorar> <verb> …` — interrogate a sealed archive.
fn cmd_query(args: &[String]) -> ExitCode {
    let archive = match load_archive(&args[0]) {
        Ok(a) => a,
        Err(code) => return code,
    };
    match (args.get(1).map(String::as_str), args.get(2)) {
        (Some("meta"), None) => {
            print!("{}", archive.meta.render());
            ExitCode::SUCCESS
        }
        (Some("trace"), None) => {
            print!("{}", archive.trace.to_json());
            ExitCode::SUCCESS
        }
        (Some("tree"), pattern) => {
            print!("{}", causal_tree(&archive.trace, pattern.map(String::as_str)));
            ExitCode::SUCCESS
        }
        (Some("spans"), _) => {
            let mut filter = SpanFilter::default();
            let mut rest = args[2..].iter();
            while let Some(flag) = rest.next() {
                let Some(value) = rest.next() else {
                    eprintln!("sor query spans: {flag} needs a value");
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--name" => filter.name_contains = Some(value.clone()),
                    "--attr" => match value.split_once('=') {
                        Some((k, v)) => filter.attrs.push((k.to_string(), v.to_string())),
                        None => {
                            eprintln!("sor query spans: --attr wants K=V, got {value}");
                            return ExitCode::from(2);
                        }
                    },
                    "--min-duration" => match value.parse::<f64>() {
                        Ok(secs) => filter.min_duration = Some(secs),
                        Err(_) => {
                            eprintln!("sor query spans: bad --min-duration {value}");
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("sor query spans: unknown flag {other}");
                        return ExitCode::from(2);
                    }
                }
            }
            print!("{}", render_spans(&filter_spans(&archive.trace, &filter)));
            ExitCode::SUCCESS
        }
        (Some("families"), None) => {
            print!("{}", render_families(&family_latencies(&archive.trace)));
            ExitCode::SUCCESS
        }
        (Some("series"), Some(metric)) => {
            let q = match args.get(3).map(|s| s.parse::<f64>()) {
                None => 0.95,
                Some(Ok(q)) if (0.0..=1.0).contains(&q) => q,
                Some(_) => {
                    eprintln!("sor query series: quantile must be in [0,1]");
                    return ExitCode::from(2);
                }
            };
            match &archive.windows {
                Some(ring) => {
                    print!("{}", metric_series(ring, metric, q));
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("sor query series: archive has no windowed metrics");
                    ExitCode::FAILURE
                }
            }
        }
        (Some("export"), Some(dir)) => match write_artifacts(dir, &archive) {
            Ok(_) => {
                println!("re-exported {} to {dir}", args[0]);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sor query export: cannot write {dir}: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `sor diff` — archive-vs-archive or newest-vs-baseline bench history.
/// Exits 0 on a clean report, 1 on any regression, 2 on usage/IO.
fn cmd_diff(args: &[String]) -> ExitCode {
    let mut cfg = DiffConfig::default();
    let mut positional: Vec<&String> = Vec::new();
    let mut against: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--against" => match it.next() {
                Some(p) => against = Some(p),
                None => {
                    eprintln!("sor diff: --against needs a path");
                    return ExitCode::from(2);
                }
            },
            "--tolerance" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(r)) if r > 1.0 => {
                    cfg.quantile_ratio = r;
                    cfg.bench_ratio = r;
                }
                _ => {
                    eprintln!("sor diff: --tolerance wants a ratio > 1.0");
                    return ExitCode::from(2);
                }
            },
            _ => positional.push(a),
        }
    }
    let report = match (against, positional.as_slice()) {
        (Some(history), []) => {
            let text = match std::fs::read_to_string(history) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("sor diff: cannot read {history}: {e}");
                    return ExitCode::from(2);
                }
            };
            match diff::diff_history_jsonl(&text, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("sor diff: {history}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        (None, [base, cand]) => {
            let (base, cand) = match (load_archive(base), load_archive(cand)) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            diff::diff_archives(&base, &cand, &cfg)
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if report.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `sor degrade <in> <out> <metric> <factor>` — reseal a copy of an
/// archive with one latency histogram synthetically scaled.
fn cmd_degrade(args: &[String]) -> ExitCode {
    let [input, output, metric, factor] = args else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let factor = match factor.parse::<f64>() {
        Ok(f) if f > 0.0 && f.is_finite() => f,
        _ => {
            eprintln!("sor degrade: factor must be a positive number");
            return ExitCode::from(2);
        }
    };
    let mut archive = match load_archive(input) {
        Ok(a) => a,
        Err(code) => return code,
    };
    if !archive.metrics.scale_histogram(metric, factor) {
        eprintln!("sor degrade: {input} has no histogram named {metric}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_sealed(Path::new(output), &archive.to_bytes()) {
        eprintln!("sor degrade: cannot seal {output}: {e}");
        return ExitCode::FAILURE;
    }
    println!("degraded {metric} by {factor}x: {input} -> {output}");
    ExitCode::SUCCESS
}

/// Renders the ASCII dashboard from an exported run directory.
fn cmd_top(dir: &str) -> ExitCode {
    let read_doc = |name: &str, required: bool| -> Result<Option<Json>, ExitCode> {
        let path = format!("{dir}/{name}");
        match std::fs::read_to_string(&path) {
            Ok(src) => match parse_json(&src) {
                Ok(doc) => Ok(Some(doc)),
                Err(e) => {
                    eprintln!("sor top: {path} is not valid JSON: {e}");
                    Err(ExitCode::from(2))
                }
            },
            Err(e) if required => {
                eprintln!("sor top: cannot read {path}: {e}");
                Err(ExitCode::from(2))
            }
            Err(_) => Ok(None),
        }
    };
    let trace = match read_doc("trace.json", true) {
        Ok(doc) => doc.expect("required"),
        Err(code) => return code,
    };
    let metrics = match read_doc("metrics.json", true) {
        Ok(doc) => doc.expect("required"),
        Err(code) => return code,
    };
    let windows = match read_doc("windows.json", false) {
        Ok(doc) => doc,
        Err(code) => return code,
    };
    let health = std::fs::read_to_string(format!("{dir}/health.txt")).ok();
    print!("{}", render_dashboard(&trace, &metrics, windows.as_ref(), health.as_deref()));
    ExitCode::SUCCESS
}

/// Lints an exported trace; any finding fails the run.
fn cmd_lint(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("sor lint: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match lint_trace_json(&src) {
        Ok(findings) if findings.is_empty() => {
            println!("trace lint OK: {path}");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("lint: {f}");
            }
            eprintln!("sor lint: {} finding(s) in {path}", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sor lint: {path} is not valid trace JSON: {e}");
            ExitCode::from(2)
        }
    }
}

/// Grades a finished run from the `slo.alert` events in its trace.
fn cmd_health(path: &str) -> ExitCode {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("sor health: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match parse_json(&src) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("sor health: {path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = doc.get("spans").and_then(Json::items).map_or(0, <[Json]>::len);
    let events = doc.get("events").and_then(Json::items).unwrap_or(&[]);
    let mut alerts = 0usize;
    for ev in events {
        let name = match ev.get("name") {
            Some(Json::Str(s)) => s.as_str(),
            _ => continue,
        };
        if name != "slo.alert" {
            continue;
        }
        alerts += 1;
        let time = ev.get("time").and_then(Json::as_f64).unwrap_or(0.0);
        let detail = match ev.get("detail") {
            Some(Json::Str(s)) => s.as_str(),
            _ => "",
        };
        println!("ALERT t={time:.1}s {detail}");
    }
    println!("{path}: {spans} spans, {} events, {alerts} SLO alert(s)", events.len());
    if alerts == 0 {
        println!("health OK: every objective held");
        ExitCode::SUCCESS
    } else {
        eprintln!("sor health: {alerts} SLO alert(s) fired");
        ExitCode::FAILURE
    }
}
