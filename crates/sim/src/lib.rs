//! Simulation harness for the SOR reproduction (§V).
//!
//! - [`engine`]: a small generic discrete-event simulator (time-ordered
//!   event queue with stable FIFO tie-breaking).
//! - [`transport`]: an in-memory message channel with latency, loss and
//!   optional corruption — every hop round-trips through the real
//!   `sor-proto` binary codec, so the CRC path is exercised end to end.
//! - [`world`]: [`world::SorWorld`] wires real [`sor_server`] and
//!   [`sor_frontend`] instances over the transport and drives them from
//!   the event queue.
//! - [`scenario`]: the paper's experiments as reusable builders — the
//!   coffee-shop and hiking-trail field tests (§V-A/B) and the
//!   large-scale scheduling simulation (§V-C), plus the five virtual
//!   user profiles (Alice, Bob, Chris, David, Emma) of Fig. 7/Fig. 11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod scenario;
pub mod transport;
pub mod world;

pub use engine::EventQueue;
pub use transport::{Endpoint, Transport, TransportConfig};
pub use world::SorWorld;
