//! End-to-end world: real server + real phones over the lossy transport,
//! driven by the discrete-event queue.

use std::collections::HashMap;

use sor_durable::{DurableOptions, SimDisk};
use sor_frontend::{MobileFrontend, ScriptCache};
use sor_obs::{Alert, HealthEngine, Recorder, WindowRing};
use sor_proto::{Message, TraceContext};
use sor_server::{ApplicationSpec, SensingServer, ServerError};

use crate::engine::EventQueue;
use crate::transport::{Endpoint, InFlight, Transport};

/// World events.
#[derive(Debug)]
enum WorldEvent {
    /// A phone scans a place's barcode.
    Scan { phone: usize, app_id: u64, budget: u32, stay: f64 },
    /// A frame arrives at its destination.
    Deliver(InFlight),
    /// A phone wakes and executes due sense times; reschedules itself.
    PhoneSweep { phone: usize, interval: f64, until: f64 },
    /// The server pages phones it has not heard from (§II-A's GCM
    /// fallback); reschedules itself.
    LivenessCheck { interval: f64, threshold: f64, until: f64 },
    /// The server process dies abruptly and restarts from its simulated
    /// disk (only meaningful in a durable world).
    ServerCrash,
    /// The server runs a Data Processor pass (inbox drain + features);
    /// reschedules itself.
    ProcessData { interval: f64, until: f64 },
    /// The server refreshes its health gauges and the SLO engine grades
    /// every objective; reschedules itself.
    HealthCheck { interval: f64, until: f64 },
}

/// The rebuild recipe for a durable world: the shared simulated disk,
/// the durability knobs, and the application configuration to
/// re-register after recovery (configuration is not data — the real
/// deployment reads it from ops config, so the sim re-supplies it).
#[derive(Debug, Clone)]
struct DurableSetup {
    disk: SimDisk,
    opts: DurableOptions,
    apps: Vec<ApplicationSpec>,
}

/// Counters the scenarios assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Frames that failed to decode at a receiver (loss of integrity
    /// caught by the CRC).
    pub decode_failures: u64,
    /// Messages the server rejected (bad location, unknown task, …).
    pub server_rejections: u64,
    /// Sensed-data uploads accepted by the server.
    pub uploads_accepted: u64,
    /// WakeUp pages the server sent to quiet phones.
    pub pages_sent: u64,
    /// Abrupt server deaths followed by recovery from simulated disk.
    pub server_crashes: u64,
}

/// The simulated deployment of Fig. 2: phones, server, network.
pub struct SorWorld {
    /// The sensing server (backend).
    pub server: SensingServer,
    /// The participating phones.
    pub phones: Vec<MobileFrontend>,
    transport: Transport,
    queue: EventQueue<WorldEvent>,
    token_to_phone: HashMap<u64, usize>,
    /// Observable counters.
    pub stats: WorldStats,
    /// One [`sor_durable::RecoveryReport`] summary per recovery, in
    /// crash order — scenario assertions and the smoke binary read
    /// these.
    pub recoveries: Vec<String>,
    /// One rendered flight-recorder dump per server crash, in crash
    /// order — the deterministic post-mortem of what the deployment was
    /// doing when it died.
    pub postmortems: Vec<String>,
    /// Every SLO alert fired by the health engine, in firing order.
    pub alerts: Vec<Alert>,
    recorder: Recorder,
    /// One compilation cache for the whole fleet: every phone added to
    /// the world gets a handle, so a script dispatched to N phones is
    /// compiled once (the bytecode engine is behind `SOR_SCRIPT_VM`).
    script_cache: ScriptCache,
    durable: Option<DurableSetup>,
    health: Option<HealthEngine>,
    windows: Option<WindowRing>,
}

impl std::fmt::Debug for SorWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SorWorld")
            .field("phones", &self.phones.len())
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SorWorld {
    /// A world around a configured server and transport.
    pub fn new(server: SensingServer, transport: Transport) -> Self {
        SorWorld {
            server,
            phones: Vec::new(),
            transport,
            queue: EventQueue::new(),
            token_to_phone: HashMap::new(),
            stats: WorldStats::default(),
            recoveries: Vec::new(),
            postmortems: Vec::new(),
            alerts: Vec::new(),
            recorder: Recorder::default(),
            script_cache: ScriptCache::new(),
            durable: None,
            health: None,
            windows: None,
        }
    }

    /// A world whose server persists to a [`SimDisk`], so
    /// [`SorWorld::schedule_crash`] can kill it mid-scenario and rebuild
    /// it from whatever the disk kept. The applications are registered
    /// now and re-registered after every recovery.
    ///
    /// # Errors
    ///
    /// Server construction or application registration failures.
    pub fn durable(
        disk: SimDisk,
        opts: DurableOptions,
        apps: Vec<ApplicationSpec>,
        transport: Transport,
        recorder: Recorder,
    ) -> Result<Self, ServerError> {
        let (mut server, _report) =
            SensingServer::durable(Box::new(disk.clone()), opts, recorder.clone(), 0.0)?;
        for spec in &apps {
            server.register_application(spec.clone())?;
        }
        let mut world = SorWorld::new(server, transport);
        world.durable = Some(DurableSetup { disk, opts, apps });
        world.set_recorder(recorder);
        Ok(world)
    }

    /// Schedules an abrupt server death at `at`. Panics at dispatch
    /// time if the world was not built with [`SorWorld::durable`] — a
    /// crash without a disk to recover from is a scenario bug.
    pub fn schedule_crash(&mut self, at: f64) {
        self.queue.schedule(at, WorldEvent::ServerCrash);
    }

    /// Installs one recorder across the whole deployment: the server
    /// (and its database), every phone, and the transport. Phones added
    /// afterwards inherit it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.server.set_recorder(recorder.clone());
        for phone in &mut self.phones {
            phone.set_recorder(recorder.clone());
        }
        self.transport.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The installed recorder (disabled unless [`SorWorld::set_recorder`]
    /// was called with an enabled one).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Read access to the transport's send/drop/corrupt counters.
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// The fleet-wide script compilation cache handle.
    pub fn script_cache(&self) -> &ScriptCache {
        &self.script_cache
    }

    /// Adds a phone, returning its index.
    pub fn add_phone(&mut self, mut phone: MobileFrontend) -> usize {
        phone.set_recorder(self.recorder.clone());
        phone.set_script_cache(self.script_cache.clone());
        let idx = self.phones.len();
        self.token_to_phone.insert(phone.token(), idx);
        self.phones.push(phone);
        idx
    }

    /// Schedules a barcode scan.
    pub fn schedule_scan(&mut self, at: f64, phone: usize, app_id: u64, budget: u32, stay: f64) {
        self.queue.schedule(at, WorldEvent::Scan { phone, app_id, budget, stay });
    }

    /// Schedules periodic task sweeps for one phone.
    pub fn schedule_sweeps(&mut self, phone: usize, start: f64, interval: f64, until: f64) {
        self.queue.schedule(start, WorldEvent::PhoneSweep { phone, interval, until });
    }

    /// Schedules periodic server liveness checks: phones silent for more
    /// than `threshold` seconds get a WakeUp page over the transport.
    pub fn schedule_liveness_checks(
        &mut self,
        start: f64,
        interval: f64,
        threshold: f64,
        until: f64,
    ) {
        self.queue.schedule(start, WorldEvent::LivenessCheck { interval, threshold, until });
    }

    /// Schedules periodic Data Processor passes on the server — the
    /// paper's "periodically checks if there are any binary sensed data
    /// in the database".
    pub fn schedule_processing(&mut self, start: f64, interval: f64, until: f64) {
        self.queue.schedule(start, WorldEvent::ProcessData { interval, until });
    }

    /// Schedules periodic SLO evaluation with the default catalog (see
    /// `sor_obs::HealthEngine::default_catalog`). Alerts fire into
    /// [`SorWorld::alerts`] and — when a trace is live — as `slo.alert`
    /// trace events. Each check also closes a metrics window, so the
    /// check interval doubles as the window period and the catalog's
    /// trend objectives grade against real per-period deltas.
    pub fn schedule_health_checks(&mut self, start: f64, interval: f64, until: f64) {
        if self.health.is_none() {
            self.health = Some(HealthEngine::with_default_catalog());
        }
        if self.windows.is_none() {
            self.windows = Some(WindowRing::default());
        }
        self.queue.schedule(start, WorldEvent::HealthCheck { interval, until });
    }

    /// The health engine, once [`SorWorld::schedule_health_checks`] has
    /// installed it (final-report rendering).
    pub fn health_engine(&self) -> Option<&HealthEngine> {
        self.health.as_ref()
    }

    /// The metrics window ring, once [`SorWorld::schedule_health_checks`]
    /// has installed it — one window closed per health check.
    pub fn window_ring(&self) -> Option<&WindowRing> {
        self.windows.as_ref()
    }

    fn post(&mut self, now: f64, to: Endpoint, msg: &Message) {
        self.post_traced(now, to, msg, None);
    }

    fn post_traced(&mut self, now: f64, to: Endpoint, msg: &Message, ctx: Option<TraceContext>) {
        if let Some(flight) = self.transport.send_traced(now, to, msg, ctx) {
            self.queue.schedule(flight.deliver_at, WorldEvent::Deliver(flight));
        }
    }

    /// Runs the event loop until the queue drains or `until` passes.
    ///
    /// Runs of same-instant [`WorldEvent::PhoneSweep`]s over distinct
    /// phones are stepped on the worker pool: phones are independent
    /// between world events (sensor reads come from shared immutable
    /// environments and the energy meter's integer-microjoule adds
    /// commute), so the batched step is bit-identical to the sequential
    /// one. Message forwarding and rescheduling stay in pop order, so
    /// transport RNG draws and queue FIFO numbers are unchanged.
    /// Batching is skipped while a trace recorder is live — span and
    /// counter ordering inside `advance_to` must stay sequential.
    pub fn run_until(&mut self, until: f64) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked");
            self.recorder.observe("sim.queue_depth", self.queue.len() as f64);
            self.recorder.count_labeled("sim.events_dispatched", event_kind(&event), 1);
            if let WorldEvent::PhoneSweep { phone, interval, until: sweep_until } = event {
                let batch = self.collect_sweep_batch(now, phone, interval, sweep_until);
                self.dispatch_sweeps(now, batch);
            } else {
                self.dispatch(now, event);
            }
        }
        // Settle clocks at the horizon.
        if self.server.now() < until {
            self.server.tick(until);
        }
    }

    /// Gathers the maximal run of sweeps at `now` over distinct phones,
    /// starting from one already-popped sweep. Returns just that sweep
    /// when batching cannot help (single worker) or must not happen
    /// (live trace recorder).
    fn collect_sweep_batch(
        &mut self,
        now: f64,
        phone: usize,
        interval: f64,
        sweep_until: f64,
    ) -> Vec<(usize, f64, f64)> {
        let mut batch = vec![(phone, interval, sweep_until)];
        if self.recorder.is_enabled() || sor_par::current_threads() <= 1 {
            return batch;
        }
        while let Some((_, WorldEvent::PhoneSweep { phone, interval, until })) =
            self.queue.pop_if(|t, e| {
                t == now
                    && matches!(e, WorldEvent::PhoneSweep { phone, .. }
                        if !batch.iter().any(|(p, _, _)| p == phone))
            })
        {
            batch.push((phone, interval, until));
        }
        batch
    }

    /// Steps every phone in `batch` to `now` (in parallel when the batch
    /// has more than one phone), then forwards their outgoing messages
    /// and re-arms their sweep timers in the original pop order.
    fn dispatch_sweeps(&mut self, now: f64, batch: Vec<(usize, f64, f64)>) {
        // The batched branch only runs with the recorder off (see
        // collect_sweep_batch), where no upload carries a context, so
        // plain advance_to loses nothing.
        let outgoing: Vec<Vec<(Message, Option<TraceContext>)>> = if batch.len() > 1 {
            let mut slots: Vec<Option<&mut MobileFrontend>> =
                self.phones.iter_mut().map(Some).collect();
            let mut stepping: Vec<&mut MobileFrontend> =
                batch.iter().map(|&(p, _, _)| slots[p].take().expect("distinct phones")).collect();
            sor_par::par_map_mut(&mut stepping, |phone| phone.advance_to(now))
                .into_iter()
                .map(|msgs| msgs.into_iter().map(|m| (m, None)).collect())
                .collect()
        } else {
            vec![self.phones[batch[0].0].advance_to_ctx(now)]
        };
        for (&(phone, interval, sweep_until), msgs) in batch.iter().zip(outgoing) {
            self.forward_phone_messages(now, msgs);
            if now + interval <= sweep_until {
                self.queue.schedule(
                    now + interval,
                    WorldEvent::PhoneSweep { phone, interval, until: sweep_until },
                );
            }
        }
    }

    fn dispatch(&mut self, now: f64, event: WorldEvent) {
        match event {
            WorldEvent::Scan { phone, app_id, budget, stay } => {
                if self.phones[phone].now() < now {
                    let msgs = self.phones[phone].advance_to_ctx(now);
                    self.forward_phone_messages(now, msgs);
                }
                let req = self.phones[phone].scan_barcode(app_id, budget, stay);
                self.post(now, Endpoint::Server, &req);
            }
            WorldEvent::PhoneSweep { phone, interval, until } => {
                self.dispatch_sweeps(now, vec![(phone, interval, until)]);
            }
            WorldEvent::LivenessCheck { interval, threshold, until } => {
                self.server.tick(now);
                let pages = self.server.page_quiet_phones(threshold);
                for (token, msg) in pages {
                    if let Some(&idx) = self.token_to_phone.get(&token) {
                        self.stats.pages_sent += 1;
                        self.recorder.count("server.pages_sent", 1);
                        self.post(now, Endpoint::Phone(idx), &msg);
                    }
                }
                if now + interval <= until {
                    self.queue.schedule(
                        now + interval,
                        WorldEvent::LivenessCheck { interval, threshold, until },
                    );
                }
            }
            WorldEvent::ServerCrash => {
                let setup = self
                    .durable
                    .clone()
                    .expect("ServerCrash scheduled on a world without durable storage");
                // Kill: anything the server had not flushed is torn off
                // by the disk's fault model. The old server object is
                // simply dropped — nothing gets a chance to sync.
                setup.disk.crash();
                let (server, report) = SensingServer::durable(
                    Box::new(setup.disk.clone()),
                    setup.opts,
                    self.recorder.clone(),
                    now,
                )
                .expect("recovery must always yield a serving state");
                self.server = server;
                for spec in setup.apps {
                    self.server
                        .register_application(spec)
                        .expect("re-registering a previously accepted application");
                }
                self.stats.server_crashes += 1;
                self.recoveries.push(report.summary());
                if let Some(dump) = self.recorder.flight_render() {
                    self.postmortems.push(dump);
                }
                self.recorder.count("sim.server_crashes", 1);
            }
            WorldEvent::ProcessData { interval, until } => {
                self.server.tick(now);
                self.server.process_data().expect("processor pass on installed tables");
                if now + interval <= until {
                    self.queue
                        .schedule(now + interval, WorldEvent::ProcessData { interval, until });
                }
            }
            WorldEvent::HealthCheck { interval, until } => {
                self.server.tick(now);
                self.server.update_health_gauges();
                // Close the window *before* grading so trend objectives
                // see this period's deltas as the latest reading.
                if let Some(ring) = self.windows.as_mut() {
                    if let Some(snapshot) = self.recorder.metrics_snapshot() {
                        ring.roll(now, &snapshot);
                        self.recorder.count("obs.windows_rolled", 1);
                    }
                }
                if let Some(engine) = self.health.as_mut() {
                    self.alerts.extend(engine.evaluate_and_emit_windowed(
                        &self.recorder,
                        self.windows.as_ref(),
                        now,
                    ));
                }
                if now + interval <= until {
                    self.queue
                        .schedule(now + interval, WorldEvent::HealthCheck { interval, until });
                }
            }
            WorldEvent::Deliver(flight) => {
                let Ok((msg, ctx)) = Message::decode_traced(&flight.frame) else {
                    self.stats.decode_failures += 1;
                    self.recorder.count_labeled("net.frames_rejected", flight.to.label(), 1);
                    return;
                };
                match flight.to {
                    Endpoint::Server => {
                        self.server.tick(now);
                        match self.server.handle_message_ctx(&msg, ctx) {
                            Ok(replies) => {
                                if matches!(msg, Message::SensedDataUpload { .. }) {
                                    self.stats.uploads_accepted += 1;
                                }
                                for (token, reply, reply_ctx) in replies {
                                    if let Some(&idx) = self.token_to_phone.get(&token) {
                                        self.post_traced(
                                            now,
                                            Endpoint::Phone(idx),
                                            &reply,
                                            reply_ctx,
                                        );
                                    }
                                }
                            }
                            Err(_) => self.stats.server_rejections += 1,
                        }
                    }
                    Endpoint::Phone(idx) => {
                        if self.phones[idx].now() < now {
                            let msgs = self.phones[idx].advance_to_ctx(now);
                            self.forward_phone_messages(now, msgs);
                        }
                        let replies = self.phones[idx].handle_message_ctx(&msg, ctx);
                        for reply in replies {
                            self.post(now, Endpoint::Server, &reply);
                        }
                    }
                }
            }
        }
    }

    fn forward_phone_messages(&mut self, now: f64, msgs: Vec<(Message, Option<TraceContext>)>) {
        for (msg, ctx) in msgs {
            self.post_traced(now, Endpoint::Server, &msg, ctx);
        }
    }
}

fn event_kind(event: &WorldEvent) -> &'static str {
    match event {
        WorldEvent::Scan { .. } => "scan",
        WorldEvent::Deliver(_) => "deliver",
        WorldEvent::PhoneSweep { .. } => "phone_sweep",
        WorldEvent::LivenessCheck { .. } => "liveness_check",
        WorldEvent::ServerCrash => "server_crash",
        WorldEvent::ProcessData { .. } => "process_data",
        WorldEvent::HealthCheck { .. } => "health_check",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportConfig;
    use sor_sensors::environment::presets;
    use sor_sensors::{SensorKind, SensorManager, SimulatedProvider};
    use sor_server::{ApplicationSpec, Extractor, FeatureSpec};
    use std::sync::Arc;

    fn cafe_spec() -> ApplicationSpec {
        ApplicationSpec {
            app_id: 1,
            name: "B&N Cafe".into(),
            creator: "owner".into(),
            category: "coffee-shop".into(),
            latitude: 43.0445,
            longitude: -76.0749,
            radius_m: 200.0,
            script: "get_temperature_readings(5)\nget_noise_readings(5)".into(),
            period_seconds: 3600.0,
            instants: 360,
            features: vec![
                FeatureSpec::new(
                    "temperature",
                    "°F",
                    Extractor::Mean { sensor: SensorKind::Temperature.wire_id() },
                    60.0,
                ),
                FeatureSpec::new(
                    "noise",
                    "",
                    Extractor::Mean { sensor: SensorKind::Microphone.wire_id() },
                    20.0,
                ),
            ],
        }
    }

    fn add_cafe_phones(world: &mut SorWorld) {
        let env = Arc::new(presets::bn_cafe(5));
        for token in 0..3u64 {
            let mut mgr = SensorManager::new();
            for kind in [SensorKind::Temperature, SensorKind::Microphone, SensorKind::Gps] {
                mgr.register(SimulatedProvider::new(kind, env.clone()));
            }
            let idx = world.add_phone(MobileFrontend::new(token, mgr));
            world.schedule_sweeps(idx, 1.0, 20.0, 3600.0);
        }
    }

    fn cafe_world(transport: Transport) -> SorWorld {
        let mut server = SensingServer::new().unwrap();
        server.register_application(cafe_spec()).unwrap();
        let mut world = SorWorld::new(server, transport);
        add_cafe_phones(&mut world);
        world
    }

    #[test]
    fn end_to_end_collection_produces_features() {
        let mut world = cafe_world(Transport::perfect());
        for phone in 0..3 {
            world.schedule_scan(phone as f64 * 60.0, phone, 1, 8, 1800.0);
        }
        world.run_until(3600.0);
        world.server.process_data().unwrap();
        assert!(world.stats.uploads_accepted > 0, "{:?}", world.stats);
        assert_eq!(world.stats.decode_failures, 0);
        let temp = world.server.feature_value(1, "temperature").unwrap().unwrap();
        assert!((temp - 71.0).abs() < 2.0, "temperature {temp}");
        let noise = world.server.feature_value(1, "noise").unwrap().unwrap();
        assert!((0.0..0.3).contains(&noise), "noise {noise}");
    }

    #[test]
    fn bytecode_engine_matches_tree_walker_end_to_end() {
        // The same deployment twice: tree-walking interpreter vs the
        // bytecode VM fleet-wide. Every feature the server computes must
        // be bit-identical, and the fleet must have compiled the app's
        // one script exactly once.
        let run = |vm: bool| {
            let mut world = cafe_world(Transport::perfect());
            for phone in &mut world.phones {
                phone.set_script_vm(vm);
            }
            for phone in 0..3 {
                world.schedule_scan(phone as f64 * 60.0, phone, 1, 8, 1800.0);
            }
            world.run_until(3600.0);
            world.server.process_data().unwrap();
            let temp = world.server.feature_value(1, "temperature").unwrap().unwrap();
            let noise = world.server.feature_value(1, "noise").unwrap().unwrap();
            (world.stats.uploads_accepted, temp, noise, world.script_cache().stats())
        };
        let (up_tree, temp_tree, noise_tree, cache_tree) = run(false);
        let (up_vm, temp_vm, noise_vm, cache_vm) = run(true);
        assert_eq!(up_tree, up_vm, "upload counts must match across engines");
        assert_eq!(temp_tree, temp_vm, "features must be bit-identical across engines");
        assert_eq!(noise_tree, noise_vm, "features must be bit-identical across engines");
        assert_eq!(cache_tree.compiles, 0, "tree path never touches the cache");
        assert_eq!(cache_vm.compiles, 1, "one script, one compilation for the whole fleet");
        assert!(cache_vm.hits > 0, "fleet re-dispatches must hit: {cache_vm:?}");
    }

    #[test]
    fn privacy_violating_script_rejected_end_to_end() {
        // App 1 uploads a raw GPS trace (taint-rejected at admission);
        // app 2 aggregates the same acquisition and must sail through
        // the whole pipeline: admission, dispatch, sensing, upload.
        let raw_spec = ApplicationSpec {
            app_id: 1,
            name: "tracker".into(),
            script: "local track = get_gps_readings(4)\nreturn track".into(),
            ..cafe_spec()
        };
        let agg_spec = ApplicationSpec {
            app_id: 2,
            name: "aggregator".into(),
            script: "local track = get_gps_readings(4)\nreturn mean(track)".into(),
            features: Vec::new(),
            ..cafe_spec()
        };
        let rec = Recorder::enabled();
        let mut server = SensingServer::new().unwrap();
        server.set_recorder(rec.clone());
        server.register_application(raw_spec).unwrap();
        server.register_application(agg_spec).unwrap();
        let mut world = SorWorld::new(server, Transport::perfect());
        add_cafe_phones(&mut world);

        world.schedule_scan(10.0, 0, 1, 4, 1800.0); // privacy-violating app
        world.schedule_scan(20.0, 1, 2, 4, 1800.0); // aggregated app
        world.run_until(3600.0);

        // The raw-return app died at admission, before any scheduling.
        assert_eq!(rec.counter("server.scripts_rejected_privacy"), 1);
        assert_eq!(world.stats.server_rejections, 1, "{:?}", world.stats);
        assert!(world.server.participation().active_for(1).is_empty());

        // The aggregated app ran its full sensing schedule.
        assert_eq!(rec.counter("server.admissions_accepted"), 1);
        assert!(world.stats.uploads_accepted > 0, "{:?}", world.stats);
        assert!(world.server.participation().all().any(|t| t.app_id == 2));
    }

    #[test]
    fn lossy_network_still_converges() {
        let mut world = cafe_world(Transport::new(TransportConfig {
            loss_rate: 0.2,
            seed: 3,
            ..Default::default()
        }));
        for phone in 0..3 {
            world.schedule_scan(phone as f64 * 30.0, phone, 1, 10, 3000.0);
        }
        world.run_until(3600.0);
        world.server.process_data().unwrap();
        // Some uploads get through; features still computable.
        assert!(world.stats.uploads_accepted > 0);
        assert!(world.server.feature_value(1, "temperature").unwrap().is_some());
    }

    #[test]
    fn corrupted_frames_are_rejected_not_ingested() {
        let mut world = cafe_world(Transport::new(TransportConfig {
            corruption_rate: 1.0,
            seed: 4,
            ..Default::default()
        }));
        world.schedule_scan(0.0, 0, 1, 5, 1000.0);
        world.run_until(2000.0);
        assert!(world.stats.decode_failures > 0);
        assert_eq!(world.stats.uploads_accepted, 0);
    }

    #[test]
    fn quiet_phones_get_paged_and_ping_back() {
        // A fully lossy uplink: the server never hears uploads, so the
        // phone goes quiet and must be paged. Pages and pings travel on
        // the same transport, so with full loss nothing arrives either —
        // use a perfect transport but a phone with NO sweeps (it simply
        // never sends anything after the scan).
        let mut world = cafe_world(Transport::perfect());
        // Note: cafe_world schedules sweeps; add one extra silent phone.
        let env = Arc::new(presets::bn_cafe(99));
        let mut mgr = SensorManager::new();
        for kind in [SensorKind::Temperature, SensorKind::Gps] {
            mgr.register(SimulatedProvider::new(kind, env.clone()));
        }
        let idx = world.add_phone(MobileFrontend::new(42, mgr));
        world.schedule_scan(0.0, idx, 1, 0, 3600.0); // zero budget: silent after scan
        world.schedule_liveness_checks(10.0, 60.0, 120.0, 1000.0);
        world.run_until(1000.0);
        assert!(world.stats.pages_sent > 0, "{:?}", world.stats);
        // The paged phone replied: it is not paged every single check.
        assert!(
            world.stats.pages_sent < 8,
            "pings should re-arm the liveness timer: {:?}",
            world.stats
        );
    }

    #[test]
    fn server_crash_mid_run_recovers_and_keeps_collecting() {
        let mut world = SorWorld::durable(
            SimDisk::new(11),
            DurableOptions::default(),
            vec![cafe_spec()],
            Transport::perfect(),
            Recorder::default(),
        )
        .unwrap();
        add_cafe_phones(&mut world);
        for phone in 0..3 {
            world.schedule_scan(phone as f64 * 60.0, phone, 1, 8, 3000.0);
        }
        world.schedule_crash(900.0);
        world.run_until(3600.0);
        assert_eq!(world.stats.server_crashes, 1);
        assert_eq!(world.recoveries.len(), 1);
        assert!(world.recoveries[0].starts_with("recovery:"), "{}", world.recoveries[0]);
        world.server.process_data().unwrap();
        assert!(world.stats.uploads_accepted > 0, "{:?}", world.stats);
        // Recovered tasks survive: the participation manager still
        // knows every admitted phone.
        assert_eq!(world.server.participation().all().count(), 3);
        let temp = world.server.feature_value(1, "temperature").unwrap().unwrap();
        assert!((temp - 71.0).abs() < 2.0, "temperature {temp}");
    }

    #[test]
    #[should_panic(expected = "without durable storage")]
    fn crash_on_an_ephemeral_world_is_a_scenario_bug() {
        let mut world = cafe_world(Transport::perfect());
        world.schedule_crash(1.0);
        world.run_until(10.0);
    }

    #[test]
    fn scan_for_unknown_app_is_rejected() {
        let mut world = cafe_world(Transport::perfect());
        world.schedule_scan(0.0, 0, 99, 5, 1000.0);
        world.run_until(100.0);
        assert_eq!(world.stats.server_rejections, 1);
    }
}
