//! In-memory lossy transport.
//!
//! The paper ships binary message bodies over HTTP; here each hop
//! serialises the [`sor_proto::Message`] to its checksummed frame,
//! optionally drops or corrupts it, and delivers the *bytes* — the
//! receiver must decode and may reject. This makes the codec's
//! integrity machinery load-bearing in every simulation.

use sor_obs::Recorder;
use sor_proto::{Message, TraceContext};
use sor_sensors::noise::HashNoise;

/// Who a frame is addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The sensing server.
    Server,
    /// Phone `i` (index into the world's phone list).
    Phone(usize),
}

impl Endpoint {
    /// Metric label for this endpoint class.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Server => "server",
            Endpoint::Phone(_) => "phone",
        }
    }
}

/// Transport behaviour knobs.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// One-way delivery latency (seconds).
    pub latency: f64,
    /// Probability a frame is silently dropped.
    pub loss_rate: f64,
    /// Probability a delivered frame has one bit flipped (the CRC should
    /// catch it downstream).
    pub corruption_rate: f64,
    /// Noise seed.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig { latency: 0.05, loss_rate: 0.0, corruption_rate: 0.0, seed: 1 }
    }
}

/// A frame in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlight {
    /// Delivery time.
    pub deliver_at: f64,
    /// Destination.
    pub to: Endpoint,
    /// The (possibly corrupted) frame bytes.
    pub frame: Vec<u8>,
}

/// The transport: stateless beyond its RNG counter; the caller owns the
/// event queue and schedules deliveries.
#[derive(Debug)]
pub struct Transport {
    cfg: TransportConfig,
    noise: HashNoise,
    counter: u64,
    sent: u64,
    dropped: u64,
    corrupted: u64,
    recorder: Recorder,
}

impl Transport {
    /// A transport with the given behaviour.
    pub fn new(cfg: TransportConfig) -> Self {
        Transport {
            cfg,
            noise: HashNoise::new(cfg.seed),
            counter: 0,
            sent: 0,
            dropped: 0,
            corrupted: 0,
            recorder: Recorder::default(),
        }
    }

    /// Installs a recorder; every frame reports send/drop/corrupt
    /// counters labeled by destination class.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Perfect transport (no loss, no corruption, default latency).
    pub fn perfect() -> Self {
        Transport::new(TransportConfig::default())
    }

    /// Sends a message at time `now`; returns the in-flight frame, or
    /// `None` if the network dropped it.
    pub fn send(&mut self, now: f64, to: Endpoint, msg: &Message) -> Option<InFlight> {
        self.send_traced(now, to, msg, None)
    }

    /// [`Transport::send`] with a causal [`TraceContext`] spliced into
    /// the frame header (see `sor-proto`); the receiver recovers it
    /// via [`Message::decode_traced`]. Loss and corruption behave
    /// identically to untraced sends.
    pub fn send_traced(
        &mut self,
        now: f64,
        to: Endpoint,
        msg: &Message,
        ctx: Option<TraceContext>,
    ) -> Option<InFlight> {
        self.counter += 1;
        self.sent += 1;
        self.recorder.count_labeled("net.frames_sent", to.label(), 1);
        if self.noise.uniform(self.counter, now) < self.cfg.loss_rate {
            self.dropped += 1;
            self.recorder.count_labeled("net.frames_dropped", to.label(), 1);
            return None;
        }
        let mut frame = msg.encode_traced(ctx);
        if self.noise.uniform(self.counter ^ 0xC0, now) < self.cfg.corruption_rate {
            let idx = (self.noise.uniform(self.counter ^ 0xC1, now) * frame.len() as f64) as usize;
            let bit = (self.noise.uniform(self.counter ^ 0xC2, now) * 8.0) as u32 % 8;
            let idx = idx.min(frame.len() - 1);
            frame[idx] ^= 1 << bit;
            self.corrupted += 1;
            self.recorder.count_labeled("net.frames_corrupted", to.label(), 1);
        }
        self.recorder.observe("net.frame_bytes", frame.len() as f64);
        self.recorder.observe("net.latency_s", self.cfg.latency);
        Some(InFlight { deliver_at: now + self.cfg.latency, to, frame })
    }

    /// Frames handed to `send` so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames the network dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames delivered with injected corruption.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::Ping { token: 9, uptime_ms: 100 }
    }

    #[test]
    fn perfect_transport_delivers_decodable_frames() {
        let mut t = Transport::perfect();
        let f = t.send(10.0, Endpoint::Server, &msg()).unwrap();
        assert_eq!(f.deliver_at, 10.05);
        assert_eq!(Message::decode(&f.frame).unwrap(), msg());
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut t = Transport::new(TransportConfig { loss_rate: 1.0, ..Default::default() });
        for i in 0..50 {
            assert!(t.send(i as f64, Endpoint::Server, &msg()).is_none());
        }
        assert_eq!(t.dropped(), 50);
    }

    #[test]
    fn partial_loss_is_roughly_proportional() {
        let mut t = Transport::new(TransportConfig { loss_rate: 0.3, ..Default::default() });
        let mut delivered = 0;
        for i in 0..2000 {
            if t.send(i as f64, Endpoint::Server, &msg()).is_some() {
                delivered += 1;
            }
        }
        let rate = delivered as f64 / 2000.0;
        assert!((rate - 0.7).abs() < 0.05, "delivery rate {rate}");
    }

    #[test]
    fn corruption_is_caught_by_crc() {
        let mut t = Transport::new(TransportConfig { corruption_rate: 1.0, ..Default::default() });
        let mut rejected = 0;
        for i in 0..100 {
            let f = t.send(i as f64, Endpoint::Server, &msg()).unwrap();
            if Message::decode(&f.frame).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 100, "every single-bit flip must be detected");
        assert_eq!(t.corrupted(), 100);
    }

    #[test]
    fn transport_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t =
                Transport::new(TransportConfig { loss_rate: 0.5, seed, ..Default::default() });
            (0..100)
                .map(|i| t.send(i as f64, Endpoint::Server, &msg()).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn traced_send_carries_context_through_the_wire() {
        let mut t = Transport::perfect();
        let ctx = TraceContext { trace_id: 7, parent_span: 3 };
        let f = t.send_traced(1.0, Endpoint::Server, &msg(), Some(ctx)).unwrap();
        let (m, got) = Message::decode_traced(&f.frame).unwrap();
        assert_eq!(m, msg());
        assert_eq!(got, Some(ctx));
    }

    #[test]
    fn untraced_send_is_byte_identical_to_send_traced_none() {
        let a = Transport::perfect().send(1.0, Endpoint::Server, &msg()).unwrap();
        let b = Transport::perfect().send_traced(1.0, Endpoint::Server, &msg(), None).unwrap();
        assert_eq!(a.frame, b.frame);
    }
}
