//! The field tests of §V-A (hiking trails) and §V-B (coffee shops),
//! rebuilt end to end: synthetic places, real phones, real server, real
//! wire protocol.

use std::sync::Arc;

use sor_core::ranking::{FeatureMatrix, Preference, UserPreferences};
use sor_durable::{DurableOptions, SimDisk};
use sor_frontend::MobileFrontend;
use sor_obs::{
    sample_trace, Alert, HealthReport, Recorder, RunArchive, RunMeta, SamplePolicy, SampleStats,
    WindowRing, ARCHIVE_SCHEMA_VERSION,
};
use sor_sensors::environment::Environment;
use sor_sensors::{EnergyMeter, SensorKind, SensorManager, SimulatedProvider};
use sor_server::ranker::assemble_matrix;
use sor_server::{ApplicationSpec, Extractor, FeatureSpec, SensingServer, ServerError};

use crate::transport::{Transport, TransportConfig};
use crate::world::{SorWorld, WorldStats};

/// Field-test knobs. Defaults follow the paper: a 3-hour window
/// (11:00–14:00), 7 phones per trail / 12 per coffee shop, generous
/// budgets.
#[derive(Debug, Clone, Copy)]
pub struct FieldTestConfig {
    /// Phones per place.
    pub phones_per_place: usize,
    /// Test duration in seconds.
    pub duration: f64,
    /// Per-phone sensing budget.
    pub budget: u32,
    /// Phone sweep interval (seconds).
    pub sweep_interval: f64,
    /// Environment / transport noise seed.
    pub seed: u64,
    /// Network behaviour (defaults to a perfect link; the degraded SLO
    /// scenarios elevate `loss_rate`).
    pub network: TransportConfig,
    /// Interval between the server's periodic Data Processor passes
    /// (the paper's "periodically checks … binary sensed data").
    pub processing_interval: f64,
    /// Interval between SLO health evaluations.
    pub health_interval: f64,
}

impl FieldTestConfig {
    /// The §V-B coffee-shop setup (12 phones).
    pub fn coffee() -> Self {
        FieldTestConfig {
            phones_per_place: 12,
            duration: 10_800.0,
            budget: 17,
            sweep_interval: 30.0,
            seed: 20131115, // Nov 15, 2013 — the coffee-shop test date
            network: TransportConfig::default(),
            processing_interval: 120.0,
            health_interval: 600.0,
        }
    }

    /// The §V-A hiking-trail setup (7 phones).
    pub fn trails() -> Self {
        FieldTestConfig {
            phones_per_place: 7,
            duration: 10_800.0,
            budget: 17,
            sweep_interval: 30.0,
            seed: 20131117, // Nov 17, 2013 — the trail test date
            network: TransportConfig::default(),
            processing_interval: 120.0,
            health_interval: 600.0,
        }
    }

    /// A small/fast variant for unit tests.
    pub fn quick(seed: u64) -> Self {
        FieldTestConfig {
            phones_per_place: 3,
            duration: 1_800.0,
            budget: 8,
            sweep_interval: 20.0,
            seed,
            network: TransportConfig::default(),
            processing_interval: 120.0,
            health_interval: 300.0,
        }
    }

    /// The same config over a degraded network: an elevated frame drop
    /// rate that should trip the transport-drop SLO while leaving the
    /// pipeline functional.
    pub fn with_loss(mut self, loss_rate: f64) -> Self {
        self.network = TransportConfig { loss_rate, seed: self.seed, ..self.network };
        self
    }
}

/// What a field test produces.
#[derive(Debug)]
pub struct FieldTestOutcome {
    /// The server after collection + processing (rank against it).
    pub server: SensingServer,
    /// The assembled feature matrix `H` for the category.
    pub matrix: FeatureMatrix,
    /// App ids in matrix row order.
    pub app_ids: Vec<u64>,
    /// Transport/ingest statistics.
    pub stats: WorldStats,
    /// Total sensing energy spent per place (millijoules), in app-id
    /// order — the fleet-wide cost of the collection.
    pub energy_mj_per_place: Vec<f64>,
    /// One recovery summary per server crash (empty for crash-free or
    /// ephemeral runs), in crash order.
    pub recoveries: Vec<String>,
    /// One rendered flight-recorder post-mortem per crash (empty
    /// without a flight-equipped recorder), in crash order.
    pub postmortems: Vec<String>,
    /// Every SLO alert the health engine fired during the run, in
    /// firing order (empty without periodic health checks or when every
    /// objective held).
    pub alerts: Vec<Alert>,
    /// The final end-of-run health grade (None with a disabled
    /// recorder).
    pub health: Option<HealthReport>,
    /// The windowed-metrics ring — one window per health check (None
    /// when the run had no periodic health checks).
    pub windows: Option<WindowRing>,
}

/// Environment knobs captured into every run archive: anything that
/// can change scenario behaviour and therefore comparability.
pub const ARCHIVED_KNOBS: &[&str] =
    &["SOR_SCHED_SOLVER", "SOR_SCRIPT_OPT", "SOR_SCRIPT_VM", "SOR_THREADS", "SOR_TRACE_SAMPLE"];

impl FieldTestOutcome {
    /// Bundles this run's observability artifacts into a [`RunArchive`]
    /// ready for sealing: the trace (sampled under the run seed via
    /// [`SamplePolicy::from_env`]), the metric registry *including* the
    /// sampling counters (so a re-export from the archive is
    /// byte-identical to the live export), the windowed deltas, the
    /// server's top-k sketches, the SLO report card, and provenance
    /// metadata. `None` with a disabled recorder — there is nothing to
    /// archive.
    pub fn archive(
        &self,
        recorder: &Recorder,
        cfg: &FieldTestConfig,
        scenario: &str,
        git_sha: &str,
    ) -> Option<(RunArchive, SampleStats)> {
        let full = recorder.trace_snapshot()?;
        let mut metrics = recorder.metrics_snapshot()?;
        let policy = SamplePolicy::from_env(cfg.seed);
        let (trace, stats) = sample_trace(&full, &policy);
        stats.record_into(&mut metrics);
        let mut knobs: Vec<(String, String)> = ARCHIVED_KNOBS
            .iter()
            .filter_map(|name| std::env::var(name).ok().map(|v| (name.to_string(), v)))
            .collect();
        knobs.sort();
        let archive = RunArchive {
            meta: RunMeta {
                schema_version: ARCHIVE_SCHEMA_VERSION,
                git_sha: git_sha.to_string(),
                scenario: scenario.to_string(),
                seed: cfg.seed,
                threads: sor_par::current_threads() as u32,
                knobs,
            },
            trace,
            metrics,
            windows: self.windows.clone(),
            topk: vec![
                ("hot upload places".to_string(), self.server.topk_uploads().clone()),
                ("hot dispatch scripts".to_string(), self.server.topk_dispatches().clone()),
            ],
            health: self.health.clone(),
        };
        Some((archive, stats))
    }
}

/// Durability knobs for a crash-injecting field test.
#[derive(Debug, Clone)]
pub struct DurableRun {
    /// The simulated disk the server persists to across crashes.
    pub disk: SimDisk,
    /// Write-ahead-log and checkpoint knobs.
    pub opts: DurableOptions,
    /// Instants (seconds) at which the server dies and recovers.
    pub crash_times: Vec<f64>,
}

impl DurableRun {
    /// A durable run with `crash_times` crashes on a fresh disk seeded
    /// from the field-test seed.
    pub fn crashes_at(cfg: &FieldTestConfig, crash_times: Vec<f64>) -> Self {
        DurableRun {
            disk: SimDisk::new(cfg.seed ^ 0xD15C),
            opts: DurableOptions::default(),
            crash_times,
        }
    }
}

/// The coffee-shop feature set (Fig. 10): temperature, brightness,
/// background noise, WiFi signal strength. All are plain averages, as in
/// §V-B. σ values: slow features large, fast features small (§III).
pub fn coffee_features() -> Vec<FeatureSpec> {
    vec![
        FeatureSpec::new(
            "temperature",
            "°F",
            Extractor::Mean { sensor: SensorKind::Temperature.wire_id() },
            60.0,
        ),
        FeatureSpec::new(
            "brightness",
            "lux",
            Extractor::Mean { sensor: SensorKind::Light.wire_id() },
            30.0,
        ),
        FeatureSpec::new(
            "noise",
            "",
            Extractor::Mean { sensor: SensorKind::Microphone.wire_id() },
            10.0,
        ),
        FeatureSpec::new(
            "wifi",
            "dBm",
            Extractor::Mean { sensor: SensorKind::WifiRssi.wire_id() },
            10.0,
        ),
    ]
}

/// The hiking-trail feature set (Fig. 6): temperature, humidity,
/// roughness of road surface, curvature, altitude change — with the
/// §V-A extraction methods.
pub fn trail_features() -> Vec<FeatureSpec> {
    vec![
        FeatureSpec::new(
            "temperature",
            "°F",
            Extractor::Mean { sensor: SensorKind::Temperature.wire_id() },
            60.0,
        ),
        FeatureSpec::new(
            "humidity",
            "%",
            Extractor::Mean { sensor: SensorKind::Humidity.wire_id() },
            60.0,
        ),
        FeatureSpec::new(
            "roughness",
            "m/s²",
            Extractor::WindowedDeviation { sensor: SensorKind::Accelerometer.wire_id(), arity: 3 },
            5.0,
        ),
        FeatureSpec::new(
            "curvature",
            "°/100m",
            Extractor::Curvature { gps_sensor: SensorKind::Gps.wire_id() },
            30.0,
        ),
        FeatureSpec::new(
            "altitude-change",
            "m",
            Extractor::AltitudeChange { gps_sensor: SensorKind::Gps.wire_id() },
            30.0,
        ),
    ]
}

/// The SenseScript distributed for coffee shops.
pub const COFFEE_SCRIPT: &str = "\
get_temperature_readings(5)
get_light_readings(5)
get_noise_readings(10)
get_wifi_readings(5)
";

/// The SenseScript distributed for trails.
pub const TRAIL_SCRIPT: &str = "\
get_temperature_readings(3)
get_humidity_readings(3)
get_accel_readings(40)
get_gps_readings(10)
";

const COFFEE_SENSORS: &[SensorKind] = &[
    SensorKind::Temperature,
    SensorKind::Light,
    SensorKind::Microphone,
    SensorKind::WifiRssi,
    SensorKind::Gps,
];

const TRAIL_SENSORS: &[SensorKind] =
    &[SensorKind::Temperature, SensorKind::Humidity, SensorKind::Accelerometer, SensorKind::Gps];

/// Runs the §V-B coffee-shop field test over the three preset shops.
///
/// # Errors
///
/// Server/storage errors while assembling the feature matrix.
pub fn run_coffee_field_test(cfg: FieldTestConfig) -> Result<FieldTestOutcome, ServerError> {
    run_coffee_field_test_traced(cfg, Recorder::default())
}

/// [`run_coffee_field_test`] with a recorder wired through the whole
/// deployment (server, phones, transport, store).
///
/// # Errors
///
/// Server/storage errors while assembling the feature matrix.
pub fn run_coffee_field_test_traced(
    cfg: FieldTestConfig,
    recorder: Recorder,
) -> Result<FieldTestOutcome, ServerError> {
    run_coffee_field_test_inner(cfg, recorder, None)
}

/// The §V-B coffee-shop field test on a durable server that crashes and
/// recovers at each of `durable.crash_times` — every acked upload must
/// survive each restart.
///
/// # Errors
///
/// Server/storage/durability errors while running or ranking.
pub fn run_coffee_field_test_durable(
    cfg: FieldTestConfig,
    durable: DurableRun,
) -> Result<FieldTestOutcome, ServerError> {
    run_coffee_field_test_inner(cfg, Recorder::default(), Some(durable))
}

/// [`run_coffee_field_test_durable`] with an explicit recorder — pass a
/// flight-equipped one to collect a post-mortem at every crash.
///
/// # Errors
///
/// Server/storage/durability errors while running or ranking.
pub fn run_coffee_field_test_durable_traced(
    cfg: FieldTestConfig,
    durable: DurableRun,
    recorder: Recorder,
) -> Result<FieldTestOutcome, ServerError> {
    run_coffee_field_test_inner(cfg, recorder, Some(durable))
}

fn run_coffee_field_test_inner(
    cfg: FieldTestConfig,
    recorder: Recorder,
    durable: Option<DurableRun>,
) -> Result<FieldTestOutcome, ServerError> {
    let shops = sor_sensors::environment::presets::coffee_shops(cfg.seed);
    let envs: Vec<Arc<dyn Environment>> =
        shops.into_iter().map(|e| Arc::new(e) as Arc<dyn Environment>).collect();
    run_field_test(
        cfg,
        recorder,
        envs,
        "coffee-shop",
        COFFEE_SCRIPT,
        coffee_features(),
        COFFEE_SENSORS,
        300.0, // shops are small; tight admission radius
        0.5,   // indoor sample interval (seconds)
        durable,
    )
}

/// Runs the §V-A hiking-trail field test over the three preset trails.
///
/// # Errors
///
/// Server/storage errors while assembling the feature matrix.
pub fn run_trail_field_test(cfg: FieldTestConfig) -> Result<FieldTestOutcome, ServerError> {
    run_trail_field_test_traced(cfg, Recorder::default())
}

/// [`run_trail_field_test`] with a recorder wired through the whole
/// deployment (server, phones, transport, store).
///
/// # Errors
///
/// Server/storage errors while assembling the feature matrix.
pub fn run_trail_field_test_traced(
    cfg: FieldTestConfig,
    recorder: Recorder,
) -> Result<FieldTestOutcome, ServerError> {
    let trails = sor_sensors::environment::presets::hiking_trails(cfg.seed);
    let envs: Vec<Arc<dyn Environment>> =
        trails.into_iter().map(|e| Arc::new(e) as Arc<dyn Environment>).collect();
    run_field_test(
        cfg,
        recorder,
        envs,
        "hiking-trail",
        TRAIL_SCRIPT,
        trail_features(),
        TRAIL_SENSORS,
        5_000.0, // a hiker may scan anywhere along the trail
        2.0,     // outdoor sample interval: GPS fixes 2 s apart
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_field_test(
    cfg: FieldTestConfig,
    recorder: Recorder,
    envs: Vec<Arc<dyn Environment>>,
    category: &str,
    script: &str,
    features: Vec<FeatureSpec>,
    sensors: &[SensorKind],
    radius_m: f64,
    sample_interval: f64,
    durable: Option<DurableRun>,
) -> Result<FieldTestOutcome, ServerError> {
    let specs: Vec<ApplicationSpec> = envs
        .iter()
        .enumerate()
        .map(|(i, env)| {
            let (latitude, longitude) = env.location();
            ApplicationSpec {
                app_id: i as u64 + 1,
                name: env.name().to_string(),
                creator: "field-test".into(),
                category: category.into(),
                latitude,
                longitude,
                radius_m,
                script: script.into(),
                period_seconds: cfg.duration,
                instants: (cfg.duration / 10.0) as usize,
                features: features.clone(),
            }
        })
        .collect();

    let mut world = match &durable {
        Some(d) => {
            SorWorld::durable(d.disk.clone(), d.opts, specs, Transport::new(cfg.network), recorder)?
        }
        None => {
            let mut server = SensingServer::new()?;
            for spec in specs {
                server.register_application(spec)?;
            }
            let mut world = SorWorld::new(server, Transport::new(cfg.network));
            world.set_recorder(recorder);
            world
        }
    };
    if cfg.processing_interval > 0.0 {
        world.schedule_processing(cfg.processing_interval, cfg.processing_interval, cfg.duration);
    }
    if cfg.health_interval > 0.0 {
        world.schedule_health_checks(cfg.health_interval, cfg.health_interval, cfg.duration);
    }
    if let Some(d) = &durable {
        for &t in &d.crash_times {
            world.schedule_crash(t);
        }
    }
    let meters: Vec<Arc<EnergyMeter>> = envs.iter().map(|_| EnergyMeter::new()).collect();
    for (place, env) in envs.iter().enumerate() {
        for p in 0..cfg.phones_per_place {
            let mut mgr = SensorManager::new();
            mgr.set_sample_interval(sample_interval);
            for &kind in sensors {
                mgr.register(
                    SimulatedProvider::new(kind, Arc::clone(env)).with_meter(meters[place].clone()),
                );
            }
            let token = (place as u64 + 1) * 1000 + p as u64;
            let idx = world.add_phone(MobileFrontend::new(token, mgr));
            // Staggered arrivals across the first half of the window,
            // each staying for the remainder.
            let arrival = (p as f64 + 0.5) * cfg.duration / (2.0 * cfg.phones_per_place as f64);
            world.schedule_scan(arrival, idx, place as u64 + 1, cfg.budget, cfg.duration - arrival);
            world.schedule_sweeps(idx, arrival + 1.0, cfg.sweep_interval, cfg.duration);
        }
    }
    world.run_until(cfg.duration + 60.0);
    world.server.process_data()?;
    // Close the causal loop in the golden trace: one neutral rank over
    // the freshly committed features, parented on the last commit span.
    // Errors (e.g. an empty matrix under heavy transport loss) don't
    // fail the run — the span alone records the attempt.
    let neutral = UserPreferences::new(
        "field-test",
        features.iter().map(|_| Preference::largest(3)).collect(),
    );
    let _ = world.server.rank(category, &neutral);
    world.server.update_health_gauges();
    let windows = world.window_ring().cloned();
    let health = match (world.health_engine(), world.recorder().metrics_snapshot()) {
        (Some(engine), Some(metrics)) => Some(engine.grade_windowed(&metrics, windows.as_ref())),
        _ => None,
    };

    let (matrix, app_ids) =
        assemble_matrix(world.server.database(), world.server.applications(), category)?;
    Ok(FieldTestOutcome {
        stats: world.stats,
        server: world.server,
        matrix,
        app_ids,
        energy_mj_per_place: meters.iter().map(|m| m.total_mj()).collect(),
        recoveries: world.recoveries,
        postmortems: world.postmortems,
        alerts: world.alerts,
        health,
        windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_core::ranking::{FeatureId, PlaceId};

    #[test]
    fn quick_coffee_field_test_orders_features_like_fig10() {
        let out = run_coffee_field_test(FieldTestConfig::quick(7)).unwrap();
        assert_eq!(out.matrix.n_places(), 3);
        assert_eq!(out.matrix.n_features(), 4);
        assert_eq!(out.stats.decode_failures, 0);
        assert!(out.stats.uploads_accepted > 0);
        // Row order: Tim Hortons, B&N, Starbucks.
        let temp = |i: usize| out.matrix.value(PlaceId(i), FeatureId(0));
        assert!(temp(0) < temp(1) && temp(1) < temp(2), "temps {:?}", [temp(0), temp(1), temp(2)]);
        let light = |i: usize| out.matrix.value(PlaceId(i), FeatureId(1));
        assert!(light(0) > light(1) && light(1) > light(2));
        let noise = |i: usize| out.matrix.value(PlaceId(i), FeatureId(2));
        assert!(noise(2) > noise(0) && noise(2) > noise(1), "Starbucks loudest");
    }

    #[test]
    fn durable_coffee_field_test_survives_a_mid_run_crash() {
        let cfg = FieldTestConfig::quick(7);
        let run = DurableRun::crashes_at(&cfg, vec![cfg.duration / 2.0]);
        let out = run_coffee_field_test_durable(cfg, run).unwrap();
        assert_eq!(out.stats.server_crashes, 1);
        assert_eq!(out.recoveries.len(), 1);
        assert_eq!(out.matrix.n_places(), 3);
        assert!(out.stats.uploads_accepted > 0, "{:?}", out.stats);
    }

    #[test]
    fn field_tests_account_their_energy() {
        let out = run_coffee_field_test(FieldTestConfig::quick(17)).unwrap();
        assert_eq!(out.energy_mj_per_place.len(), 3);
        for (i, &e) in out.energy_mj_per_place.iter().enumerate() {
            assert!(e > 0.0, "place {i} consumed no energy");
        }
    }

    #[test]
    fn quick_trail_field_test_orders_features_like_fig6() {
        let out = run_trail_field_test(FieldTestConfig::quick(9)).unwrap();
        assert_eq!(out.matrix.n_places(), 3);
        assert_eq!(out.matrix.n_features(), 5);
        // Row order: Green Lake, Long, Cliff.
        let rough = |i: usize| out.matrix.value(PlaceId(i), FeatureId(2));
        assert!(
            rough(0) < rough(1) && rough(1) < rough(2),
            "roughness {:?}",
            [rough(0), rough(1), rough(2)]
        );
        let humid = |i: usize| out.matrix.value(PlaceId(i), FeatureId(1));
        assert!(humid(0) > humid(1) && humid(1) > humid(2), "Green Lake most humid");
        let curv = |i: usize| out.matrix.value(PlaceId(i), FeatureId(3));
        assert!(curv(2) > curv(0), "Cliff switchbacks beat the lake loop");
        let alt = |i: usize| out.matrix.value(PlaceId(i), FeatureId(4));
        assert!(alt(2) > alt(0), "Cliff climbs more than the flat lake loop");
    }
}
