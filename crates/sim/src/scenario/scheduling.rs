//! The §V-C scheduling simulation.
//!
//! "the duration of sensing scheduling period was set to 3 hours, which
//! is divided by 1080 time instants. The arrival (leaving) times of
//! mobile users were randomly generated, following a uniform
//! distribution … We used a bell-shaped Gaussian distribution (with
//! μ = 0 and σ = 10 s) to model coverage … A simple scheduling
//! algorithm served as the baseline: a mobile phone starts to sense
//! every 10 s since its arrival for NBk times … The average coverage
//! probability was used as performance metric … every number in the
//! figure is an average over 10 runs."

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sor_core::coverage::GaussianCoverage;
use sor_core::schedule::{baseline, lazy_greedy_stats, Participant, ScheduleProblem, UserId};
use sor_core::time::TimeGrid;
use sor_obs::Recorder;

/// Simulation knobs; defaults are the paper's.
#[derive(Debug, Clone, Copy)]
pub struct SchedulingConfig {
    /// Number of mobile users `K`.
    pub users: usize,
    /// Per-user sensing budget `NBk`.
    pub budget: usize,
    /// Period length (seconds).
    pub period: f64,
    /// Grid instants `N`.
    pub instants: usize,
    /// Gaussian coverage σ (seconds).
    pub sigma: f64,
    /// Independent runs to average.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SchedulingConfig {
    /// The paper's §V-C parameters, with the swept quantities left to
    /// the caller.
    pub fn paper(users: usize, budget: usize, seed: u64) -> Self {
        SchedulingConfig {
            users,
            budget,
            period: 10_800.0,
            instants: 1080,
            sigma: 10.0,
            runs: 10,
            seed,
        }
    }
}

/// Mean and standard deviation of the average-coverage metric across
/// runs, for both algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulingOutcome {
    /// Greedy (Algorithm 1) mean average-coverage.
    pub greedy_mean: f64,
    /// Greedy std-dev across runs.
    pub greedy_std: f64,
    /// Baseline mean average-coverage.
    pub baseline_mean: f64,
    /// Baseline std-dev across runs.
    pub baseline_std: f64,
    /// Mean (across runs) of the variance of per-instant coverage under
    /// the greedy schedule — the §V-C stability metric.
    pub greedy_instant_var: f64,
    /// Same for the baseline schedule.
    pub baseline_instant_var: f64,
}

impl SchedulingOutcome {
    /// The headline ratio: greedy improvement over the baseline.
    pub fn improvement(&self) -> f64 {
        if self.baseline_mean == 0.0 {
            return 0.0;
        }
        self.greedy_mean / self.baseline_mean - 1.0
    }
}

/// Draws one run's participants per the paper's distributions.
pub fn draw_participants(cfg: &SchedulingConfig, rng: &mut StdRng) -> Vec<Participant> {
    (0..cfg.users)
        .map(|k| {
            let arrival = rng.random_range(0.0..cfg.period);
            let departure = rng.random_range(arrival..=cfg.period);
            Participant::new(UserId(k), arrival, departure, cfg.budget)
        })
        .collect()
}

/// Runs the simulation, averaging over `cfg.runs` draws.
pub fn run_scheduling_sim(cfg: SchedulingConfig) -> SchedulingOutcome {
    run_scheduling_sim_traced(cfg, &Recorder::default())
}

/// [`run_scheduling_sim`] reporting per-run planner work (greedy
/// iterations, marginal-gain evaluations) and coverage into `recorder`.
pub fn run_scheduling_sim_traced(cfg: SchedulingConfig, recorder: &Recorder) -> SchedulingOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = TimeGrid::new(0.0, cfg.period, cfg.instants).expect("valid config");
    let mut greedy_cov = Vec::with_capacity(cfg.runs);
    let mut base_cov = Vec::with_capacity(cfg.runs);
    let mut greedy_ivar = Vec::with_capacity(cfg.runs);
    let mut base_ivar = Vec::with_capacity(cfg.runs);
    for _ in 0..cfg.runs {
        let participants = draw_participants(&cfg, &mut rng);
        let problem = ScheduleProblem::new(grid, GaussianCoverage::new(cfg.sigma), participants);
        let (schedule, stats) = lazy_greedy_stats(&problem);
        recorder.count("sched.sim_runs", 1);
        recorder.count("sched.sim_iterations", stats.iterations);
        recorder.count("sched.sim_gain_evaluations", stats.gain_evaluations);
        let g = problem.coverage_profile(&schedule);
        let b = problem.coverage_profile(&baseline(&problem));
        let g_mean = g.iter().sum::<f64>() / g.len() as f64;
        let b_mean = b.iter().sum::<f64>() / b.len() as f64;
        recorder.observe("sched.sim_coverage.greedy", g_mean);
        recorder.observe("sched.sim_coverage.baseline", b_mean);
        greedy_cov.push(g_mean);
        base_cov.push(b_mean);
        greedy_ivar.push(mean_std(&g).1.powi(2));
        base_ivar.push(mean_std(&b).1.powi(2));
    }
    let (greedy_mean, greedy_std) = mean_std(&greedy_cov);
    let (baseline_mean, baseline_std) = mean_std(&base_cov);
    SchedulingOutcome {
        greedy_mean,
        greedy_std,
        baseline_mean,
        baseline_std,
        greedy_instant_var: greedy_ivar.iter().sum::<f64>() / greedy_ivar.len() as f64,
        baseline_instant_var: base_ivar.iter().sum::<f64>() / base_ivar.len() as f64,
    }
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    (m, v.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(users: usize, budget: usize) -> SchedulingConfig {
        SchedulingConfig {
            users,
            budget,
            period: 10_800.0,
            instants: 1080,
            sigma: 10.0,
            runs: 3,
            seed: 42,
        }
    }

    #[test]
    fn greedy_beats_baseline_at_paper_scale_point() {
        // One grid point of Fig. 14(a): 20 users, budget 17.
        let out = run_scheduling_sim(small(20, 17));
        assert!(
            out.greedy_mean > out.baseline_mean * 1.3,
            "greedy {} vs baseline {}",
            out.greedy_mean,
            out.baseline_mean
        );
        assert!(out.greedy_mean <= 1.0 + 1e-9);
    }

    #[test]
    fn coverage_grows_with_users() {
        let few = run_scheduling_sim(small(10, 17));
        let many = run_scheduling_sim(small(40, 17));
        assert!(many.greedy_mean > few.greedy_mean);
        assert!(many.baseline_mean > few.baseline_mean);
    }

    #[test]
    fn coverage_grows_with_budget() {
        let low = run_scheduling_sim(small(20, 5));
        let high = run_scheduling_sim(small(20, 25));
        assert!(high.greedy_mean > low.greedy_mean);
    }

    #[test]
    fn greedy_coverage_is_more_stable_than_baseline() {
        // The paper: "the variance of the coverage probability given by
        // our scheduling algorithm is always less than that given by the
        // baseline algorithm, which means our algorithm is more stable".
        // The robust reading is the per-instant coverage variance: the
        // greedy spreads readings evenly, the baseline clusters them.
        let out = run_scheduling_sim(SchedulingConfig { runs: 5, ..small(30, 17) });
        assert!(
            out.greedy_instant_var < out.baseline_instant_var,
            "greedy instant-var {} vs baseline {}",
            out.greedy_instant_var,
            out.baseline_instant_var
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run_scheduling_sim(small(15, 10)), run_scheduling_sim(small(15, 10)));
    }

    #[test]
    fn participants_respect_distributions() {
        let cfg = small(200, 17);
        let mut rng = StdRng::seed_from_u64(1);
        let ps = draw_participants(&cfg, &mut rng);
        assert_eq!(ps.len(), 200);
        for p in &ps {
            assert!(p.arrival >= 0.0 && p.arrival < cfg.period);
            assert!(p.departure >= p.arrival && p.departure <= cfg.period);
            assert_eq!(p.budget, 17);
        }
        // Arrivals should spread over the period.
        let mean_arrival = ps.iter().map(|p| p.arrival).sum::<f64>() / ps.len() as f64;
        assert!((mean_arrival - cfg.period / 2.0).abs() < cfg.period * 0.1);
    }
}
