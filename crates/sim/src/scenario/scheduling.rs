//! The §V-C scheduling simulation.
//!
//! "the duration of sensing scheduling period was set to 3 hours, which
//! is divided by 1080 time instants. The arrival (leaving) times of
//! mobile users were randomly generated, following a uniform
//! distribution … We used a bell-shaped Gaussian distribution (with
//! μ = 0 and σ = 10 s) to model coverage … A simple scheduling
//! algorithm served as the baseline: a mobile phone starts to sense
//! every 10 s since its arrival for NBk times … The average coverage
//! probability was used as performance metric … every number in the
//! figure is an average over 10 runs."

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sor_core::coverage::GaussianCoverage;
use sor_core::schedule::{
    baseline, lazy_greedy_stats, DecayCurve, GreedyStats, OnlineScheduler, Participant,
    ScheduleProblem, SolverKind, UserId,
};
use sor_core::time::TimeGrid;
use sor_obs::Recorder;

/// Simulation knobs; defaults are the paper's.
#[derive(Debug, Clone, Copy)]
pub struct SchedulingConfig {
    /// Number of mobile users `K`.
    pub users: usize,
    /// Per-user sensing budget `NBk`.
    pub budget: usize,
    /// Period length (seconds).
    pub period: f64,
    /// Grid instants `N`.
    pub instants: usize,
    /// Gaussian coverage σ (seconds).
    pub sigma: f64,
    /// Independent runs to average.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
    /// How task value decays with delay ([`DecayCurve::Constant`] is
    /// the paper's unweighted objective).
    pub decay: DecayCurve,
}

impl SchedulingConfig {
    /// The paper's §V-C parameters, with the swept quantities left to
    /// the caller.
    pub fn paper(users: usize, budget: usize, seed: u64) -> Self {
        SchedulingConfig {
            users,
            budget,
            period: 10_800.0,
            instants: 1080,
            sigma: 10.0,
            runs: 10,
            seed,
            decay: DecayCurve::Constant,
        }
    }
}

/// Mean and standard deviation of the average-coverage metric across
/// runs, for both algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulingOutcome {
    /// Greedy (Algorithm 1) mean average-coverage.
    pub greedy_mean: f64,
    /// Greedy std-dev across runs.
    pub greedy_std: f64,
    /// Baseline mean average-coverage.
    pub baseline_mean: f64,
    /// Baseline std-dev across runs.
    pub baseline_std: f64,
    /// Mean (across runs) of the variance of per-instant coverage under
    /// the greedy schedule — the §V-C stability metric.
    pub greedy_instant_var: f64,
    /// Same for the baseline schedule.
    pub baseline_instant_var: f64,
}

impl SchedulingOutcome {
    /// The headline ratio: greedy improvement over the baseline.
    pub fn improvement(&self) -> f64 {
        if self.baseline_mean == 0.0 {
            return 0.0;
        }
        self.greedy_mean / self.baseline_mean - 1.0
    }
}

/// Draws one run's participants per the paper's distributions.
pub fn draw_participants(cfg: &SchedulingConfig, rng: &mut StdRng) -> Vec<Participant> {
    (0..cfg.users)
        .map(|k| {
            let arrival = rng.random_range(0.0..cfg.period);
            let departure = rng.random_range(arrival..=cfg.period);
            Participant::new(UserId(k), arrival, departure, cfg.budget)
        })
        .collect()
}

/// Runs the simulation, averaging over `cfg.runs` draws.
pub fn run_scheduling_sim(cfg: SchedulingConfig) -> SchedulingOutcome {
    run_scheduling_sim_traced(cfg, &Recorder::default())
}

/// [`run_scheduling_sim`] reporting per-run planner work (greedy
/// iterations, marginal-gain evaluations) and coverage into `recorder`.
pub fn run_scheduling_sim_traced(cfg: SchedulingConfig, recorder: &Recorder) -> SchedulingOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = TimeGrid::new(0.0, cfg.period, cfg.instants).expect("valid config");
    let mut greedy_cov = Vec::with_capacity(cfg.runs);
    let mut base_cov = Vec::with_capacity(cfg.runs);
    let mut greedy_ivar = Vec::with_capacity(cfg.runs);
    let mut base_ivar = Vec::with_capacity(cfg.runs);
    for _ in 0..cfg.runs {
        let participants = draw_participants(&cfg, &mut rng);
        let problem = ScheduleProblem::new(grid, GaussianCoverage::new(cfg.sigma), participants)
            .with_decay(cfg.decay);
        let (schedule, stats) = lazy_greedy_stats(&problem);
        recorder.count("sched.sim_runs", 1);
        recorder.count("sched.sim_iterations", stats.iterations);
        recorder.count("sched.sim_gain_evaluations", stats.gain_evaluations);
        let g = problem.coverage_profile(&schedule);
        let b = problem.coverage_profile(&baseline(&problem));
        let g_mean = g.iter().sum::<f64>() / g.len() as f64;
        let b_mean = b.iter().sum::<f64>() / b.len() as f64;
        recorder.observe("sched.sim_coverage.greedy", g_mean);
        recorder.observe("sched.sim_coverage.baseline", b_mean);
        greedy_cov.push(g_mean);
        base_cov.push(b_mean);
        greedy_ivar.push(mean_std(&g).1.powi(2));
        base_ivar.push(mean_std(&b).1.powi(2));
    }
    let (greedy_mean, greedy_std) = mean_std(&greedy_cov);
    let (baseline_mean, baseline_std) = mean_std(&base_cov);
    SchedulingOutcome {
        greedy_mean,
        greedy_std,
        baseline_mean,
        baseline_std,
        greedy_instant_var: greedy_ivar.iter().sum::<f64>() / greedy_ivar.len() as f64,
        baseline_instant_var: base_ivar.iter().sum::<f64>() / base_ivar.len() as f64,
    }
}

/// Knobs for the churn simulation: a population under arrival/departure
/// churn, re-planned online after every event. Defaults come from
/// [`ChurnConfig::at_scale`].
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Grid instants `N` (the scale axis of the `sched_churn` bench).
    pub instants: usize,
    /// Period length (seconds).
    pub period: f64,
    /// Initial population present at `t = 0`.
    pub users: usize,
    /// Per-user sensing budget.
    pub budget: usize,
    /// Gaussian coverage σ (seconds).
    pub sigma: f64,
    /// Churn events (each an arrival or a departure, with the clock
    /// advancing between events).
    pub events: usize,
    /// RNG seed; the event trace depends only on the seed and sizing
    /// knobs, never on the solver, so outcomes are comparable across
    /// solvers.
    pub seed: u64,
    /// Which replanner handles each event.
    pub solver: SolverKind,
    /// Task-value decay applied to the online objective.
    pub decay: DecayCurve,
}

impl ChurnConfig {
    /// A scale point for the `sched_churn` bench: population and churn
    /// proportional to the grid size, paper-like 10 s spacing.
    pub fn at_scale(instants: usize, solver: SolverKind) -> Self {
        ChurnConfig {
            instants,
            period: instants as f64 * 10.0,
            // Proportional to the grid but capped: every arrival is a
            // replan, so an uncapped population makes the full-replan
            // arm quadratic in `instants` before churn even starts.
            users: (instants / 16).clamp(4, 64),
            budget: 4,
            sigma: 10.0,
            events: 32,
            seed: 0xC0FFEE,
            solver,
            decay: DecayCurve::Constant,
        }
    }
}

/// What one churn run did and what it cost, in deterministic work
/// counts (the same measure `sched.*` metrics export).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnOutcome {
    /// Planner work over the whole run.
    pub stats: GreedyStats,
    /// Decayed objective value of executed ∪ planned at the end.
    pub final_coverage: f64,
    /// Actions in the final schedule (executed + still planned).
    pub schedule_len: usize,
}

impl ChurnOutcome {
    /// Marginal-gain evaluations per churn event — the headline cost
    /// metric of the incremental replanner.
    pub fn evals_per_event(&self) -> f64 {
        if self.stats.replans == 0 {
            return 0.0;
        }
        self.stats.gain_evaluations as f64 / self.stats.replans as f64
    }
}

/// Drives an [`OnlineScheduler`] through a deterministic churn trace:
/// an initial population at `t = 0`, then `cfg.events` steps that each
/// advance the clock and either admit a new user or retire a present
/// one. Returns the planner's work counters and the final objective.
pub fn run_churn_sim(cfg: ChurnConfig) -> ChurnOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = TimeGrid::new(0.0, cfg.period, cfg.instants).expect("valid config");
    let mut sched = OnlineScheduler::new(grid, GaussianCoverage::new(cfg.sigma))
        .with_decay(cfg.decay)
        .with_solver(cfg.solver);
    let mut present: Vec<(UserId, f64)> = Vec::new();
    for k in 0..cfg.users {
        let departure = rng.random_range(cfg.period * 0.25..=cfg.period);
        sched.arrive(UserId(k), 0.0, departure, cfg.budget);
        present.push((UserId(k), departure));
    }
    let mut next_user = cfg.users;
    for e in 0..cfg.events {
        // Stop at 80% of the period so late arrivals still have room.
        let now = cfg.period * 0.8 * (e + 1) as f64 / cfg.events as f64;
        sched.advance_to(now);
        present.retain(|&(_, d)| d > now);
        if present.is_empty() || rng.random_range(0.0..1.0) < 0.6 {
            let lo = (now + grid.spacing()).min(cfg.period);
            let departure = rng.random_range(lo..=cfg.period);
            sched.arrive(UserId(next_user), now, departure, cfg.budget);
            present.push((UserId(next_user), departure));
            next_user += 1;
        } else {
            let i = rng.random_range(0..present.len());
            let (u, _) = present.swap_remove(i);
            sched.depart(u, now);
        }
    }
    ChurnOutcome {
        stats: sched.stats(),
        final_coverage: sched.coverage(),
        schedule_len: sched.current_schedule().len(),
    }
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    (m, v.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(users: usize, budget: usize) -> SchedulingConfig {
        SchedulingConfig {
            users,
            budget,
            period: 10_800.0,
            instants: 1080,
            sigma: 10.0,
            runs: 3,
            seed: 42,
            decay: DecayCurve::Constant,
        }
    }

    #[test]
    fn greedy_beats_baseline_at_paper_scale_point() {
        // One grid point of Fig. 14(a): 20 users, budget 17.
        let out = run_scheduling_sim(small(20, 17));
        assert!(
            out.greedy_mean > out.baseline_mean * 1.3,
            "greedy {} vs baseline {}",
            out.greedy_mean,
            out.baseline_mean
        );
        assert!(out.greedy_mean <= 1.0 + 1e-9);
    }

    #[test]
    fn coverage_grows_with_users() {
        let few = run_scheduling_sim(small(10, 17));
        let many = run_scheduling_sim(small(40, 17));
        assert!(many.greedy_mean > few.greedy_mean);
        assert!(many.baseline_mean > few.baseline_mean);
    }

    #[test]
    fn coverage_grows_with_budget() {
        let low = run_scheduling_sim(small(20, 5));
        let high = run_scheduling_sim(small(20, 25));
        assert!(high.greedy_mean > low.greedy_mean);
    }

    #[test]
    fn greedy_coverage_is_more_stable_than_baseline() {
        // The paper: "the variance of the coverage probability given by
        // our scheduling algorithm is always less than that given by the
        // baseline algorithm, which means our algorithm is more stable".
        // The robust reading is the per-instant coverage variance: the
        // greedy spreads readings evenly, the baseline clusters them.
        let out = run_scheduling_sim(SchedulingConfig { runs: 5, ..small(30, 17) });
        assert!(
            out.greedy_instant_var < out.baseline_instant_var,
            "greedy instant-var {} vs baseline {}",
            out.greedy_instant_var,
            out.baseline_instant_var
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run_scheduling_sim(small(15, 10)), run_scheduling_sim(small(15, 10)));
    }

    #[test]
    fn decay_lowers_measured_value_but_keeps_ordering() {
        let flat = run_scheduling_sim(small(20, 10));
        let decayed = run_scheduling_sim(SchedulingConfig {
            decay: DecayCurve::exponential(0.0005),
            ..small(20, 10)
        });
        // coverage_profile reports probabilities (decay scales value,
        // not probability), so the means match; the greedy still beats
        // the baseline under the decayed objective.
        assert!(decayed.greedy_mean > decayed.baseline_mean);
        assert!(flat.greedy_mean > 0.0);
    }

    #[test]
    fn churn_outcome_identical_across_exact_and_celf() {
        let exact = run_churn_sim(ChurnConfig::at_scale(128, SolverKind::Exact));
        let celf = run_churn_sim(ChurnConfig::at_scale(128, SolverKind::Celf));
        assert_eq!(exact.schedule_len, celf.schedule_len);
        assert_eq!(
            exact.final_coverage.to_bits(),
            celf.final_coverage.to_bits(),
            "CELF must be bit-identical: {} vs {}",
            exact.final_coverage,
            celf.final_coverage
        );
    }

    #[test]
    fn incremental_replanning_is_much_cheaper() {
        let exact = run_churn_sim(ChurnConfig::at_scale(256, SolverKind::Exact));
        let celf = run_churn_sim(ChurnConfig::at_scale(256, SolverKind::Celf));
        assert_eq!(exact.stats.replans, celf.stats.replans);
        assert!(celf.stats.incremental_repairs > 0);
        assert!(
            celf.stats.gain_evaluations * 4 < exact.stats.gain_evaluations,
            "incremental {} evals vs full {}",
            celf.stats.gain_evaluations,
            exact.stats.gain_evaluations
        );
        assert!(celf.evals_per_event() < exact.evals_per_event());
    }

    #[test]
    fn churn_sim_is_deterministic() {
        let cfg = ChurnConfig::at_scale(64, SolverKind::Stochastic);
        assert_eq!(run_churn_sim(cfg), run_churn_sim(cfg));
    }

    #[test]
    fn participants_respect_distributions() {
        let cfg = small(200, 17);
        let mut rng = StdRng::seed_from_u64(1);
        let ps = draw_participants(&cfg, &mut rng);
        assert_eq!(ps.len(), 200);
        for p in &ps {
            assert!(p.arrival >= 0.0 && p.arrival < cfg.period);
            assert!(p.departure >= p.arrival && p.departure <= cfg.period);
            assert_eq!(p.budget, 17);
        }
        // Arrivals should spread over the period.
        let mean_arrival = ps.iter().map(|p| p.arrival).sum::<f64>() / ps.len() as f64;
        assert!((mean_arrival - cfg.period / 2.0).abs() < cfg.period * 0.1);
    }
}
