//! The paper's experiments as reusable scenario builders.

pub mod fieldtest;
pub mod profiles;
pub mod scheduling;

pub use fieldtest::{
    coffee_features, run_coffee_field_test, run_coffee_field_test_durable,
    run_coffee_field_test_durable_traced, run_coffee_field_test_traced, run_trail_field_test,
    run_trail_field_test_traced, trail_features, DurableRun, FieldTestConfig, FieldTestOutcome,
    COFFEE_SCRIPT, TRAIL_SCRIPT,
};
pub use profiles::{alice, bob, chris, david, emma};
pub use scheduling::{
    draw_participants, run_churn_sim, run_scheduling_sim, run_scheduling_sim_traced, ChurnConfig,
    ChurnOutcome, SchedulingConfig, SchedulingOutcome,
};
