//! The five virtual users of §V (Fig. 7 hiker profiles, Fig. 11
//! customer profiles).
//!
//! Preferred values and weights follow the paper's narratives:
//!
//! - **Alice** — "an experienced hiker who prefers difficult trails. So
//!   she sets all the preferred values for the roughness, curvature and
//!   altitude change to MAX, and sets all their weights to 5."
//! - **Bob** — "a beginner who likes dry and even trails"; he prefers a
//!   mild Long-Trail-like temperature, weighs dryness heavily, and
//!   de-emphasises (but does not ignore) difficulty.
//! - **Chris** — "a beginner who likes jogging near a lake/sea/river":
//!   high humidity preferred, easy terrain.
//! - **David** — "a social person who likes to hang out with friends in
//!   coffee shops so he prefers a not-so-bright and warm place but does
//!   not really care about noise."
//! - **Emma** — "a student who likes to read and study in relatively
//!   warm coffee shops": warmth first, quiet second.
//!
//! Feature orders must match the category definitions in
//! [`crate::scenario::fieldtest`]: trails are
//! `[temperature, humidity, roughness, curvature, altitude-change]`,
//! coffee shops `[temperature, brightness, noise, wifi]`.

use sor_core::ranking::Preference;
use sor_core::UserPreferences;

/// Alice (Fig. 7a): difficulty maxed at weight 5.
pub fn alice() -> UserPreferences {
    UserPreferences::new(
        "Alice",
        vec![
            Preference::largest(0), // temperature: don't care
            Preference::largest(0), // humidity: don't care
            Preference::largest(5), // roughness: MAX, weight 5
            Preference::largest(5), // curvature: MAX, weight 5
            Preference::largest(5), // altitude change: MAX, weight 5
        ],
    )
}

/// Bob (Fig. 7b): dry and even, mild temperatures.
pub fn bob() -> UserPreferences {
    UserPreferences::new(
        "Bob",
        vec![
            Preference::value(48.0, 5), // mild late-fall hiking weather
            Preference::smallest(4),    // dry matters a lot
            Preference::smallest(1),    // gentle surface
            Preference::smallest(1),    // gentle curves
            Preference::smallest(1),    // little climbing
        ],
    )
}

/// Chris (Fig. 7c): jogging near water, easy terrain.
pub fn chris() -> UserPreferences {
    UserPreferences::new(
        "Chris",
        vec![
            Preference::largest(0),  // temperature: don't care
            Preference::largest(5),  // near water → humid
            Preference::smallest(3), // smooth for jogging
            Preference::smallest(2),
            Preference::smallest(3), // flat for jogging
        ],
    )
}

/// David (Fig. 11a): warm, not-so-bright, noise-indifferent.
pub fn david() -> UserPreferences {
    UserPreferences::new(
        "David",
        vec![
            Preference::value(75.0, 4), // warm
            Preference::smallest(4),    // not-so-bright
            Preference::largest(0),     // noise: don't care
            Preference::largest(1),     // wifi: nice to have
        ],
    )
}

/// Emma (Fig. 11b): relatively warm, quiet enough to study.
pub fn emma() -> UserPreferences {
    UserPreferences::new(
        "Emma",
        vec![
            Preference::value(69.5, 5), // relatively warm
            Preference::largest(1),     // decent light to read
            Preference::smallest(2),    // quiet
            Preference::largest(1),     // wifi for studying
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trail_profiles_cover_five_features() {
        for p in [alice(), bob(), chris()] {
            assert_eq!(p.len(), 5, "{}", p.name);
        }
    }

    #[test]
    fn coffee_profiles_cover_four_features() {
        for p in [david(), emma()] {
            assert_eq!(p.len(), 4, "{}", p.name);
        }
    }

    #[test]
    fn alice_ignores_weather() {
        let a = alice();
        assert!(a.preferences[0].weight.is_zero());
        assert!(a.preferences[1].weight.is_zero());
        assert!(!a.preferences[2].weight.is_zero());
    }

    #[test]
    fn profiles_have_distinct_names() {
        let names: Vec<String> =
            [alice(), bob(), chris(), david(), emma()].iter().map(|p| p.name.clone()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
