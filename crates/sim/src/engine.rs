//! A minimal discrete-event simulation core.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry.
struct Entry<E> {
    at: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; FIFO (seq) breaks time ties so
        // same-instant events run in schedule order.
        other.at.total_cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// # Example
///
/// ```
/// use sor_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5.0, "b");
/// q.schedule(1.0, "a");
/// q.schedule(5.0, "c"); // same instant: FIFO after "b"
/// let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past
    /// clamps to "now" (delivery still happens, immediately).
    pub fn schedule(&mut self, at: f64, event: E) {
        let at = at.max(self.now);
        self.heap.push(Entry { at, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pops the next event, advancing the queue clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next event only when `pred` approves it; otherwise the
    /// queue is left untouched. Lets callers gather maximal runs of
    /// same-instant events (e.g. a batch of phone sweeps) without
    /// re-scheduling anything — a pushed-back event would get a fresh
    /// sequence number and lose its FIFO slot.
    pub fn pop_if(&mut self, pred: impl FnOnce(f64, &E) -> bool) -> Option<(f64, E)> {
        let head = self.heap.peek()?;
        if pred(head.at, &head.event) {
            self.pop()
        } else {
            None
        }
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(7.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(4.0, ());
        q.schedule(9.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 4.0);
        q.pop();
        assert_eq!(q.now(), 9.0);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "first");
        q.pop();
        q.schedule(1.0, "late"); // in the past
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, "late");
        assert_eq!(at, 5.0);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(1.0));
    }
}
