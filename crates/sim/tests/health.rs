//! SLO/health engine acceptance: a healthy deployment grades clean and
//! fires no alerts; a seeded degraded deployment fires the expected
//! ones, deterministically.

use sor_obs::Recorder;
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

/// The healthy quick baseline holds every objective: no alerts fire and
/// the end-of-run grade reports no breach.
#[test]
fn healthy_baseline_fires_no_alerts() {
    let rec = Recorder::enabled();
    let out = run_coffee_field_test_traced(FieldTestConfig::quick(3), rec.clone()).unwrap();
    assert!(
        out.alerts.is_empty(),
        "healthy run fired alerts: {:?}",
        out.alerts.iter().map(|a| &a.slo).collect::<Vec<_>>()
    );
    let health = out.health.expect("traced run is graded");
    assert!(health.healthy(), "healthy run graded unhealthy:\n{}", health.render());
    // The online engine also left no alert events in the trace.
    let trace = rec.trace_snapshot().unwrap();
    assert!(trace.events().iter().all(|e| e.name != "slo.alert"));
}

/// Elevated transport loss breaches the drop-rate objective: the online
/// engine fires `transport_drop_rate` (and only transport objectives),
/// and the end-of-run grade records the breach.
#[test]
fn degraded_transport_fires_drop_rate_alert() {
    let rec = Recorder::enabled();
    let cfg = FieldTestConfig::quick(3).with_loss(0.1);
    let out = run_coffee_field_test_traced(cfg, rec.clone()).unwrap();
    assert!(
        out.alerts.iter().any(|a| a.slo == "transport_drop_rate"),
        "expected a transport_drop_rate alert, got: {:?}",
        out.alerts.iter().map(|a| &a.slo).collect::<Vec<_>>()
    );
    for a in &out.alerts {
        assert!(
            a.slo.starts_with("transport_")
                || a.slo == "ack_hit_rate"
                || a.slo == "coverage_realized",
            "unexpected objective breached under pure loss: {}",
            a.slo
        );
        assert!(a.detail.contains(&a.slo), "alert detail names its objective: {}", a.detail);
    }
    let health = out.health.expect("traced run is graded");
    assert!(!health.healthy(), "degraded run must grade unhealthy");
    assert!(health.breached().contains(&"transport_drop_rate"));
}

/// Alert emission is deterministic: the same degraded scenario fires the
/// same alerts in the same order, run to run.
#[test]
fn degraded_alerts_are_deterministically_ordered() {
    let run = || {
        let rec = Recorder::enabled();
        let cfg = FieldTestConfig::quick(3).with_loss(0.1);
        let out = run_coffee_field_test_traced(cfg, rec).unwrap();
        out.alerts
            .iter()
            .map(|a| format!("{:.1} {} {:.4}", a.time, a.slo, a.observed))
            .collect::<Vec<_>>()
    };
    let a = run();
    assert!(!a.is_empty(), "degraded scenario must alert");
    assert_eq!(a, run(), "alert stream must be a pure function of the scenario");
}
