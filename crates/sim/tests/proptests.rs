//! World-level property tests: whatever the event schedule and network
//! conditions, the simulation never panics and its counters stay
//! consistent.

use std::sync::Arc;

use proptest::prelude::*;
use sor_frontend::MobileFrontend;
use sor_sensors::environment::presets;
use sor_sensors::{SensorKind, SensorManager, SimulatedProvider};
use sor_server::{ApplicationSpec, SensingServer};
use sor_sim::scenario::{coffee_features, COFFEE_SCRIPT};
use sor_sim::{SorWorld, Transport, TransportConfig};

fn build_world(loss: f64, corruption: f64, seed: u64, phones: usize) -> (SorWorld, (f64, f64)) {
    let env = Arc::new(presets::starbucks(seed));
    use sor_sensors::Environment;
    let (lat, lon) = env.location();
    let mut server = SensingServer::new().unwrap();
    server
        .register_application(ApplicationSpec {
            app_id: 1,
            name: "shop".into(),
            creator: "pt".into(),
            category: "coffee-shop".into(),
            latitude: lat,
            longitude: lon,
            radius_m: 300.0,
            script: COFFEE_SCRIPT.into(),
            period_seconds: 900.0,
            instants: 90,
            features: coffee_features(),
        })
        .unwrap();
    let mut world = SorWorld::new(
        server,
        Transport::new(TransportConfig {
            loss_rate: loss,
            corruption_rate: corruption,
            seed,
            ..Default::default()
        }),
    );
    for p in 0..phones {
        let mut mgr = SensorManager::new();
        for kind in [
            SensorKind::Temperature,
            SensorKind::Light,
            SensorKind::Microphone,
            SensorKind::WifiRssi,
            SensorKind::Gps,
        ] {
            mgr.register(SimulatedProvider::new(kind, env.clone() as Arc<dyn Environment>));
        }
        world.add_phone(MobileFrontend::new(p as u64 + 1, mgr));
    }
    (world, (lat, lon))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random scan times / budgets / stays over a lossy, corrupting
    /// network: no panics, consistent counters, and every accepted
    /// upload decodable downstream.
    #[test]
    fn chaotic_worlds_stay_consistent(
        loss in 0.0f64..0.5,
        corruption in 0.0f64..0.3,
        seed in 0u64..10_000,
        scans in proptest::collection::vec(
            (0usize..3, 0.0f64..600.0, 0u32..8, 0.0f64..900.0),
            0..8
        ),
    ) {
        let (mut world, _) = build_world(loss, corruption, seed, 3);
        for &(phone, at, budget, stay) in &scans {
            world.schedule_scan(at, phone, 1, budget, stay);
        }
        for phone in 0..3 {
            world.schedule_sweeps(phone, 1.0, 45.0, 900.0);
        }
        world.run_until(960.0);
        let mut server = world.server;
        server.process_data().unwrap();
        // Counters are consistent with the event volume.
        prop_assert!(world.stats.uploads_accepted as usize <= scans.len() * 8 + 8);
        // The records table only holds decodable content (process_data
        // would have dropped garbage; re-reading must succeed).
        for app in [1u64] {
            for f in ["temperature", "brightness", "noise", "wifi"] {
                // Value may be absent (everything may have been lost),
                // but reading must never error.
                let _ = server.feature_value(app, f).unwrap();
            }
        }
    }

    /// A perfect network with at least one generous scan always yields
    /// features.
    #[test]
    fn perfect_network_always_converges(seed in 0u64..5_000) {
        let (mut world, _) = build_world(0.0, 0.0, seed, 2);
        world.schedule_scan(5.0, 0, 1, 10, 800.0);
        world.schedule_sweeps(0, 6.0, 30.0, 900.0);
        world.run_until(960.0);
        world.server.process_data().unwrap();
        prop_assert!(world.stats.uploads_accepted > 0);
        prop_assert_eq!(world.stats.decode_failures, 0);
        for f in ["temperature", "brightness", "noise", "wifi"] {
            prop_assert!(world.server.feature_value(1, f).unwrap().is_some());
        }
    }
}
