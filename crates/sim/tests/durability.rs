//! Crash-recovery invariants over the §V-B coffee-shop field test.
//!
//! The server is killed at `k` evenly spaced instants across the test
//! window and rebuilt from its simulated disk each time. Three
//! invariants must hold at every crash schedule:
//!
//! 1. recovery never panics or errors — the run completes;
//! 2. every acked upload survives (with the default group-commit of 1
//!    the WAL is flushed before the ack leaves the server);
//! 3. when all data was acked, the final ranking is identical to the
//!    crash-free run's ranking.

use sor_sim::scenario::{
    emma, run_coffee_field_test, run_coffee_field_test_durable, DurableRun, FieldTestConfig,
    FieldTestOutcome,
};

fn rank_order(out: &FieldTestOutcome) -> Vec<u64> {
    out.server.rank("coffee-shop", &emma()).unwrap().app_order
}

/// Crash instants for `k` crashes, evenly spaced strictly inside the
/// window (never at 0 or at the horizon).
fn evenly_spaced(k: usize, duration: f64) -> Vec<f64> {
    (1..=k).map(|i| i as f64 * duration / (k as f64 + 1.0)).collect()
}

#[test]
fn k_evenly_spaced_crashes_preserve_acked_data_and_ranking() {
    let cfg = FieldTestConfig::quick(13);
    let baseline = run_coffee_field_test(cfg).unwrap();
    let base_order = rank_order(&baseline);
    assert_eq!(base_order.len(), 3);

    for k in 1..=4usize {
        let crash_times = evenly_spaced(k, cfg.duration);
        let run = DurableRun::crashes_at(&cfg, crash_times.clone());
        let out = run_coffee_field_test_durable(cfg, run)
            .unwrap_or_else(|e| panic!("k={k} crashes at {crash_times:?}: {e}"));
        assert_eq!(out.stats.server_crashes as usize, k);
        assert_eq!(out.recoveries.len(), k);
        for summary in &out.recoveries {
            assert!(summary.starts_with("recovery:"), "{summary}");
        }
        assert!(out.stats.uploads_accepted > 0, "k={k}: {:?}", out.stats);
        // Everything was acked before each crash (perfect transport,
        // group commit 1), so the recovered runs rank identically.
        assert_eq!(rank_order(&out), base_order, "k={k} crashes at {crash_times:?}");
    }
}

#[test]
fn every_acked_upload_is_in_the_recovered_database() {
    use sor_sensors::environment::Environment;
    use sor_sim::scenario::coffee_features;
    use sor_sim::{SorWorld, Transport};
    use sor_store::Predicate;

    // One coffee shop, three phones, a crash mid-window. Nothing calls
    // process_data, so at the end the inbox holds exactly the uploads
    // that were acked — if the crash had eaten an acked one, the counts
    // would disagree.
    let env = std::sync::Arc::new(sor_sensors::environment::presets::bn_cafe(21));
    let spec = sor_server::ApplicationSpec {
        app_id: 1,
        name: env.name().to_string(),
        creator: "durability-test".into(),
        category: "coffee-shop".into(),
        latitude: env.location().0,
        longitude: env.location().1,
        radius_m: 300.0,
        script: sor_sim::scenario::COFFEE_SCRIPT.into(),
        period_seconds: 1_800.0,
        instants: 180,
        features: coffee_features(),
    };
    let mut world = SorWorld::durable(
        sor_durable::SimDisk::new(77),
        sor_durable::DurableOptions::default(),
        vec![spec],
        Transport::perfect(),
        sor_obs::Recorder::default(),
    )
    .unwrap();
    for token in 0..3u64 {
        let mut mgr = sor_sensors::SensorManager::new();
        mgr.set_sample_interval(0.5);
        for kind in [
            sor_sensors::SensorKind::Temperature,
            sor_sensors::SensorKind::Light,
            sor_sensors::SensorKind::Microphone,
            sor_sensors::SensorKind::WifiRssi,
            sor_sensors::SensorKind::Gps,
        ] {
            mgr.register(sor_sensors::SimulatedProvider::new(kind, env.clone()));
        }
        let idx = world.add_phone(sor_frontend::MobileFrontend::new(token, mgr));
        world.schedule_scan(token as f64 * 30.0, idx, 1, 10, 1_700.0);
        world.schedule_sweeps(idx, token as f64 * 30.0 + 1.0, 20.0, 1_800.0);
    }
    world.schedule_crash(900.0);
    world.run_until(1_800.0);

    assert_eq!(world.stats.server_crashes, 1);
    assert!(world.stats.uploads_accepted > 0, "{:?}", world.stats);
    let inbox =
        world.server.database().scan(sor_server::processor::INBOX_TABLE, &Predicate::True).unwrap();
    assert_eq!(
        inbox.len() as u64,
        world.stats.uploads_accepted,
        "acked uploads must survive the crash bit-for-bit"
    );
}
