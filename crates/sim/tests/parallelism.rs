//! `SOR_THREADS` must never change what the system computes — only how
//! fast it computes it. These tests run whole coffee-shop field tests
//! at 1 and 8 workers and require byte-identical golden traces and
//! metrics exports, identical final rankings, and identical untraced
//! outcomes (feature matrix, transport stats, energy ledger).

use sor_obs::Recorder;
use sor_sim::scenario::{
    profiles, run_coffee_field_test, run_coffee_field_test_traced, FieldTestConfig,
};

/// One fully traced field test + rank at a fixed worker count, returning
/// every deterministic artefact: trace JSON, metrics JSON, and the final
/// ranking order for two §V-B profiles.
fn traced_run(threads: usize) -> (String, String, Vec<String>, Vec<String>) {
    sor_par::set_threads(threads);
    let rec = Recorder::enabled();
    let outcome = run_coffee_field_test_traced(FieldTestConfig::quick(7), rec.clone()).unwrap();
    let david = outcome.server.rank("coffee-shop", &profiles::david()).unwrap();
    let emma = outcome.server.rank("coffee-shop", &profiles::emma()).unwrap();
    sor_par::set_threads(0);
    (rec.trace_json().unwrap(), rec.metrics_json().unwrap(), david.order, emma.order)
}

#[test]
fn traced_field_test_is_identical_at_one_and_eight_workers() {
    let (trace1, metrics1, david1, emma1) = traced_run(1);
    let (trace8, metrics8, david8, emma8) = traced_run(8);
    assert_eq!(david1, david8, "final ranking must not depend on worker count");
    assert_eq!(emma1, emma8, "final ranking must not depend on worker count");
    assert_eq!(metrics1, metrics8, "metrics export must be byte-identical");
    assert_eq!(trace1, trace8, "golden trace must be byte-identical");
}

#[test]
fn untraced_field_test_outcome_is_identical_at_one_and_eight_workers() {
    // Untraced is the configuration where the sim's batched parallel
    // phone stepping actually engages (batching is disabled while a
    // trace recorder is live).
    sor_par::set_threads(1);
    let seq = run_coffee_field_test(FieldTestConfig::quick(11)).unwrap();
    sor_par::set_threads(8);
    let par = run_coffee_field_test(FieldTestConfig::quick(11)).unwrap();
    sor_par::set_threads(0);
    assert_eq!(seq.stats, par.stats, "transport/ingest stats must match");
    assert_eq!(seq.app_ids, par.app_ids);
    assert_eq!(seq.matrix, par.matrix, "feature matrix must be bit-identical");
    assert_eq!(
        seq.energy_mj_per_place, par.energy_mj_per_place,
        "integer-microjoule energy accounting must be order-independent"
    );
    assert_eq!(seq.recoveries, par.recoveries);
}
