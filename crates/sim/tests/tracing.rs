//! Acceptance tests for causal cross-component tracing, the flight
//! recorder, and the SLO/health engine: one trace tree from task
//! dispatch on the server through script execution on the phone and
//! back to the rank the upload eventually feeds.

use sor_obs::{naming, Recorder, Span, SpanId, Trace};
use sor_sim::scenario::{
    run_coffee_field_test_durable_traced, run_coffee_field_test_traced, DurableRun, FieldTestConfig,
};

fn span_by_id(trace: &Trace, id: SpanId) -> &Span {
    trace.spans().iter().find(|s| s.id == id).expect("parent id resolves")
}

/// Tentpole: the golden trace contains at least one causal chain
/// `task dispatch → script.run → upload handling → processor commit →
/// rank` linked by parent ids across the frontend/server boundary.
#[test]
fn causal_chain_links_dispatch_to_rank_across_components() {
    let rec = Recorder::enabled();
    run_coffee_field_test_traced(FieldTestConfig::quick(3), rec.clone()).unwrap();
    let trace = rec.trace_snapshot().unwrap();

    // Walk up from the end-of-run rank: its parent is the last commit.
    let rank =
        trace.spans_named("server.rank").next().expect("field test ranks at the end of the run");
    let commit = span_by_id(&trace, rank.parent.expect("rank is parented on the last commit"));
    assert_eq!(commit.name, "processor.commit", "rank parent must be a commit span");

    // The commit is parented on the server's handling of the upload…
    let handle = span_by_id(&trace, commit.parent.expect("commit has an upload parent"));
    assert_eq!(handle.name, "server.handle_message");

    // …which is parented on the *phone-side* script run that produced
    // the upload, crossing the wire via the TraceContext.
    let script_run = span_by_id(&trace, handle.parent.expect("upload handling has a producer"));
    assert_eq!(script_run.name, "phone.script_run");

    // …which in turn hangs off the server-side dispatch of the task.
    let dispatch = span_by_id(&trace, script_run.parent.expect("script run has a dispatch"));
    assert_eq!(dispatch.name, "server.task_dispatch");
    assert!(dispatch.parent.is_some(), "dispatch sits under schedule distribution");

    // Both wire crossings carry the same trace id.
    let trace_id = |s: &Span| {
        s.attrs
            .iter()
            .find(|(k, _)| k == "trace_id")
            .map(|(_, v)| v.clone())
            .expect("cross-component span carries a trace id")
    };
    assert_eq!(trace_id(script_run), trace_id(handle));
}

/// The whole exported trace is byte-identical at one worker and eight:
/// parent links never depend on worker interleaving.
#[test]
fn golden_trace_is_identical_at_one_and_eight_workers() {
    let run = || {
        let rec = Recorder::enabled();
        run_coffee_field_test_traced(FieldTestConfig::quick(5), rec.clone()).unwrap();
        (rec.trace_json().unwrap(), rec.metrics_json().unwrap())
    };
    sor_par::set_threads(1);
    let (trace_one, metrics_one) = run();
    sor_par::set_threads(8);
    let (trace_eight, metrics_eight) = run();
    sor_par::set_threads(0); // back to SOR_THREADS / auto-detect
    assert_eq!(trace_one, trace_eight, "trace must not depend on worker count");
    assert_eq!(metrics_one, metrics_eight, "metrics must not depend on worker count");
}

/// A crashing durable run dumps one deterministic flight-recorder
/// post-mortem per crash, and the dump names the work in flight.
#[test]
fn server_crash_produces_deterministic_postmortem() {
    let run = || {
        let cfg = FieldTestConfig::quick(9);
        let durable = DurableRun::crashes_at(&cfg, vec![cfg.duration * 0.6]);
        let rec = Recorder::enabled().with_flight(64);
        run_coffee_field_test_durable_traced(cfg, durable, rec).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.postmortems.len(), 1, "one crash, one post-mortem");
    assert_eq!(a.postmortems, b.postmortems, "post-mortem must be deterministic");
    assert_eq!(a.recoveries.len(), 1);
    let dump = &a.postmortems[0];
    assert!(
        dump.contains("server.handle_message") || dump.contains("phone.script_run"),
        "post-mortem names recent pipeline work:\n{dump}"
    );
}

/// Satellite: every metric name produced by a full traced field test
/// conforms to the documented `component.noun_verb[.label]` convention.
#[test]
fn field_test_metric_names_conform_to_convention() {
    let rec = Recorder::enabled();
    run_coffee_field_test_traced(FieldTestConfig::quick(3), rec.clone()).unwrap();
    let metrics = rec.metrics_snapshot().unwrap();
    let violations = naming::audit(&metrics);
    assert!(violations.is_empty(), "nonconforming metric names:\n{}", violations.join("\n"));
}

/// The golden trace passes the structural lint CI runs: no duplicate or
/// orphan span ids, no span closing before it opens, and every
/// cross-component span carries a trace id.
#[test]
fn golden_trace_passes_structural_lint() {
    let rec = Recorder::enabled();
    run_coffee_field_test_traced(FieldTestConfig::quick(3), rec.clone()).unwrap();
    let findings = sor_obs::lint::lint_trace(&rec.trace_snapshot().unwrap());
    assert!(findings.is_empty(), "lint findings:\n{}", findings.join("\n"));
}
