//! Acceptance tests for tail-based trace sampling at the scenario
//! level: a lossy-transport run must keep every error and SLO-violating
//! span tree no matter how aggressive the representative rate, the full
//! sampled export (trace, metrics, windows, dashboard) must be
//! byte-identical across worker counts, and rate 1.0 must be a
//! byte-transparent pass-through.

use std::collections::BTreeMap;

use sor_obs::dashboard::render_dashboard;
use sor_obs::sample::{classify, sample_trace, SamplePolicy};
use sor_obs::{naming, parse_json, Recorder, Span, Trace};
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

/// Content fingerprint of a span, ignoring ids (the sampler compacts
/// them) but keeping everything an investigator would read.
fn span_key(s: &Span) -> String {
    format!("{} [{:.6} {:?}] {:?}", s.name, s.start, s.end, s.attrs)
}

fn span_multiset<'a>(spans: impl Iterator<Item = &'a Span>) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for s in spans {
        *m.entry(span_key(s)).or_insert(0) += 1;
    }
    m
}

/// Lossy transport, rate 0.0 (the harshest possible representative
/// policy): every tree carrying an error attribute or overlapping an
/// `slo.alert` event provably survives the sampler, while the bulk of
/// healthy traffic is dropped with exact accounting.
#[test]
fn lossy_run_sampler_keeps_every_error_and_slo_tree() {
    let rec = Recorder::enabled();
    let cfg = FieldTestConfig::quick(3).with_loss(0.1);
    run_coffee_field_test_traced(cfg, rec.clone()).unwrap();
    // The scenario breaches transport SLOs but produces no script
    // failures, so append one genuine error tree: a script run whose
    // span carries an `error` attribute, exactly as the frontend
    // records one.
    let err_span = rec.span_start("phone.script_run", 1_000_000.0);
    rec.span_attr(err_span, "error", "budget exhausted");
    rec.span_end(err_span, 1_000_000.5);
    let trace = rec.trace_snapshot().unwrap();

    let policy = SamplePolicy::representative(0.0, cfg.seed);
    let groups = classify(&trace, policy.slow_keep_fraction);
    let must_keep: Vec<_> = groups.iter().filter(|g| g.is_error || g.slo_violating).collect();
    assert!(
        must_keep.iter().any(|g| g.slo_violating),
        "lossy scenario must produce at least one SLO-violating tree"
    );
    assert!(must_keep.iter().any(|g| g.is_error), "error tree present");

    let (sampled, stats) = sample_trace(&trace, &policy);
    // Every must-keep span is present, content-identical, in the
    // sampled trace (ids are remapped, content never is).
    let kept = span_multiset(sampled.spans().iter());
    for g in &must_keep {
        for &i in &g.spans {
            let key = span_key(&trace.spans()[i]);
            assert!(
                kept.get(&key).copied().unwrap_or(0) > 0,
                "must-keep span missing after sampling: {key}"
            );
        }
    }
    // The policy was lossy for everything else, and the accounting is
    // exact: kept + dropped covers every tree and every span.
    assert!(stats.traces_kept < stats.traces_total, "rate 0.0 must drop healthy traffic");
    assert_eq!(
        stats.traces_kept + stats.dropped_by_component.values().sum::<u64>(),
        stats.traces_total
    );
    assert_eq!(sampled.spans().len() as u64, stats.spans_kept);
    assert_eq!(
        stats.spans_kept + stats.spans_dropped_by_component.values().sum::<u64>(),
        stats.spans_total
    );
}

/// The whole sampled observability surface — trace, metrics with
/// sampler accounting folded in, window summary, rendered dashboard —
/// is byte-identical at one worker and eight, even at a lossy
/// representative rate.
#[test]
fn sampled_export_and_dashboard_identical_at_one_and_eight_workers() {
    let run = || {
        let rec = Recorder::enabled();
        let cfg = FieldTestConfig::quick(5).with_loss(0.1);
        let out = run_coffee_field_test_traced(cfg, rec.clone()).unwrap();
        let policy = SamplePolicy::representative(0.3, cfg.seed);
        let (sampled, stats) = sample_trace(&rec.trace_snapshot().unwrap(), &policy);
        let mut metrics = rec.metrics_snapshot().unwrap();
        stats.record_into(&mut metrics);
        let trace_json = sampled.to_json();
        let metrics_json = metrics.to_json();
        let windows_json = out.windows.as_ref().expect("traced run rolls windows").summary_json();
        let health = out.health.expect("traced run is graded").render();
        let dashboard = render_dashboard(
            &parse_json(&trace_json).unwrap(),
            &parse_json(&metrics_json).unwrap(),
            Some(&parse_json(&windows_json).unwrap()),
            Some(&health),
        );
        (trace_json, metrics_json, windows_json, health, dashboard)
    };
    sor_par::set_threads(1);
    let one = run();
    sor_par::set_threads(8);
    let eight = run();
    sor_par::set_threads(0); // back to SOR_THREADS / auto-detect
    assert_eq!(one.0, eight.0, "sampled trace must not depend on worker count");
    assert_eq!(one.1, eight.1, "metrics + sampler accounting must not depend on worker count");
    assert_eq!(one.2, eight.2, "window summary must not depend on worker count");
    assert_eq!(one.3, eight.3, "health grading must not depend on worker count");
    assert_eq!(one.4, eight.4, "dashboard must render byte-identically");
}

/// Rate 1.0 (the default) is a byte-transparent pass-through: the
/// sampled export equals the raw export exactly.
#[test]
fn rate_one_sampling_is_byte_transparent() {
    let rec = Recorder::enabled();
    let cfg = FieldTestConfig::quick(3);
    run_coffee_field_test_traced(cfg, rec.clone()).unwrap();
    let raw: Trace = rec.trace_snapshot().unwrap();
    let (sampled, stats) = sample_trace(&raw, &SamplePolicy::keep_all());
    assert_eq!(sampled.to_json(), raw.to_json(), "rate 1.0 must be byte-identical");
    assert_eq!(stats.traces_kept, stats.traces_total);
    assert!(stats.dropped_by_component.is_empty());
}

/// Satellite: metric names stay convention-clean after the sampler's
/// accounting (`obs.traces_kept.*`, `obs.spans_dropped.*`, …) is folded
/// into a real run's registry.
#[test]
fn sampler_accounting_names_conform_to_convention() {
    let rec = Recorder::enabled();
    let cfg = FieldTestConfig::quick(3).with_loss(0.1);
    run_coffee_field_test_traced(cfg, rec.clone()).unwrap();
    let policy = SamplePolicy::representative(0.25, cfg.seed);
    let (_, stats) = sample_trace(&rec.trace_snapshot().unwrap(), &policy);
    let mut metrics = rec.metrics_snapshot().unwrap();
    stats.record_into(&mut metrics);
    let violations = naming::audit(&metrics);
    assert!(violations.is_empty(), "nonconforming metric names:\n{}", violations.join("\n"));
}
