//! End-to-end observability: one recorder wired through server, phones,
//! store, and transport during full simulated deployments.

use std::sync::Arc;

use sor_frontend::MobileFrontend;
use sor_obs::{parse_json, Recorder};
use sor_sensors::environment::presets;
use sor_sensors::{SensorKind, SensorManager, SimulatedProvider};
use sor_server::{ApplicationSpec, Extractor, FeatureSpec, SensingServer};
use sor_sim::scenario::{
    run_coffee_field_test_traced, run_scheduling_sim_traced, run_trail_field_test_traced,
    FieldTestConfig, SchedulingConfig,
};
use sor_sim::{SorWorld, Transport, TransportConfig};

/// A one-cafe world with three sweeping phones, recorder installed.
fn cafe_world(transport: Transport, recorder: Recorder) -> SorWorld {
    let mut server = SensingServer::new().unwrap();
    server
        .register_application(ApplicationSpec {
            app_id: 1,
            name: "B&N Cafe".into(),
            creator: "owner".into(),
            category: "coffee-shop".into(),
            latitude: 43.0445,
            longitude: -76.0749,
            radius_m: 200.0,
            script: "get_temperature_readings(5)\nget_noise_readings(5)".into(),
            period_seconds: 3600.0,
            instants: 360,
            features: vec![FeatureSpec::new(
                "temperature",
                "°F",
                Extractor::Mean { sensor: SensorKind::Temperature.wire_id() },
                60.0,
            )],
        })
        .unwrap();
    let mut world = SorWorld::new(server, transport);
    world.set_recorder(recorder);
    let env = Arc::new(presets::bn_cafe(5));
    for token in 0..3u64 {
        let mut mgr = SensorManager::new();
        for kind in [SensorKind::Temperature, SensorKind::Microphone, SensorKind::Gps] {
            mgr.register(SimulatedProvider::new(kind, env.clone()));
        }
        let idx = world.add_phone(MobileFrontend::new(token, mgr));
        world.schedule_sweeps(idx, 1.0, 20.0, 3600.0);
        world.schedule_scan(token as f64 * 30.0, idx, 1, 8, 1800.0);
    }
    world
}

/// Satellite: every corrupted frame — and nothing else — is rejected at
/// a receiver, and the per-endpoint counters account for all of them.
#[test]
fn corrupted_frames_equal_rejected_frames_end_to_end() {
    let rec = Recorder::enabled();
    let mut world = cafe_world(
        Transport::new(TransportConfig { corruption_rate: 0.3, seed: 11, ..Default::default() }),
        rec.clone(),
    );
    world.run_until(3600.0);

    let corrupted =
        rec.counter("net.frames_corrupted.server") + rec.counter("net.frames_corrupted.phone");
    let rejected =
        rec.counter("net.frames_rejected.server") + rec.counter("net.frames_rejected.phone");
    assert!(corrupted > 0, "corruption at 30% must hit some frames");
    assert_eq!(corrupted, world.transport().corrupted());
    assert_eq!(rejected, corrupted, "every corrupted frame must be rejected, nothing else");
    assert_eq!(rejected, world.stats.decode_failures);
    // Clean frames still flow: the pipeline kept working around the noise.
    assert!(rec.counter("server.msg_received.sensed_data_upload") > 0);
}

/// On a perfect transport nothing is rejected and the frame ledger
/// balances: sent == delivered (no drops).
#[test]
fn perfect_transport_rejects_nothing() {
    let rec = Recorder::enabled();
    let mut world = cafe_world(Transport::perfect(), rec.clone());
    world.run_until(3600.0);
    assert_eq!(rec.counter("net.frames_rejected.server"), 0);
    assert_eq!(rec.counter("net.frames_rejected.phone"), 0);
    assert_eq!(rec.counter("net.frames_dropped.server"), 0);
    assert_eq!(
        rec.counter("net.frames_sent.server") + rec.counter("net.frames_sent.phone"),
        world.transport().sent()
    );
}

/// Tentpole: the full coffee-shop trace and metrics exports are a pure
/// function of (scenario, seed) — two runs are byte-identical.
#[test]
fn golden_trace_is_deterministic_per_seed() {
    let run = || {
        let rec = Recorder::enabled();
        run_coffee_field_test_traced(FieldTestConfig::quick(7), rec.clone()).unwrap();
        (
            rec.metrics_csv().unwrap(),
            rec.metrics_json().unwrap(),
            rec.trace_json().unwrap(),
            rec.report().unwrap(),
        )
    };
    let (csv_a, mjson_a, tjson_a, report_a) = run();
    let (csv_b, mjson_b, tjson_b, report_b) = run();
    assert_eq!(csv_a, csv_b, "metrics CSV must be byte-identical across runs");
    assert_eq!(mjson_a, mjson_b, "metrics JSON must be byte-identical across runs");
    assert_eq!(tjson_a, tjson_b, "trace JSON must be byte-identical across runs");
    assert_eq!(report_a, report_b, "report must be byte-identical across runs");

    // The exports are well-formed JSON per the vendored parser.
    parse_json(&mjson_a).expect("metrics JSON parses");
    parse_json(&tjson_a).expect("trace JSON parses");

    // And they actually observed the pipeline.
    assert!(csv_a.contains("script.runs"), "csv:\n{csv_a}");
    assert!(csv_a.contains("store.rows_inserted.records"), "csv:\n{csv_a}");
    assert!(tjson_a.contains("server.process_data"), "trace must span data processing");
}

/// A different workload produces a different trace (the exports are not
/// degenerate constants). Note the *seed* alone does not change the
/// metrics: counts are a function of the workload shape, and the seed
/// only perturbs sensed values.
#[test]
fn golden_trace_reflects_workload() {
    let run = |phones| {
        let rec = Recorder::enabled();
        let cfg = FieldTestConfig { phones_per_place: phones, ..FieldTestConfig::quick(7) };
        run_coffee_field_test_traced(cfg, rec.clone()).unwrap();
        rec.metrics_csv().unwrap()
    };
    assert_ne!(run(2), run(3));
}

/// Satellite: on both field tests the static analyzer's instruction
/// bound dominates every measured interpreter run (ratio ≥ 1).
#[test]
fn static_bound_dominates_measured_instructions_in_field_tests() {
    for (name, ratio) in [
        ("coffee", {
            let rec = Recorder::enabled();
            run_coffee_field_test_traced(FieldTestConfig::quick(3), rec.clone()).unwrap();
            rec.metrics_snapshot().unwrap().histogram("script.bound_over_measured").cloned()
        }),
        ("trail", {
            let rec = Recorder::enabled();
            run_trail_field_test_traced(FieldTestConfig::quick(4), rec.clone()).unwrap();
            rec.metrics_snapshot().unwrap().histogram("script.bound_over_measured").cloned()
        }),
    ] {
        let ratio = ratio.unwrap_or_else(|| panic!("{name}: no bound/measured observations"));
        assert!(ratio.count() > 0, "{name}: no script runs observed");
        let min = ratio.min().unwrap();
        assert!(min >= 1.0, "{name}: static bound below a measured run (min ratio {min})");
    }
}

/// Satellite fix: every live task instance — including ones created by
/// schedules assigned long after scenario start — reports a queue-depth
/// gauge, and the gauge count matches the live instances exactly.
#[test]
fn queue_depth_gauges_cover_every_task_instance() {
    let rec = Recorder::enabled();
    let mut world = cafe_world(Transport::perfect(), rec.clone());
    world.run_until(3600.0);

    let mut expected: Vec<String> = world
        .phones
        .iter()
        .flat_map(|p| p.tasks().iter().map(|t| format!("phone.task_queue_depth.task{}", t.task_id)))
        .collect();
    expected.sort();
    expected.dedup();
    assert!(!expected.is_empty(), "the cafe world must have distributed tasks");

    let metrics = rec.metrics_snapshot().unwrap();
    let mut reported: Vec<String> = metrics
        .gauges()
        .map(|(name, _)| name.to_string())
        .filter(|name| name.starts_with("phone.task_queue_depth."))
        .collect();
    reported.sort();
    assert_eq!(reported, expected, "one queue gauge per live task instance");
}

/// The scheduling simulation reports planner work, and lazy evaluation
/// keeps marginal-gain evaluations well under the brute-force count
/// (users × picks per round).
#[test]
fn scheduling_sim_reports_planner_work() {
    let cfg = SchedulingConfig { runs: 2, ..SchedulingConfig::paper(15, 8, 42) };
    let rec = Recorder::enabled();
    let out = run_scheduling_sim_traced(cfg, &rec);
    assert!(out.greedy_mean > 0.0);
    let iters = rec.counter("sched.sim_iterations");
    let evals = rec.counter("sched.sim_gain_evaluations");
    assert!(iters > 0, "greedy committed no picks");
    assert!(
        iters <= (cfg.runs * cfg.users * cfg.budget) as u64,
        "more picks than the total budget allows"
    );
    assert!(evals >= iters, "every pick needs at least one evaluation");
    let snapshot = rec.metrics_snapshot().unwrap();
    let cov = snapshot.histogram("sched.sim_coverage.greedy").unwrap();
    assert_eq!(cov.count(), cfg.runs as u64);
}
