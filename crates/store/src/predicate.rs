//! Row predicates for scans and deletes.

use crate::schema::Schema;
use crate::table::Row;
use crate::value::Value;
use crate::StoreError;

/// A boolean expression over one row's columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Column equals value.
    Eq(String, Value),
    /// Column differs from value.
    Ne(String, Value),
    /// Column strictly less than value.
    Lt(String, Value),
    /// Column less than or equal to value.
    Le(String, Value),
    /// Column strictly greater than value.
    Gt(String, Value),
    /// Column greater than or equal to value.
    Ge(String, Value),
    /// Both sides hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either side holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The inner predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value`.
    pub fn eq(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Eq(column.into(), value)
    }

    /// `column < value`.
    pub fn lt(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Lt(column.into(), value)
    }

    /// `column > value`.
    pub fn gt(column: impl Into<String>, value: Value) -> Predicate {
        Predicate::Gt(column.into(), value)
    }

    /// Conjunction.
    pub fn and(self, rhs: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(rhs))
    }

    /// Negation.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates against a row.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownColumn`] if a referenced column does not
    /// exist in the schema.
    pub fn matches(&self, schema: &Schema, row: &Row) -> Result<bool, StoreError> {
        let col = |name: &str| -> Result<&Value, StoreError> {
            let idx = schema.column_index(name).ok_or_else(|| StoreError::UnknownColumn {
                table: schema.name().to_string(),
                column: name.to_string(),
            })?;
            Ok(&row.values[idx])
        };
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => col(c)?.total_cmp(v).is_eq(),
            Predicate::Ne(c, v) => !col(c)?.total_cmp(v).is_eq(),
            Predicate::Lt(c, v) => col(c)?.total_cmp(v).is_lt(),
            Predicate::Le(c, v) => col(c)?.total_cmp(v).is_le(),
            Predicate::Gt(c, v) => col(c)?.total_cmp(v).is_gt(),
            Predicate::Ge(c, v) => col(c)?.total_cmp(v).is_ge(),
            Predicate::And(a, b) => a.matches(schema, row)? && b.matches(schema, row)?,
            Predicate::Or(a, b) => a.matches(schema, row)? || b.matches(schema, row)?,
            Predicate::Not(p) => !p.matches(schema, row)?,
        })
    }

    /// If this predicate is exactly `column = value`, returns the pair —
    /// the shape the index fast-path accelerates.
    pub fn as_point_lookup(&self) -> Option<(&str, &Value)> {
        match self {
            Predicate::Eq(c, v) => Some((c.as_str(), v)),
            _ => None,
        }
    }

    /// Every `column = value` conjunct reachable through a chain of
    /// `And`s (a bare `Eq` yields itself). Each such conjunct is a
    /// *necessary* condition, so an index on any of these columns can
    /// prune scan candidates — the full predicate is then re-checked
    /// per candidate row.
    pub fn eq_conjuncts(&self) -> Vec<(&str, &Value)> {
        let mut out = Vec::new();
        self.collect_eq_conjuncts(&mut out);
        out
    }

    fn collect_eq_conjuncts<'a>(&'a self, out: &mut Vec<(&'a str, &'a Value)>) {
        match self {
            Predicate::Eq(c, v) => out.push((c.as_str(), v)),
            Predicate::And(a, b) => {
                a.collect_eq_conjuncts(out);
                b.collect_eq_conjuncts(out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::table::RowId;

    fn schema() -> Schema {
        Schema::new("t")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("score", ColumnType::Float)
    }

    fn row(id: i64, name: &str, score: f64) -> Row {
        Row { id: RowId(0), values: vec![Value::Int(id), Value::text(name), Value::Float(score)] }
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row(5, "bob", 1.5);
        assert!(Predicate::eq("id", Value::Int(5)).matches(&s, &r).unwrap());
        assert!(Predicate::lt("score", Value::Float(2.0)).matches(&s, &r).unwrap());
        assert!(Predicate::gt("name", Value::text("alice")).matches(&s, &r).unwrap());
        assert!(!Predicate::eq("id", Value::Int(6)).matches(&s, &r).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row(5, "bob", 1.5);
        let p = Predicate::eq("id", Value::Int(5)).and(Predicate::gt("score", Value::Float(1.0)));
        assert!(p.matches(&s, &r).unwrap());
        let q = Predicate::eq("id", Value::Int(9)).or(Predicate::eq("name", Value::text("bob")));
        assert!(q.matches(&s, &r).unwrap());
        assert!(!q.clone().negate().matches(&s, &r).unwrap());
    }

    #[test]
    fn unknown_column_is_error() {
        let s = schema();
        let r = row(1, "a", 0.0);
        assert!(matches!(
            Predicate::eq("nope", Value::Int(1)).matches(&s, &r),
            Err(StoreError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn point_lookup_detection() {
        let p = Predicate::eq("id", Value::Int(5));
        assert!(p.as_point_lookup().is_some());
        let q = p.clone().and(Predicate::True);
        assert!(q.as_point_lookup().is_none());
    }

    #[test]
    fn eq_conjuncts_walk_and_chains() {
        let p = Predicate::eq("a", Value::Int(1))
            .and(Predicate::gt("b", Value::Int(2)).and(Predicate::eq("c", Value::Int(3))));
        let got: Vec<String> = p.eq_conjuncts().iter().map(|(c, _)| c.to_string()).collect();
        assert_eq!(got, vec!["a", "c"]);
        // Eq under Or/Not is not a necessary condition.
        let q = Predicate::eq("a", Value::Int(1)).or(Predicate::eq("b", Value::Int(2)));
        assert!(q.eq_conjuncts().is_empty());
        assert!(Predicate::eq("a", Value::Int(1)).negate().eq_conjuncts().is_empty());
    }

    #[test]
    fn cross_type_int_float_equality() {
        let s = schema();
        let r = row(5, "bob", 2.0);
        assert!(Predicate::eq("score", Value::Int(2)).matches(&s, &r).unwrap());
    }
}
