//! Richer read queries: projection, ordering, limits.
//!
//! The visualization module and report binaries want "the latest N
//! feature rows ordered by value" style reads; this keeps that logic
//! out of every call site while staying a thin layer over
//! [`Table::scan`].

use crate::predicate::Predicate;
use crate::table::{Row, Table};
use crate::value::Value;
use crate::StoreError;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Smallest first.
    Asc,
    /// Largest first.
    Desc,
}

/// A read query: filter, optional order-by column, optional limit,
/// optional projection.
///
/// # Example
///
/// ```
/// use sor_store::{ColumnType, Predicate, Query, Schema, Table, Value};
///
/// let mut t = Table::new(
///     Schema::new("scores").column("name", ColumnType::Text).column("s", ColumnType::Int),
/// );
/// for (n, s) in [("a", 3), ("b", 1), ("c", 2)] {
///     t.insert(vec![Value::text(n), Value::Int(s)])?;
/// }
/// let rows = Query::new().order_by("s", sor_store::query::Order::Desc).limit(2).run(&t)?;
/// assert_eq!(rows[0].values[0], Value::text("a"));
/// assert_eq!(rows.len(), 2);
/// # Ok::<(), sor_store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    predicate: Predicate,
    order: Option<(String, Order)>,
    limit: Option<usize>,
    projection: Option<Vec<String>>,
}

impl Default for Query {
    fn default() -> Self {
        Self::new()
    }
}

impl Query {
    /// Matches everything, unordered, unlimited.
    pub fn new() -> Self {
        Query { predicate: Predicate::True, order: None, limit: None, projection: None }
    }

    /// Sets the filter.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Orders by a column.
    pub fn order_by(mut self, column: impl Into<String>, order: Order) -> Self {
        self.order = Some((column.into(), order));
        self
    }

    /// Caps the result count.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Projects to the named columns (in the given order).
    pub fn select(mut self, columns: Vec<String>) -> Self {
        self.projection = Some(columns);
        self
    }

    /// Runs against a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownColumn`] for unknown filter/order/projection
    /// columns.
    pub fn run(&self, table: &Table) -> Result<Vec<Row>, StoreError> {
        let mut rows = table.scan(&self.predicate)?;
        if let Some((column, order)) = &self.order {
            let idx =
                table.schema().column_index(column).ok_or_else(|| StoreError::UnknownColumn {
                    table: table.schema().name().to_string(),
                    column: column.clone(),
                })?;
            rows.sort_by(|a, b| {
                let cmp = a.values[idx].total_cmp(&b.values[idx]);
                match order {
                    Order::Asc => cmp,
                    Order::Desc => cmp.reverse(),
                }
            });
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        if let Some(cols) = &self.projection {
            let idxs: Vec<usize> = cols
                .iter()
                .map(|c| {
                    table.schema().column_index(c).ok_or_else(|| StoreError::UnknownColumn {
                        table: table.schema().name().to_string(),
                        column: c.clone(),
                    })
                })
                .collect::<Result<_, _>>()?;
            for row in &mut rows {
                row.values = idxs.iter().map(|&i| row.values[i].clone()).collect();
            }
        }
        Ok(rows)
    }

    /// Convenience: the single f64 of the first result row (for
    /// "latest value of feature X" reads).
    ///
    /// # Errors
    ///
    /// Query errors; `Ok(None)` for an empty result or non-numeric cell.
    pub fn scalar(&self, table: &Table) -> Result<Option<f64>, StoreError> {
        let rows = self.run(table)?;
        Ok(rows.first().and_then(|r| r.values.first()).and_then(Value::as_float))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    fn table() -> Table {
        let mut t = Table::new(
            Schema::new("features")
                .column("app", ColumnType::Int)
                .column("feature", ColumnType::Text)
                .column("value", ColumnType::Float),
        );
        for (app, f, v) in [
            (1, "temp", 66.0),
            (2, "temp", 71.0),
            (3, "temp", 74.0),
            (1, "noise", 0.1),
            (2, "noise", 0.12),
            (3, "noise", 0.4),
        ] {
            t.insert(vec![Value::Int(app), Value::text(f), Value::Float(v)]).unwrap();
        }
        t
    }

    #[test]
    fn filter_order_limit() {
        let t = table();
        let rows = Query::new()
            .filter(Predicate::eq("feature", Value::text("temp")))
            .order_by("value", Order::Desc)
            .limit(2)
            .run(&t)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].values[0], Value::Int(3));
        assert_eq!(rows[1].values[0], Value::Int(2));
    }

    #[test]
    fn projection_reorders_columns() {
        let t = table();
        let rows = Query::new()
            .filter(Predicate::eq("app", Value::Int(1)))
            .select(vec!["value".into(), "feature".into()])
            .order_by("feature", Order::Asc)
            .run(&t)
            .unwrap();
        assert_eq!(rows[0].values.len(), 2);
        assert_eq!(rows[0].values[1], Value::text("noise"));
        assert_eq!(rows[0].values[0], Value::Float(0.1));
    }

    #[test]
    fn scalar_shortcut() {
        let t = table();
        let v = Query::new()
            .filter(Predicate::eq("feature", Value::text("noise")))
            .order_by("value", Order::Desc)
            .select(vec!["value".into()])
            .scalar(&t)
            .unwrap();
        assert_eq!(v, Some(0.4));
        let none =
            Query::new().filter(Predicate::eq("feature", Value::text("ghost"))).scalar(&t).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn unknown_columns_error() {
        let t = table();
        assert!(Query::new().order_by("ghost", Order::Asc).run(&t).is_err());
        assert!(Query::new().select(vec!["ghost".into()]).run(&t).is_err());
    }

    #[test]
    fn default_query_returns_everything() {
        let t = table();
        assert_eq!(Query::default().run(&t).unwrap().len(), 6);
    }
}
