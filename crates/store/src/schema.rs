//! Table schemas.

use crate::value::Value;
use crate::StoreError;

/// Column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Opaque bytes.
    Bytes,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// Stable one-byte tag used by snapshots and log records.
    pub fn wire_tag(self) -> u8 {
        match self {
            ColumnType::Int => 0,
            ColumnType::Float => 1,
            ColumnType::Text => 2,
            ColumnType::Bytes => 3,
            ColumnType::Bool => 4,
        }
    }

    /// Inverse of [`ColumnType::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<ColumnType> {
        Some(match tag {
            0 => ColumnType::Int,
            1 => ColumnType::Float,
            2 => ColumnType::Text,
            3 => ColumnType::Bytes,
            4 => ColumnType::Bool,
            _ => return None,
        })
    }

    fn matches(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_)) // ints widen into float columns
                | (ColumnType::Text, Value::Text(_))
                | (ColumnType::Bytes, Value::Bytes(_))
                | (ColumnType::Bool, Value::Bool(_))
        )
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

/// A table schema (builder-style construction).
///
/// # Example
///
/// ```
/// use sor_store::{ColumnType, Schema};
/// let s = Schema::new("users")
///     .column("id", ColumnType::Int)
///     .nullable_column("nickname", ColumnType::Text);
/// assert_eq!(s.columns().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    columns: Vec<Column>,
}

impl Schema {
    /// A schema with no columns yet.
    pub fn new(name: impl Into<String>) -> Self {
        Schema { name: name.into(), columns: Vec::new() }
    }

    /// Adds a NOT NULL column.
    pub fn column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.columns.push(Column { name: name.into(), ty, nullable: false });
        self
    }

    /// Adds a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.columns.push(Column { name: name.into(), ty, nullable: true });
        self
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validates a row against this schema.
    ///
    /// # Errors
    ///
    /// [`StoreError::SchemaMismatch`] describing the first violation.
    pub fn validate(&self, row: &[Value]) -> Result<(), StoreError> {
        if row.len() != self.columns.len() {
            return Err(StoreError::SchemaMismatch {
                table: self.name.clone(),
                detail: format!("expected {} values, got {}", self.columns.len(), row.len()),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if v.is_null() {
                if !col.nullable {
                    return Err(StoreError::SchemaMismatch {
                        table: self.name.clone(),
                        detail: format!("column `{}` is NOT NULL", col.name),
                    });
                }
            } else if !col.ty.matches(v) {
                return Err(StoreError::SchemaMismatch {
                    table: self.name.clone(),
                    detail: format!("column `{}` expects {:?}, got {v}", col.name, col.ty),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("t")
            .column("id", ColumnType::Int)
            .column("score", ColumnType::Float)
            .nullable_column("note", ColumnType::Text)
    }

    #[test]
    fn valid_rows_pass() {
        let s = schema();
        s.validate(&[Value::Int(1), Value::Float(0.5), Value::text("hi")]).unwrap();
        s.validate(&[Value::Int(1), Value::Float(0.5), Value::Null]).unwrap();
        // Int widens into Float columns.
        s.validate(&[Value::Int(1), Value::Int(2), Value::Null]).unwrap();
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(matches!(
            schema().validate(&[Value::Int(1)]),
            Err(StoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(schema().validate(&[Value::text("x"), Value::Float(0.5), Value::Null]).is_err());
    }

    #[test]
    fn null_in_not_null_column_rejected() {
        assert!(schema().validate(&[Value::Null, Value::Float(0.5), Value::Null]).is_err());
    }

    #[test]
    fn column_index_lookup() {
        let s = schema();
        assert_eq!(s.column_index("score"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }
}
