//! Tables: schema + rows + indexes.

use std::collections::BTreeMap;

use crate::index::HashIndex;
use crate::predicate::Predicate;
use crate::schema::{ColumnType, Schema};
use crate::value::Value;
use crate::StoreError;

/// Stable identifier of a row within its table (survives deletions of
/// other rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

/// One stored row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The row's id.
    pub id: RowId,
    /// Cell values, in schema column order.
    pub values: Vec<Value>,
}

impl Row {
    /// The value of a named column.
    pub fn get<'a>(&'a self, schema: &Schema, column: &str) -> Option<&'a Value> {
        schema.column_index(column).map(|i| &self.values[i])
    }
}

/// A table with optional hash indexes.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: BTreeMap<RowId, Vec<Value>>,
    next_id: u64,
    /// column index -> hash index
    indexes: BTreeMap<usize, HashIndex>,
}

impl Table {
    /// Empty table for a schema.
    pub fn new(schema: Schema) -> Self {
        Table { schema, rows: BTreeMap::new(), next_id: 0, indexes: BTreeMap::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a validated row, returning its id.
    ///
    /// # Errors
    ///
    /// [`StoreError::SchemaMismatch`] from validation.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId, StoreError> {
        self.schema.validate(&values)?;
        let id = RowId(self.next_id);
        self.next_id += 1;
        for (&col, idx) in self.indexes.iter_mut() {
            idx.insert(&values[col], id);
        }
        self.rows.insert(id, values);
        Ok(id)
    }

    /// Creates a hash index on `column`.
    ///
    /// # Errors
    ///
    /// - [`StoreError::UnknownColumn`] if the column does not exist.
    /// - [`StoreError::NotIndexable`] for Float/Bytes columns.
    /// - [`StoreError::DuplicateIndex`] if already indexed.
    pub fn create_index(&mut self, column: &str) -> Result<(), StoreError> {
        let col = self.schema.column_index(column).ok_or_else(|| StoreError::UnknownColumn {
            table: self.schema.name().to_string(),
            column: column.to_string(),
        })?;
        let ty = self.schema.columns()[col].ty;
        if matches!(ty, ColumnType::Float | ColumnType::Bytes) {
            return Err(StoreError::NotIndexable { column: column.to_string(), ty });
        }
        if self.indexes.contains_key(&col) {
            return Err(StoreError::DuplicateIndex(column.to_string()));
        }
        let mut idx = HashIndex::new();
        for (&id, values) in &self.rows {
            idx.insert(&values[col], id);
        }
        self.indexes.insert(col, idx);
        Ok(())
    }

    /// Whether `column` has an index.
    pub fn has_index(&self, column: &str) -> bool {
        self.schema.column_index(column).is_some_and(|c| self.indexes.contains_key(&c))
    }

    /// Names of the indexed columns, in column order — what a snapshot
    /// must persist so restore can rebuild the indexes.
    pub fn indexed_columns(&self) -> Vec<String> {
        self.indexes.keys().map(|&c| self.schema.columns()[c].name.clone()).collect()
    }

    /// The id the next insert will receive. Persisted by snapshots so a
    /// restored table keeps minting ids where the original left off
    /// (ids are never reused, even across crash recovery).
    pub fn next_row_id(&self) -> u64 {
        self.next_id
    }

    /// Restores the id counter from a snapshot. Never moves it below
    /// what live rows already require (so ids cannot be re-minted).
    pub fn set_next_row_id(&mut self, next_id: u64) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Inserts a validated row under a caller-chosen id — the replay
    /// path of snapshot restore and write-ahead-log recovery, where row
    /// ids must come out exactly as they were originally minted.
    ///
    /// # Errors
    ///
    /// - [`StoreError::SchemaMismatch`] from validation.
    /// - [`StoreError::SchemaMismatch`] if the id is already occupied
    ///   (a replayed log that revisits an id is corrupt).
    pub fn insert_at(&mut self, id: RowId, values: Vec<Value>) -> Result<(), StoreError> {
        self.schema.validate(&values)?;
        if self.rows.contains_key(&id) {
            return Err(StoreError::SchemaMismatch {
                table: self.schema.name().to_string(),
                detail: format!("row id {} already occupied", id.0),
            });
        }
        for (&col, idx) in self.indexes.iter_mut() {
            idx.insert(&values[col], id);
        }
        self.rows.insert(id, values);
        self.next_id = self.next_id.max(id.0 + 1);
        Ok(())
    }

    /// Deletes rows by id (ids without a live row are ignored);
    /// returns how many went away. The replay path of log recovery.
    pub fn delete_ids(&mut self, ids: &[RowId]) -> usize {
        let mut n = 0;
        for id in ids {
            if let Some(values) = self.rows.remove(id) {
                for (&col, idx) in self.indexes.iter_mut() {
                    idx.remove(&values[col], *id);
                }
                n += 1;
            }
        }
        n
    }

    /// Rows matching a predicate, using the index fast-path where
    /// possible (see [`Table::scan_indexed`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownColumn`] from predicate evaluation.
    pub fn scan(&self, pred: &Predicate) -> Result<Vec<Row>, StoreError> {
        Ok(self.scan_indexed(pred)?.0)
    }

    /// Like [`Table::scan`], also reporting whether an index satisfied
    /// the lookup. Two accelerated shapes:
    ///
    /// - a pure point lookup (`column = value`) on an indexed column —
    ///   the index result *is* the answer;
    /// - an `And`-chain containing an `Eq` conjunct on an indexed
    ///   column — the index prunes candidates and the full predicate is
    ///   re-checked per candidate.
    ///
    /// Either way candidates are visited in `RowId` order, so results
    /// come out exactly as a full scan would produce them.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownColumn`] from predicate evaluation.
    pub fn scan_indexed(&self, pred: &Predicate) -> Result<(Vec<Row>, bool), StoreError> {
        if let Some((column, value)) = pred.as_point_lookup() {
            if let Some(mut ids) = self.index_ids(column, value) {
                ids.sort_unstable();
                let rows = ids
                    .into_iter()
                    .filter_map(|id| {
                        self.rows.get(&id).map(|values| Row { id, values: values.clone() })
                    })
                    .collect();
                return Ok((rows, true));
            }
        } else {
            for (column, value) in pred.eq_conjuncts() {
                let Some(mut ids) = self.index_ids(column, value) else { continue };
                ids.sort_unstable();
                let mut out = Vec::new();
                for id in ids {
                    if let Some(values) = self.rows.get(&id) {
                        let row = Row { id, values: values.clone() };
                        if pred.matches(&self.schema, &row)? {
                            out.push(row);
                        }
                    }
                }
                return Ok((out, true));
            }
        }
        let mut out = Vec::new();
        for (&id, values) in &self.rows {
            let row = Row { id, values: values.clone() };
            if pred.matches(&self.schema, &row)? {
                out.push(row);
            }
        }
        Ok((out, false))
    }

    /// Candidate row ids from the index on `column` for `value`, if
    /// both the index exists and the value is indexable.
    fn index_ids(&self, column: &str, value: &Value) -> Option<Vec<RowId>> {
        let col = self.schema.column_index(column)?;
        self.indexes.get(&col)?.lookup(value)
    }

    /// Fetches one row by id.
    pub fn get(&self, id: RowId) -> Option<Row> {
        self.rows.get(&id).map(|values| Row { id, values: values.clone() })
    }

    /// Deletes rows matching the predicate; returns the deleted ids (so
    /// callers like the write-ahead log can record exactly which rows
    /// went away, not just how many).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownColumn`] from predicate evaluation.
    pub fn delete_where(&mut self, pred: &Predicate) -> Result<Vec<RowId>, StoreError> {
        let doomed: Vec<RowId> = self.scan(pred)?.into_iter().map(|r| r.id).collect();
        self.delete_ids(&doomed);
        Ok(doomed)
    }

    /// Updates the named column of all rows matching the predicate;
    /// returns how many rows changed.
    ///
    /// # Errors
    ///
    /// - [`StoreError::UnknownColumn`] if the column does not exist.
    /// - [`StoreError::SchemaMismatch`] if the new value's type is wrong.
    pub fn update_where(
        &mut self,
        pred: &Predicate,
        column: &str,
        new_value: Value,
    ) -> Result<usize, StoreError> {
        let col = self.schema.column_index(column).ok_or_else(|| StoreError::UnknownColumn {
            table: self.schema.name().to_string(),
            column: column.to_string(),
        })?;
        let hits: Vec<RowId> = self.scan(pred)?.into_iter().map(|r| r.id).collect();
        for id in &hits {
            let values = self.rows.get_mut(id).expect("row just scanned");
            let mut candidate = values.clone();
            candidate[col] = new_value.clone();
            self.schema.validate(&candidate)?;
            if let Some(idx) = self.indexes.get_mut(&col) {
                idx.remove(&values[col], *id);
                idx.insert(&new_value, *id);
            }
            *values = candidate;
        }
        Ok(hits.len())
    }

    /// Iterates over all rows in id order.
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        self.rows.iter().map(|(&id, values)| Row { id, values: values.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let schema = Schema::new("tasks")
            .column("id", ColumnType::Int)
            .column("status", ColumnType::Text)
            .column("score", ColumnType::Float);
        Table::new(schema)
    }

    fn fill(t: &mut Table) {
        for (i, (status, score)) in
            [("running", 0.1), ("done", 0.9), ("running", 0.5)].iter().enumerate()
        {
            t.insert(vec![Value::Int(i as i64), Value::text(*status), Value::Float(*score)])
                .unwrap();
        }
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let mut t = table();
        fill(&mut t);
        let ids: Vec<RowId> = t.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![RowId(0), RowId(1), RowId(2)]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn scan_filters_rows() {
        let mut t = table();
        fill(&mut t);
        let rows = t.scan(&Predicate::eq("status", Value::text("running"))).unwrap();
        assert_eq!(rows.len(), 2);
        let all = t.scan(&Predicate::True).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn index_accelerated_scan_equals_full_scan() {
        let mut indexed = table();
        fill(&mut indexed);
        indexed.create_index("status").unwrap();
        let mut plain = table();
        fill(&mut plain);
        let p = Predicate::eq("status", Value::text("running"));
        assert_eq!(indexed.scan(&p).unwrap(), plain.scan(&p).unwrap());
    }

    #[test]
    fn and_conjunct_uses_index_and_matches_full_scan() {
        let mut indexed = table();
        fill(&mut indexed);
        indexed.create_index("status").unwrap();
        let mut plain = table();
        fill(&mut plain);
        let p = Predicate::eq("status", Value::text("running"))
            .and(Predicate::gt("score", Value::Float(0.2)));
        let (rows, used) = indexed.scan_indexed(&p).unwrap();
        assert!(used, "And-chain with an indexed Eq conjunct must use the index");
        assert_eq!(rows, plain.scan(&p).unwrap());
        // Conjunct order must not matter: Eq on the indexed column second.
        let q = Predicate::gt("score", Value::Float(0.2))
            .and(Predicate::eq("status", Value::text("running")));
        let (rows_q, used_q) = indexed.scan_indexed(&q).unwrap();
        assert!(used_q);
        assert_eq!(rows_q, plain.scan(&q).unwrap());
    }

    #[test]
    fn indexed_scan_preserves_row_id_order() {
        let mut t = table();
        fill(&mut t);
        t.create_index("status").unwrap();
        // Update row 0 away and back so its index bucket entry is
        // re-appended out of id order; scans must still come back sorted.
        t.update_where(&Predicate::eq("id", Value::Int(0)), "status", Value::text("paused"))
            .unwrap();
        t.update_where(&Predicate::eq("id", Value::Int(0)), "status", Value::text("running"))
            .unwrap();
        let p = Predicate::eq("status", Value::text("running"));
        let ids: Vec<RowId> = t.scan(&p).unwrap().into_iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![RowId(0), RowId(2)]);
    }

    #[test]
    fn or_predicate_does_not_use_index() {
        let mut t = table();
        fill(&mut t);
        t.create_index("status").unwrap();
        let p = Predicate::eq("status", Value::text("running"))
            .or(Predicate::eq("status", Value::text("done")));
        let (rows, used) = t.scan_indexed(&p).unwrap();
        assert!(!used, "Or is not a necessary conjunct; must fall back to a full scan");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn index_on_float_rejected() {
        let mut t = table();
        assert!(matches!(t.create_index("score"), Err(StoreError::NotIndexable { .. })));
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut t = table();
        t.create_index("status").unwrap();
        assert_eq!(t.create_index("status"), Err(StoreError::DuplicateIndex("status".to_string())));
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut t = table();
        fill(&mut t);
        t.create_index("id").unwrap();
        let rows = t.scan(&Predicate::eq("id", Value::Int(1))).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[1], Value::text("done"));
    }

    #[test]
    fn delete_where_updates_indexes() {
        let mut t = table();
        fill(&mut t);
        t.create_index("status").unwrap();
        let gone = t.delete_where(&Predicate::eq("status", Value::text("running"))).unwrap();
        assert_eq!(gone, vec![RowId(0), RowId(2)]);
        assert_eq!(t.len(), 1);
        assert!(t.scan(&Predicate::eq("status", Value::text("running"))).unwrap().is_empty());
    }

    #[test]
    fn update_where_changes_values_and_indexes() {
        let mut t = table();
        fill(&mut t);
        t.create_index("status").unwrap();
        let n = t
            .update_where(
                &Predicate::eq("status", Value::text("running")),
                "status",
                Value::text("finished"),
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.scan(&Predicate::eq("status", Value::text("finished"))).unwrap().len(), 2);
        assert!(t.scan(&Predicate::eq("status", Value::text("running"))).unwrap().is_empty());
    }

    #[test]
    fn update_validates_type() {
        let mut t = table();
        fill(&mut t);
        assert!(t.update_where(&Predicate::True, "status", Value::Int(1)).is_err());
    }

    #[test]
    fn get_by_row_id() {
        let mut t = table();
        fill(&mut t);
        assert!(t.get(RowId(1)).is_some());
        assert!(t.get(RowId(99)).is_none());
    }

    #[test]
    fn row_get_by_column_name() {
        let mut t = table();
        fill(&mut t);
        let row = t.get(RowId(0)).unwrap();
        assert_eq!(row.get(t.schema(), "status"), Some(&Value::text("running")));
        assert_eq!(row.get(t.schema(), "missing"), None);
    }

    #[test]
    fn ids_not_reused_after_delete() {
        let mut t = table();
        fill(&mut t);
        t.delete_where(&Predicate::True).unwrap();
        let id = t.insert(vec![Value::Int(9), Value::text("new"), Value::Float(0.0)]).unwrap();
        assert_eq!(id, RowId(3));
    }
}
