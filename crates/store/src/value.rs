//! Cell values.

use sor_proto::wire::{Reader, Writer};
use sor_proto::ProtoError;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Opaque bytes (the binary sensed-data inbox of §II-B).
    Bytes(Vec<u8>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Convenience text constructor.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Bytes view.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order used by comparison predicates: NULL < everything;
    /// numeric types compare numerically across Int/Float; mismatched
    /// non-numeric types compare by type rank (deterministic, like
    /// SQLite's cross-type ordering).
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        let rank = |v: &Value| match v {
            Null => 0,
            Int(_) | Float(_) => 1,
            Text(_) => 2,
            Bytes(_) => 3,
            Bool(_) => 4,
        };
        match (self, other) {
            (Null, Null) => Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Appends this value to a wire buffer (tag byte + payload). The
    /// shared cell encoding of snapshots and write-ahead-log records.
    pub fn encode_into(&self, w: &mut Writer) {
        match self {
            Value::Null => w.put_u8(0),
            Value::Int(i) => {
                w.put_u8(1);
                w.put_ivar(*i);
            }
            Value::Float(x) => {
                w.put_u8(2);
                w.put_f64(*x);
            }
            Value::Text(s) => {
                w.put_u8(3);
                w.put_str(s);
            }
            Value::Bytes(b) => {
                w.put_u8(4);
                w.put_bytes(b);
            }
            Value::Bool(b) => {
                w.put_u8(5);
                w.put_u8(*b as u8);
            }
        }
    }

    /// Reads one value written by [`Value::encode_into`].
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on truncation or an unknown tag.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Value, ProtoError> {
        Ok(match r.get_u8()? {
            0 => Value::Null,
            1 => Value::Int(r.get_ivar()?),
            2 => Value::Float(r.get_f64()?),
            3 => Value::Text(r.get_str()?.to_string()),
            4 => Value::Bytes(r.get_bytes()?.to_vec()),
            5 => Value::Bool(r.get_u8()? != 0),
            _ => return Err(ProtoError::UnknownMessageType(255)),
        })
    }

    /// An exact hash key for indexing. Floats are excluded (equality on
    /// floats is a bug farm); `None` marks unindexable values.
    pub fn index_key(&self) -> Option<IndexKey> {
        match self {
            Value::Int(i) => Some(IndexKey::Int(*i)),
            Value::Text(s) => Some(IndexKey::Text(s.clone())),
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            Value::Null => Some(IndexKey::Null),
            _ => None,
        }
    }
}

/// Hashable projection of indexable values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// NULL bucket.
    Null,
    /// Integer key.
    Int(i64),
    /// Text key.
    Text(String),
    /// Bool key.
    Bool(bool),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "x'{}B'", b.len()),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn views_and_widening() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn total_cmp_numeric_cross_type() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn index_keys_exclude_floats_and_bytes() {
        assert!(Value::Int(1).index_key().is_some());
        assert!(Value::text("a").index_key().is_some());
        assert!(Value::Float(1.0).index_key().is_none());
        assert!(Value::Bytes(vec![1]).index_key().is_none());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("hi").to_string(), "'hi'");
        assert_eq!(Value::Bytes(vec![1, 2, 3]).to_string(), "x'3B'");
    }
}
