//! Embedded typed table store for the SOR sensing server.
//!
//! The paper stores everything in PostgreSQL (§II-B): raw binary sensed
//! data (written directly by the Message Handler), decoded records and
//! feature data (written by the Data Processor), plus user/application/
//! participation bookkeeping. This crate supplies the slice of an
//! RDBMS those components actually use:
//!
//! - typed schemas with nullable columns ([`schema`]),
//! - row insertion with validation ([`table`]),
//! - predicate scans ([`predicate`]),
//! - hash indexes on equality-queried columns ([`index`]),
//! - multiple tables under one [`Database`] with binary snapshots
//!   (serialised with the `sor-proto` wire primitives).
//!
//! # Example
//!
//! ```
//! use sor_store::{ColumnType, Database, Predicate, Schema, Value};
//!
//! let mut db = Database::new();
//! db.create_table(Schema::new("readings")
//!     .column("task_id", ColumnType::Int)
//!     .column("sensor", ColumnType::Text)
//!     .column("value", ColumnType::Float))?;
//! db.insert("readings", vec![Value::Int(1), Value::text("light"), Value::Float(420.0)])?;
//! let rows = db.scan("readings", &Predicate::eq("sensor", Value::text("light")))?;
//! assert_eq!(rows.len(), 1);
//! # Ok::<(), sor_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod changelog;
pub mod database;
pub mod index;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod table;
pub mod value;

pub use changelog::{ChangeLog, LogOp};
pub use database::Database;
pub use predicate::Predicate;
pub use query::Query;
pub use schema::{Column, ColumnType, Schema};
pub use table::{Row, RowId, Table};
pub use value::Value;

/// Errors from the store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Table does not exist.
    UnknownTable(String),
    /// Table already exists.
    DuplicateTable(String),
    /// Column does not exist in the schema.
    UnknownColumn {
        /// The table.
        table: String,
        /// The missing column.
        column: String,
    },
    /// A row's arity or types do not match the schema.
    SchemaMismatch {
        /// The table.
        table: String,
        /// Description of the mismatch.
        detail: String,
    },
    /// An index was requested on a type that cannot be hashed exactly.
    NotIndexable {
        /// The column.
        column: String,
        /// Its type.
        ty: ColumnType,
    },
    /// An index already exists on that column.
    DuplicateIndex(String),
    /// A snapshot could not be decoded.
    CorruptSnapshot(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StoreError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            StoreError::UnknownColumn { table, column } => {
                write!(f, "table `{table}` has no column `{column}`")
            }
            StoreError::SchemaMismatch { table, detail } => {
                write!(f, "row does not match schema of `{table}`: {detail}")
            }
            StoreError::NotIndexable { column, ty } => {
                write!(f, "column `{column}` of type {ty:?} cannot be indexed")
            }
            StoreError::DuplicateIndex(c) => write!(f, "index on `{c}` already exists"),
            StoreError::CorruptSnapshot(d) => write!(f, "corrupt snapshot: {d}"),
        }
    }
}

impl std::error::Error for StoreError {}
