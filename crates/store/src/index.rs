//! Hash indexes on equality-queried columns.

use std::collections::HashMap;

use crate::table::RowId;
use crate::value::{IndexKey, Value};

/// A secondary hash index: exact-value → row ids.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    buckets: HashMap<IndexKey, Vec<RowId>>,
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Adds a row under `value`. Unindexable values (floats/bytes) are
    /// silently skipped — lookups on them fall back to scans.
    pub fn insert(&mut self, value: &Value, id: RowId) {
        if let Some(key) = value.index_key() {
            self.buckets.entry(key).or_default().push(id);
        }
    }

    /// Removes a row from under `value`.
    pub fn remove(&mut self, value: &Value, id: RowId) {
        if let Some(key) = value.index_key() {
            if let Some(ids) = self.buckets.get_mut(&key) {
                ids.retain(|&r| r != id);
                if ids.is_empty() {
                    self.buckets.remove(&key);
                }
            }
        }
    }

    /// Row ids matching `value` exactly, or `None` if the value is not
    /// indexable (caller must scan).
    pub fn lookup(&self, value: &Value) -> Option<Vec<RowId>> {
        let key = value.index_key()?;
        Some(self.buckets.get(&key).cloned().unwrap_or_default())
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut idx = HashIndex::new();
        idx.insert(&Value::Int(5), RowId(0));
        idx.insert(&Value::Int(5), RowId(1));
        idx.insert(&Value::Int(7), RowId(2));
        assert_eq!(idx.lookup(&Value::Int(5)).unwrap(), vec![RowId(0), RowId(1)]);
        idx.remove(&Value::Int(5), RowId(0));
        assert_eq!(idx.lookup(&Value::Int(5)).unwrap(), vec![RowId(1)]);
        assert_eq!(idx.key_count(), 2);
        idx.remove(&Value::Int(5), RowId(1));
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn missing_key_is_empty_not_none() {
        let idx = HashIndex::new();
        assert_eq!(idx.lookup(&Value::Int(9)).unwrap(), vec![]);
    }

    #[test]
    fn floats_are_not_indexable() {
        let mut idx = HashIndex::new();
        idx.insert(&Value::Float(1.0), RowId(0));
        assert_eq!(idx.lookup(&Value::Float(1.0)), None);
        assert_eq!(idx.key_count(), 0);
    }

    #[test]
    fn null_values_are_indexed() {
        let mut idx = HashIndex::new();
        idx.insert(&Value::Null, RowId(3));
        assert_eq!(idx.lookup(&Value::Null).unwrap(), vec![RowId(3)]);
    }
}
