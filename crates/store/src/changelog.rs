//! Logical change capture for durability.
//!
//! Every mutation that goes through the [`Database`](crate::Database)
//! facade is described by a [`LogOp`] — a *logical* log record carrying
//! exactly what is needed to replay the mutation deterministically
//! (including minted row ids, so replay reproduces identical state).
//! A [`ChangeLog`] is a cheap, cloneable handle (modelled after
//! `sor_obs::Recorder`) that a durability layer attaches to a database;
//! the default handle is disabled and costs one branch per mutation.
//!
//! The ops are deliberately physical about *identity* (row ids, not
//! predicates): replaying `Delete { row_ids }` does not depend on scan
//! order or predicate evaluation, so a recovered database is
//! bit-identical to the one that logged the ops.

use std::sync::{Arc, Mutex};

use sor_proto::wire::{Reader, Writer};
use sor_proto::ProtoError;

use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;
use crate::StoreError;

/// One logical mutation of a database.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// DDL: a table was created with this schema.
    CreateTable(Schema),
    /// DDL: a table was dropped.
    DropTable(String),
    /// A hash index was created on `table.column`.
    CreateIndex {
        /// The table.
        table: String,
        /// The indexed column.
        column: String,
    },
    /// A row was inserted and minted `row_id`.
    Insert {
        /// The table.
        table: String,
        /// The id the row received.
        row_id: u64,
        /// Cell values in schema order.
        values: Vec<Value>,
    },
    /// Rows were deleted by id.
    Delete {
        /// The table.
        table: String,
        /// The ids that went away.
        row_ids: Vec<u64>,
    },
}

const TAG_CREATE_TABLE: u8 = 1;
const TAG_DROP_TABLE: u8 = 2;
const TAG_CREATE_INDEX: u8 = 3;
const TAG_INSERT: u8 = 4;
const TAG_DELETE: u8 = 5;

impl LogOp {
    /// Serialises the op with the `sor-proto` wire primitives. The
    /// durability layer frames and checksums the result; this is the
    /// payload only.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Appends the encoded op to an existing writer.
    pub fn encode_into(&self, w: &mut Writer) {
        match self {
            LogOp::CreateTable(schema) => {
                w.put_u8(TAG_CREATE_TABLE);
                w.put_str(schema.name());
                w.put_uvar(schema.columns().len() as u64);
                for c in schema.columns() {
                    w.put_str(&c.name);
                    w.put_u8(c.ty.wire_tag());
                    w.put_u8(c.nullable as u8);
                }
            }
            LogOp::DropTable(name) => {
                w.put_u8(TAG_DROP_TABLE);
                w.put_str(name);
            }
            LogOp::CreateIndex { table, column } => {
                w.put_u8(TAG_CREATE_INDEX);
                w.put_str(table);
                w.put_str(column);
            }
            LogOp::Insert { table, row_id, values } => {
                w.put_u8(TAG_INSERT);
                w.put_str(table);
                w.put_uvar(*row_id);
                w.put_uvar(values.len() as u64);
                for v in values {
                    v.encode_into(w);
                }
            }
            LogOp::Delete { table, row_ids } => {
                w.put_u8(TAG_DELETE);
                w.put_str(table);
                w.put_uvar(row_ids.len() as u64);
                for &id in row_ids {
                    w.put_uvar(id);
                }
            }
        }
    }

    /// Decodes one op from a payload produced by [`LogOp::encode`].
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptSnapshot`] on truncation or unknown tags
    /// (a log record that decodes wrongly is treated like a corrupt
    /// snapshot: rejected, never guessed at).
    pub fn decode(bytes: &[u8]) -> Result<LogOp, StoreError> {
        let mut r = Reader::new(bytes);
        let op = Self::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(StoreError::CorruptSnapshot(format!(
                "{} trailing bytes after log record",
                r.remaining()
            )));
        }
        Ok(op)
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<LogOp, StoreError> {
        let corrupt = |e: ProtoError| StoreError::CorruptSnapshot(e.to_string());
        Ok(match r.get_u8().map_err(corrupt)? {
            TAG_CREATE_TABLE => {
                let name = r.get_str().map_err(corrupt)?.to_string();
                let n_cols = r.get_uvar().map_err(corrupt)? as usize;
                let mut schema = Schema::new(&name);
                for _ in 0..n_cols {
                    let cname = r.get_str().map_err(corrupt)?.to_string();
                    let ty = ColumnType::from_wire_tag(r.get_u8().map_err(corrupt)?).ok_or_else(
                        || StoreError::CorruptSnapshot("bad column type tag".to_string()),
                    )?;
                    let nullable = r.get_u8().map_err(corrupt)? != 0;
                    let c = Column { name: cname, ty, nullable };
                    schema = if c.nullable {
                        schema.nullable_column(&c.name, c.ty)
                    } else {
                        schema.column(&c.name, c.ty)
                    };
                }
                LogOp::CreateTable(schema)
            }
            TAG_DROP_TABLE => LogOp::DropTable(r.get_str().map_err(corrupt)?.to_string()),
            TAG_CREATE_INDEX => LogOp::CreateIndex {
                table: r.get_str().map_err(corrupt)?.to_string(),
                column: r.get_str().map_err(corrupt)?.to_string(),
            },
            TAG_INSERT => {
                let table = r.get_str().map_err(corrupt)?.to_string();
                let row_id = r.get_uvar().map_err(corrupt)?;
                let n = r.get_uvar().map_err(corrupt)? as usize;
                // Guard against hostile lengths before allocating: every
                // value costs at least one tag byte.
                if n > r.remaining() {
                    return Err(StoreError::CorruptSnapshot(format!(
                        "insert declares {n} values with {} bytes left",
                        r.remaining()
                    )));
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(Value::decode_from(r).map_err(corrupt)?);
                }
                LogOp::Insert { table, row_id, values }
            }
            TAG_DELETE => {
                let table = r.get_str().map_err(corrupt)?.to_string();
                let n = r.get_uvar().map_err(corrupt)? as usize;
                if n > r.remaining() {
                    return Err(StoreError::CorruptSnapshot(format!(
                        "delete declares {n} ids with {} bytes left",
                        r.remaining()
                    )));
                }
                let mut row_ids = Vec::with_capacity(n);
                for _ in 0..n {
                    row_ids.push(r.get_uvar().map_err(corrupt)?);
                }
                LogOp::Delete { table, row_ids }
            }
            t => {
                return Err(StoreError::CorruptSnapshot(format!("unknown log record tag {t}")));
            }
        })
    }
}

/// Cloneable capture handle for [`LogOp`]s.
///
/// All clones share one buffer; the durability layer drains it at
/// commit points. The default handle is disabled: mutations pay one
/// branch and capture nothing.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    inner: Option<Arc<Mutex<Vec<LogOp>>>>,
}

impl ChangeLog {
    /// A capturing handle with an empty buffer.
    pub fn enabled() -> Self {
        ChangeLog { inner: Some(Arc::new(Mutex::new(Vec::new()))) }
    }

    /// The no-op sink (the default).
    pub fn disabled() -> Self {
        ChangeLog { inner: None }
    }

    /// Whether ops are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one op (no-op when disabled).
    pub fn push(&self, op: LogOp) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("changelog poisoned").push(op);
        }
    }

    /// Takes every captured op, leaving the buffer empty.
    pub fn drain(&self) -> Vec<LogOp> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.lock().expect("changelog poisoned")),
            None => Vec::new(),
        }
    }

    /// Number of captured ops not yet drained.
    pub fn pending(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.lock().expect("changelog poisoned").len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<LogOp> {
        vec![
            LogOp::CreateTable(
                Schema::new("t")
                    .column("id", ColumnType::Int)
                    .nullable_column("name", ColumnType::Text),
            ),
            LogOp::CreateIndex { table: "t".into(), column: "id".into() },
            LogOp::Insert {
                table: "t".into(),
                row_id: 7,
                values: vec![Value::Int(-3), Value::Null],
            },
            LogOp::Delete { table: "t".into(), row_ids: vec![0, 7, 9] },
            LogOp::DropTable("t".into()),
        ]
    }

    #[test]
    fn ops_roundtrip() {
        for op in ops() {
            let bytes = op.encode();
            assert_eq!(LogOp::decode(&bytes).unwrap(), op, "{op:?}");
        }
    }

    #[test]
    fn truncated_ops_rejected_not_panicking() {
        for op in ops() {
            let bytes = op.encode();
            for cut in 0..bytes.len() {
                assert!(
                    LogOp::decode(&bytes[..cut]).is_err(),
                    "truncation at {cut} must fail: {op:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ops()[2].encode();
        bytes.push(0);
        assert!(LogOp::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(LogOp::decode(&[99]).is_err());
    }

    #[test]
    fn hostile_lengths_rejected_without_allocation() {
        // An insert declaring 2^50 values with a 2-byte body.
        let mut w = Writer::new();
        w.put_u8(TAG_INSERT);
        w.put_str("t");
        w.put_uvar(1);
        w.put_uvar(1 << 50);
        assert!(LogOp::decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn changelog_captures_and_drains() {
        let log = ChangeLog::enabled();
        let clone = log.clone();
        log.push(LogOp::DropTable("a".into()));
        clone.push(LogOp::DropTable("b".into()));
        assert_eq!(log.pending(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(clone.pending(), 0, "clones share the buffer");
    }

    #[test]
    fn disabled_changelog_is_inert() {
        let log = ChangeLog::disabled();
        log.push(LogOp::DropTable("a".into()));
        assert_eq!(log.pending(), 0);
        assert!(log.drain().is_empty());
        assert!(!ChangeLog::default().is_enabled());
    }
}
