//! The multi-table database facade plus binary snapshots.

use std::collections::BTreeMap;

use sor_obs::Recorder;
use sor_proto::checksum::crc32;
use sor_proto::wire::{Reader, Writer};

use crate::changelog::{ChangeLog, LogOp};
use crate::predicate::Predicate;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::{Row, RowId, Table};
use crate::value::Value;
use crate::StoreError;

/// Snapshot format version. v2 persists index definitions, row ids and
/// each table's id counter (so restore is exact, not approximate) and
/// ends with a CRC-32 trailer over everything before it (so *any* byte
/// flip is rejected instead of silently decoding into wrong data).
const SNAPSHOT_VERSION: u8 = 2;

/// A named collection of tables — the sensing server's "PostgreSQL".
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    recorder: Recorder,
    changelog: ChangeLog,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Attaches an observability recorder. Row traffic through the
    /// facade is counted per table (`store.rows_inserted.<table>`,
    /// `store.rows_scanned.<table>`, `store.rows_deleted.<table>`);
    /// the default recorder is disabled and costs one branch per op.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Attaches a change log. Every mutation that goes through this
    /// facade is captured as a [`LogOp`]; the durability layer drains
    /// the buffer at commit points and appends it to its write-ahead
    /// log. The default handle is disabled (one branch per mutation).
    ///
    /// Mutations through [`Database::table_mut`] bypass capture — a
    /// durable deployment must mutate through the facade only.
    pub fn set_changelog(&mut self, changelog: ChangeLog) {
        self.changelog = changelog;
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::DuplicateTable`] if the name is taken.
    pub fn create_table(&mut self, schema: Schema) -> Result<(), StoreError> {
        let name = schema.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StoreError::DuplicateTable(name));
        }
        if self.changelog.is_enabled() {
            self.changelog.push(LogOp::CreateTable(schema.clone()));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Drops a table. Returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let existed = self.tables.remove(name).is_some();
        if existed {
            self.changelog.push(LogOp::DropTable(name.to_string()));
        }
        existed
    }

    /// Creates a hash index on `table.column` — the facade twin of
    /// [`Table::create_index`], so the mutation is captured by the
    /// change log (and therefore survives crash recovery).
    ///
    /// # Errors
    ///
    /// Unknown table/column, unindexable type, duplicate index.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), StoreError> {
        self.table_mut(table)?.create_index(column)?;
        self.changelog
            .push(LogOp::CreateIndex { table: table.to_string(), column: column.to_string() });
        Ok(())
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Borrows a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownTable`].
    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables.get(name).ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Mutably borrows a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownTable`].
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables.get_mut(name).ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// Unknown table or schema mismatch.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<RowId, StoreError> {
        let id = if self.changelog.is_enabled() {
            let id = self.table_mut(table)?.insert(values.clone())?;
            self.changelog.push(LogOp::Insert { table: table.to_string(), row_id: id.0, values });
            id
        } else {
            self.table_mut(table)?.insert(values)?
        };
        self.recorder.count_labeled("store.rows_inserted", table, 1);
        Ok(id)
    }

    /// Scans a table.
    ///
    /// # Errors
    ///
    /// Unknown table/column.
    pub fn scan(&self, table: &str, pred: &Predicate) -> Result<Vec<Row>, StoreError> {
        let (rows, used_index) = self.table(table)?.scan_indexed(pred)?;
        self.recorder.count_labeled("store.rows_scanned", table, rows.len() as u64);
        self.recorder.count_labeled("store.scans_run", table, 1);
        if used_index {
            self.recorder.count_labeled("store.scans_indexed", table, 1);
        }
        Ok(rows)
    }

    /// Deletes matching rows, returning the count.
    ///
    /// # Errors
    ///
    /// Unknown table/column.
    pub fn delete_where(&mut self, table: &str, pred: &Predicate) -> Result<usize, StoreError> {
        let gone = self.table_mut(table)?.delete_where(pred)?;
        let n = gone.len();
        if n > 0 {
            self.changelog.push(LogOp::Delete {
                table: table.to_string(),
                row_ids: gone.iter().map(|id| id.0).collect(),
            });
        }
        self.recorder.count_labeled("store.rows_deleted", table, n as u64);
        Ok(n)
    }

    /// Replays one logical op, exactly as originally applied (inserts
    /// land under their recorded row ids). Never captured by the change
    /// log — this *is* the log being consumed.
    ///
    /// # Errors
    ///
    /// Storage errors if the op does not fit the current state (a log
    /// replayed against the wrong checkpoint).
    pub fn apply_op(&mut self, op: &LogOp) -> Result<(), StoreError> {
        match op {
            LogOp::CreateTable(schema) => {
                let name = schema.name().to_string();
                if self.tables.contains_key(&name) {
                    return Err(StoreError::DuplicateTable(name));
                }
                self.tables.insert(name, Table::new(schema.clone()));
                Ok(())
            }
            LogOp::DropTable(name) => {
                self.tables.remove(name);
                Ok(())
            }
            LogOp::CreateIndex { table, column } => self.table_mut(table)?.create_index(column),
            LogOp::Insert { table, row_id, values } => {
                self.table_mut(table)?.insert_at(RowId(*row_id), values.clone())
            }
            LogOp::Delete { table, row_ids } => {
                let ids: Vec<RowId> = row_ids.iter().map(|&id| RowId(id)).collect();
                self.table_mut(table)?.delete_ids(&ids);
                Ok(())
            }
        }
    }

    /// Serialises every table — schema, index definitions, rows *with
    /// their ids*, and the id counter — into a self-contained binary
    /// snapshot ending in a CRC-32 trailer. [`Database::restore`] is an
    /// exact inverse: indexes are rebuilt, ids preserved.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"SORD");
        w.put_u8(SNAPSHOT_VERSION);
        w.put_uvar(self.tables.len() as u64);
        for (name, table) in &self.tables {
            w.put_str(name);
            let schema = table.schema();
            w.put_uvar(schema.columns().len() as u64);
            for c in schema.columns() {
                w.put_str(&c.name);
                w.put_u8(c.ty.wire_tag());
                w.put_u8(c.nullable as u8);
            }
            let indexes = table.indexed_columns();
            w.put_uvar(indexes.len() as u64);
            for col in &indexes {
                w.put_str(col);
            }
            w.put_uvar(table.next_row_id());
            let rows: Vec<Row> = table.iter().collect();
            w.put_uvar(rows.len() as u64);
            for row in rows {
                w.put_uvar(row.id.0);
                for v in &row.values {
                    v.encode_into(&mut w);
                }
            }
        }
        let crc = crc32(w.as_slice());
        w.put_u32(crc);
        w.into_bytes()
    }

    /// Restores a database from a snapshot.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptSnapshot`] on any structural problem or a
    /// checksum mismatch — a flipped byte anywhere in the snapshot is
    /// rejected, never decoded into silently wrong data.
    pub fn restore(bytes: &[u8]) -> Result<Database, StoreError> {
        let corrupt = |d: &str| StoreError::CorruptSnapshot(d.to_string());
        if bytes.len() < 4 {
            return Err(corrupt("shorter than its checksum trailer"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(corrupt(&format!(
                "checksum mismatch: computed {computed:08x}, stored {stored:08x}"
            )));
        }
        let mut r = Reader::new(body);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.get_u8().map_err(|e| corrupt(&e.to_string()))?;
        }
        if &magic != b"SORD" {
            return Err(corrupt("bad magic"));
        }
        let version = r.get_u8().map_err(|e| corrupt(&e.to_string()))?;
        if version != SNAPSHOT_VERSION {
            return Err(corrupt(&format!("unsupported snapshot version {version}")));
        }
        let n_tables = r.get_uvar().map_err(|e| corrupt(&e.to_string()))? as usize;
        let mut db = Database::new();
        for _ in 0..n_tables {
            let name = r.get_str().map_err(|e| corrupt(&e.to_string()))?.to_string();
            let n_cols = r.get_uvar().map_err(|e| corrupt(&e.to_string()))? as usize;
            let mut schema = Schema::new(&name);
            let mut col_defs: Vec<Column> = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let cname = r.get_str().map_err(|e| corrupt(&e.to_string()))?.to_string();
                let ty =
                    ColumnType::from_wire_tag(r.get_u8().map_err(|e| corrupt(&e.to_string()))?)
                        .ok_or_else(|| corrupt("bad column type tag"))?;
                let nullable = r.get_u8().map_err(|e| corrupt(&e.to_string()))? != 0;
                col_defs.push(Column { name: cname, ty, nullable });
            }
            for c in &col_defs {
                schema = if c.nullable {
                    schema.nullable_column(&c.name, c.ty)
                } else {
                    schema.column(&c.name, c.ty)
                };
            }
            db.create_table(schema).map_err(|e| corrupt(&e.to_string()))?;
            let n_indexes = r.get_uvar().map_err(|e| corrupt(&e.to_string()))? as usize;
            for _ in 0..n_indexes {
                let col = r.get_str().map_err(|e| corrupt(&e.to_string()))?.to_string();
                db.table_mut(&name)
                    .and_then(|t| t.create_index(&col))
                    .map_err(|e| corrupt(&e.to_string()))?;
            }
            let next_id = r.get_uvar().map_err(|e| corrupt(&e.to_string()))?;
            let n_rows = r.get_uvar().map_err(|e| corrupt(&e.to_string()))? as usize;
            for _ in 0..n_rows {
                let row_id = r.get_uvar().map_err(|e| corrupt(&e.to_string()))?;
                let mut values = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    values.push(Value::decode_from(&mut r).map_err(|e| corrupt(&e.to_string()))?);
                }
                db.table_mut(&name)
                    .and_then(|t| t.insert_at(RowId(row_id), values))
                    .map_err(|e| corrupt(&e.to_string()))?;
            }
            let table = db.table(&name).map_err(|e| corrupt(&e.to_string()))?;
            if table.next_row_id() > next_id {
                return Err(corrupt("row id above the recorded id counter"));
            }
            db.table_mut(&name).expect("just created").set_next_row_id(next_id);
        }
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes after snapshot"));
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::new("users")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .nullable_column("email", ColumnType::Text),
        )
        .unwrap();
        db.create_table(
            Schema::new("blobs")
                .column("id", ColumnType::Int)
                .column("body", ColumnType::Bytes)
                .column("flag", ColumnType::Bool)
                .column("score", ColumnType::Float),
        )
        .unwrap();
        db.insert("users", vec![Value::Int(1), Value::text("alice"), Value::Null]).unwrap();
        db.insert("users", vec![Value::Int(2), Value::text("bob"), Value::text("b@x.io")]).unwrap();
        db.insert(
            "blobs",
            vec![Value::Int(1), Value::Bytes(vec![1, 2, 3]), Value::Bool(true), Value::Float(0.5)],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_scan() {
        let db = sample_db();
        let rows = db.scan("users", &Predicate::eq("name", Value::text("bob"))).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[2], Value::text("b@x.io"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = sample_db();
        assert_eq!(
            db.create_table(Schema::new("users").column("x", ColumnType::Int)),
            Err(StoreError::DuplicateTable("users".to_string()))
        );
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new();
        assert!(matches!(db.scan("ghost", &Predicate::True), Err(StoreError::UnknownTable(_))));
    }

    #[test]
    fn drop_table() {
        let mut db = sample_db();
        assert!(db.drop_table("users"));
        assert!(!db.drop_table("users"));
        assert_eq!(db.table_names(), vec!["blobs"]);
    }

    #[test]
    fn snapshot_roundtrips() {
        let db = sample_db();
        let bytes = db.snapshot();
        let back = Database::restore(&bytes).unwrap();
        assert_eq!(back.table_names(), db.table_names());
        let rows_a = db.scan("users", &Predicate::True).unwrap();
        let rows_b = back.scan("users", &Predicate::True).unwrap();
        assert_eq!(rows_a, rows_b, "rows and their ids survive");
        let blob = back.scan("blobs", &Predicate::True).unwrap();
        assert_eq!(blob[0].values[1], Value::Bytes(vec![1, 2, 3]));
        assert_eq!(blob[0].values[3], Value::Float(0.5));
    }

    #[test]
    fn restore_rebuilds_indexes_and_id_counter() {
        let mut db = sample_db();
        db.create_index("users", "id").unwrap();
        db.create_index("users", "name").unwrap();
        // Mint and delete a row so next_id is ahead of the row count.
        db.insert("users", vec![Value::Int(9), Value::text("gone"), Value::Null]).unwrap();
        db.delete_where("users", &Predicate::eq("id", Value::Int(9))).unwrap();

        let back = Database::restore(&db.snapshot()).unwrap();
        let users = back.table("users").unwrap();
        assert!(users.has_index("id") && users.has_index("name"), "indexes rebuilt");
        assert_eq!(users.next_row_id(), db.table("users").unwrap().next_row_id());
        // The rebuilt index answers point lookups.
        let rows = back.scan("users", &Predicate::eq("id", Value::Int(2))).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[1], Value::text("bob"));
        // New inserts continue the original id sequence.
        let mut back = back;
        let id =
            back.insert("users", vec![Value::Int(3), Value::text("cam"), Value::Null]).unwrap();
        assert_eq!(id, RowId(3), "ids not reused after restore");
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let db = sample_db();
        let mut bytes = db.snapshot();
        bytes[0] = b'X';
        assert!(matches!(Database::restore(&bytes), Err(StoreError::CorruptSnapshot(_))));
        // Truncations.
        for cut in [3, bytes.len() / 2] {
            assert!(Database::restore(&db.snapshot()[..cut]).is_err());
        }
        // Any single-byte flip anywhere is caught by the CRC trailer —
        // including flips inside row values that would otherwise decode
        // into silently wrong data.
        let clean = db.snapshot();
        for offset in 0..clean.len() {
            let mut flipped = clean.clone();
            flipped[offset] ^= 0x40;
            assert!(
                matches!(Database::restore(&flipped), Err(StoreError::CorruptSnapshot(_))),
                "flip at {offset} must be rejected"
            );
        }
    }

    #[test]
    fn delete_through_facade() {
        let mut db = sample_db();
        let n = db.delete_where("users", &Predicate::eq("id", Value::Int(1))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table("users").unwrap().len(), 1);
    }

    #[test]
    fn empty_database_snapshot() {
        let db = Database::new();
        let back = Database::restore(&db.snapshot()).unwrap();
        assert!(back.table_names().is_empty());
    }

    #[test]
    fn changelog_captures_facade_mutations() {
        let mut db = Database::new();
        let log = ChangeLog::enabled();
        db.set_changelog(log.clone());
        db.create_table(Schema::new("t").column("id", ColumnType::Int)).unwrap();
        db.create_index("t", "id").unwrap();
        let id = db.insert("t", vec![Value::Int(5)]).unwrap();
        db.delete_where("t", &Predicate::eq("id", Value::Int(5))).unwrap();
        db.drop_table("t");
        let ops = log.drain();
        assert_eq!(ops.len(), 5);
        assert!(matches!(&ops[0], LogOp::CreateTable(s) if s.name() == "t"));
        assert!(matches!(&ops[1], LogOp::CreateIndex { column, .. } if column == "id"));
        assert!(matches!(&ops[2], LogOp::Insert { row_id, .. } if *row_id == id.0));
        assert!(matches!(&ops[3], LogOp::Delete { row_ids, .. } if row_ids == &vec![id.0]));
        assert!(matches!(&ops[4], LogOp::DropTable(n) if n == "t"));
        // Failed mutations are not captured.
        assert!(db.insert("ghost", vec![]).is_err());
        assert!(log.drain().is_empty());
    }

    #[test]
    fn replaying_captured_ops_reproduces_state_exactly() {
        let log = ChangeLog::enabled();
        let mut db = Database::new();
        db.set_changelog(log.clone());
        db.create_table(
            Schema::new("t").column("id", ColumnType::Int).column("tag", ColumnType::Text),
        )
        .unwrap();
        db.create_index("t", "tag").unwrap();
        for i in 0..10 {
            db.insert("t", vec![Value::Int(i), Value::text(if i % 2 == 0 { "a" } else { "b" })])
                .unwrap();
        }
        db.delete_where("t", &Predicate::eq("tag", Value::text("a"))).unwrap();
        db.insert("t", vec![Value::Int(99), Value::text("c")]).unwrap();

        let mut replayed = Database::new();
        for op in log.drain() {
            replayed.apply_op(&op).unwrap();
        }
        assert_eq!(replayed.snapshot(), db.snapshot(), "replay is bit-exact");
        assert!(replayed.table("t").unwrap().has_index("tag"));
    }

    #[test]
    fn recorder_counts_row_traffic_per_table() {
        let rec = Recorder::enabled();
        let mut db = sample_db();
        db.set_recorder(rec.clone());
        // sample_db inserted before the recorder was attached.
        assert_eq!(rec.counter("store.rows_inserted.users"), 0);
        db.insert("users", vec![Value::Int(3), Value::text("cam"), Value::Null]).unwrap();
        db.scan("users", &Predicate::True).unwrap();
        db.delete_where("users", &Predicate::eq("id", Value::Int(1))).unwrap();
        assert_eq!(rec.counter("store.rows_inserted.users"), 1);
        assert_eq!(rec.counter("store.rows_scanned.users"), 3);
        assert_eq!(rec.counter("store.scans_run.users"), 1);
        assert_eq!(rec.counter("store.rows_deleted.users"), 1);
        assert_eq!(rec.counter("store.rows_inserted.blobs"), 0);
    }
}
