//! The multi-table database facade plus binary snapshots.

use std::collections::BTreeMap;

use sor_obs::Recorder;
use sor_proto::wire::{Reader, Writer};

use crate::predicate::Predicate;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::{Row, RowId, Table};
use crate::value::Value;
use crate::StoreError;

/// A named collection of tables — the sensing server's "PostgreSQL".
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    recorder: Recorder,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Attaches an observability recorder. Row traffic through the
    /// facade is counted per table (`store.rows_inserted.<table>`,
    /// `store.rows_scanned.<table>`, `store.rows_deleted.<table>`);
    /// the default recorder is disabled and costs one branch per op.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::DuplicateTable`] if the name is taken.
    pub fn create_table(&mut self, schema: Schema) -> Result<(), StoreError> {
        let name = schema.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StoreError::DuplicateTable(name));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Drops a table. Returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some()
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Borrows a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownTable`].
    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables.get(name).ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Mutably borrows a table.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownTable`].
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables.get_mut(name).ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// Unknown table or schema mismatch.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<RowId, StoreError> {
        let id = self.table_mut(table)?.insert(values)?;
        self.recorder.count_labeled("store.rows_inserted", table, 1);
        Ok(id)
    }

    /// Scans a table.
    ///
    /// # Errors
    ///
    /// Unknown table/column.
    pub fn scan(&self, table: &str, pred: &Predicate) -> Result<Vec<Row>, StoreError> {
        let rows = self.table(table)?.scan(pred)?;
        self.recorder.count_labeled("store.rows_scanned", table, rows.len() as u64);
        self.recorder.count_labeled("store.scans", table, 1);
        Ok(rows)
    }

    /// Deletes matching rows, returning the count.
    ///
    /// # Errors
    ///
    /// Unknown table/column.
    pub fn delete_where(&mut self, table: &str, pred: &Predicate) -> Result<usize, StoreError> {
        let n = self.table_mut(table)?.delete_where(pred)?;
        self.recorder.count_labeled("store.rows_deleted", table, n as u64);
        Ok(n)
    }

    /// Serialises every table (schema + rows, not indexes — they are
    /// rebuilt on load... by the caller re-issuing `create_index`) into
    /// a self-contained binary snapshot.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"SORD");
        w.put_uvar(self.tables.len() as u64);
        for (name, table) in &self.tables {
            w.put_str(name);
            let schema = table.schema();
            w.put_uvar(schema.columns().len() as u64);
            for c in schema.columns() {
                w.put_str(&c.name);
                w.put_u8(type_tag(c.ty));
                w.put_u8(c.nullable as u8);
            }
            let rows: Vec<Row> = table.iter().collect();
            w.put_uvar(rows.len() as u64);
            for row in rows {
                for v in &row.values {
                    write_value(&mut w, v);
                }
            }
        }
        w.into_bytes()
    }

    /// Restores a database from a snapshot.
    ///
    /// # Errors
    ///
    /// [`StoreError::CorruptSnapshot`] on any structural problem.
    pub fn restore(bytes: &[u8]) -> Result<Database, StoreError> {
        let corrupt = |d: &str| StoreError::CorruptSnapshot(d.to_string());
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.get_u8().map_err(|e| corrupt(&e.to_string()))?;
        }
        if &magic != b"SORD" {
            return Err(corrupt("bad magic"));
        }
        let n_tables = r.get_uvar().map_err(|e| corrupt(&e.to_string()))? as usize;
        let mut db = Database::new();
        for _ in 0..n_tables {
            let name = r.get_str().map_err(|e| corrupt(&e.to_string()))?.to_string();
            let n_cols = r.get_uvar().map_err(|e| corrupt(&e.to_string()))? as usize;
            let mut schema = Schema::new(&name);
            let mut col_defs: Vec<Column> = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let cname = r.get_str().map_err(|e| corrupt(&e.to_string()))?.to_string();
                let ty = type_from_tag(r.get_u8().map_err(|e| corrupt(&e.to_string()))?)
                    .ok_or_else(|| corrupt("bad column type tag"))?;
                let nullable = r.get_u8().map_err(|e| corrupt(&e.to_string()))? != 0;
                col_defs.push(Column { name: cname, ty, nullable });
            }
            for c in &col_defs {
                schema = if c.nullable {
                    schema.nullable_column(&c.name, c.ty)
                } else {
                    schema.column(&c.name, c.ty)
                };
            }
            db.create_table(schema).map_err(|e| corrupt(&e.to_string()))?;
            let n_rows = r.get_uvar().map_err(|e| corrupt(&e.to_string()))? as usize;
            for _ in 0..n_rows {
                let mut values = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    values.push(read_value(&mut r).map_err(|e| corrupt(&e.to_string()))?);
                }
                db.insert(&name, values).map_err(|e| corrupt(&e.to_string()))?;
            }
        }
        Ok(db)
    }
}

fn type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Text => 2,
        ColumnType::Bytes => 3,
        ColumnType::Bool => 4,
    }
}

fn type_from_tag(tag: u8) -> Option<ColumnType> {
    Some(match tag {
        0 => ColumnType::Int,
        1 => ColumnType::Float,
        2 => ColumnType::Text,
        3 => ColumnType::Bytes,
        4 => ColumnType::Bool,
        _ => return None,
    })
}

fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Int(i) => {
            w.put_u8(1);
            w.put_ivar(*i);
        }
        Value::Float(x) => {
            w.put_u8(2);
            w.put_f64(*x);
        }
        Value::Text(s) => {
            w.put_u8(3);
            w.put_str(s);
        }
        Value::Bytes(b) => {
            w.put_u8(4);
            w.put_bytes(b);
        }
        Value::Bool(b) => {
            w.put_u8(5);
            w.put_u8(*b as u8);
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, sor_proto::ProtoError> {
    Ok(match r.get_u8()? {
        0 => Value::Null,
        1 => Value::Int(r.get_ivar()?),
        2 => Value::Float(r.get_f64()?),
        3 => Value::Text(r.get_str()?.to_string()),
        4 => Value::Bytes(r.get_bytes()?.to_vec()),
        5 => Value::Bool(r.get_u8()? != 0),
        _ => return Err(sor_proto::ProtoError::UnknownMessageType(255)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::new("users")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .nullable_column("email", ColumnType::Text),
        )
        .unwrap();
        db.create_table(
            Schema::new("blobs")
                .column("id", ColumnType::Int)
                .column("body", ColumnType::Bytes)
                .column("flag", ColumnType::Bool)
                .column("score", ColumnType::Float),
        )
        .unwrap();
        db.insert("users", vec![Value::Int(1), Value::text("alice"), Value::Null]).unwrap();
        db.insert("users", vec![Value::Int(2), Value::text("bob"), Value::text("b@x.io")]).unwrap();
        db.insert(
            "blobs",
            vec![Value::Int(1), Value::Bytes(vec![1, 2, 3]), Value::Bool(true), Value::Float(0.5)],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_scan() {
        let db = sample_db();
        let rows = db.scan("users", &Predicate::eq("name", Value::text("bob"))).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[2], Value::text("b@x.io"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = sample_db();
        assert_eq!(
            db.create_table(Schema::new("users").column("x", ColumnType::Int)),
            Err(StoreError::DuplicateTable("users".to_string()))
        );
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new();
        assert!(matches!(db.scan("ghost", &Predicate::True), Err(StoreError::UnknownTable(_))));
    }

    #[test]
    fn drop_table() {
        let mut db = sample_db();
        assert!(db.drop_table("users"));
        assert!(!db.drop_table("users"));
        assert_eq!(db.table_names(), vec!["blobs"]);
    }

    #[test]
    fn snapshot_roundtrips() {
        let db = sample_db();
        let bytes = db.snapshot();
        let back = Database::restore(&bytes).unwrap();
        assert_eq!(back.table_names(), db.table_names());
        let rows_a = db.scan("users", &Predicate::True).unwrap();
        let rows_b = back.scan("users", &Predicate::True).unwrap();
        assert_eq!(
            rows_a.iter().map(|r| &r.values).collect::<Vec<_>>(),
            rows_b.iter().map(|r| &r.values).collect::<Vec<_>>()
        );
        let blob = back.scan("blobs", &Predicate::True).unwrap();
        assert_eq!(blob[0].values[1], Value::Bytes(vec![1, 2, 3]));
        assert_eq!(blob[0].values[3], Value::Float(0.5));
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let db = sample_db();
        let mut bytes = db.snapshot();
        bytes[0] = b'X';
        assert!(matches!(Database::restore(&bytes), Err(StoreError::CorruptSnapshot(_))));
        // Truncations.
        for cut in [3, bytes.len() / 2] {
            assert!(Database::restore(&db.snapshot()[..cut]).is_err());
        }
    }

    #[test]
    fn delete_through_facade() {
        let mut db = sample_db();
        let n = db.delete_where("users", &Predicate::eq("id", Value::Int(1))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.table("users").unwrap().len(), 1);
    }

    #[test]
    fn empty_database_snapshot() {
        let db = Database::new();
        let back = Database::restore(&db.snapshot()).unwrap();
        assert!(back.table_names().is_empty());
    }

    #[test]
    fn recorder_counts_row_traffic_per_table() {
        let rec = Recorder::enabled();
        let mut db = sample_db();
        db.set_recorder(rec.clone());
        // sample_db inserted before the recorder was attached.
        assert_eq!(rec.counter("store.rows_inserted.users"), 0);
        db.insert("users", vec![Value::Int(3), Value::text("cam"), Value::Null]).unwrap();
        db.scan("users", &Predicate::True).unwrap();
        db.delete_where("users", &Predicate::eq("id", Value::Int(1))).unwrap();
        assert_eq!(rec.counter("store.rows_inserted.users"), 1);
        assert_eq!(rec.counter("store.rows_scanned.users"), 3);
        assert_eq!(rec.counter("store.scans.users"), 1);
        assert_eq!(rec.counter("store.rows_deleted.users"), 1);
        assert_eq!(rec.counter("store.rows_inserted.blobs"), 0);
    }
}
