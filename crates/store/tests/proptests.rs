//! Property tests: index-accelerated scans must agree with naive scans,
//! and snapshots must roundtrip arbitrary contents.

use proptest::prelude::*;
use sor_store::{ColumnType, Database, Predicate, Schema, Table, Value};

fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    (
        any::<i64>(),
        "[a-e]{0,4}",
        prop_oneof![Just(Value::Null), (-1e9f64..1e9).prop_map(Value::Float)],
        any::<bool>(),
    )
        .prop_map(|(i, s, f, b)| vec![Value::Int(i), Value::text(s), f, Value::Bool(b)])
}

fn schema() -> Schema {
    Schema::new("t")
        .column("id", ColumnType::Int)
        .column("tag", ColumnType::Text)
        .nullable_column("score", ColumnType::Float)
        .column("flag", ColumnType::Bool)
}

proptest! {
    /// Point lookups through the index equal full scans, for every
    /// value that appears and a few that don't.
    #[test]
    fn index_matches_scan(rows in proptest::collection::vec(row_strategy(), 0..40)) {
        let mut indexed = Table::new(schema());
        let mut plain = Table::new(schema());
        for r in &rows {
            indexed.insert(r.clone()).unwrap();
            plain.insert(r.clone()).unwrap();
        }
        indexed.create_index("tag").unwrap();
        indexed.create_index("id").unwrap();
        let mut probes: Vec<Value> = rows.iter().map(|r| r[1].clone()).collect();
        probes.push(Value::text("zz-missing"));
        for probe in probes {
            let p = Predicate::eq("tag", probe);
            let mut a = indexed.scan(&p).unwrap();
            let mut b = plain.scan(&p).unwrap();
            a.sort_by_key(|r| r.id);
            b.sort_by_key(|r| r.id);
            prop_assert_eq!(a, b);
        }
    }

    /// Deleting then scanning never shows deleted rows, with or without
    /// indexes.
    #[test]
    fn delete_is_complete(rows in proptest::collection::vec(row_strategy(), 1..30), flag in any::<bool>()) {
        let mut t = Table::new(schema());
        for r in &rows {
            t.insert(r.clone()).unwrap();
        }
        t.create_index("flag").unwrap();
        t.delete_where(&Predicate::eq("flag", Value::Bool(flag))).unwrap();
        prop_assert!(t.scan(&Predicate::eq("flag", Value::Bool(flag))).unwrap().is_empty());
        // Survivors all carry the other flag.
        for row in t.scan(&Predicate::True).unwrap() {
            prop_assert_eq!(&row.values[3], &Value::Bool(!flag));
        }
    }

    /// Snapshot/restore preserves every row bit-for-bit.
    #[test]
    fn snapshot_roundtrip(rows in proptest::collection::vec(row_strategy(), 0..30)) {
        let mut db = Database::new();
        db.create_table(schema()).unwrap();
        for r in &rows {
            db.insert("t", r.clone()).unwrap();
        }
        let restored = Database::restore(&db.snapshot()).unwrap();
        let a: Vec<_> = db.scan("t", &Predicate::True).unwrap();
        let b: Vec<_> = restored.scan("t", &Predicate::True).unwrap();
        prop_assert_eq!(
            a.iter().map(|r| &r.values).collect::<Vec<_>>(),
            b.iter().map(|r| &r.values).collect::<Vec<_>>()
        );
    }

    /// Garbage never panics the snapshot decoder.
    #[test]
    fn restore_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        let _ = Database::restore(&bytes);
    }

    /// Flipping any byte anywhere in a valid snapshot must make restore
    /// fail — an `Err`, never a panic, never a silently wrong database.
    /// The CRC-32 trailer guarantees detection of any single-byte flip.
    #[test]
    fn any_byte_flip_is_rejected(
        rows in proptest::collection::vec(row_strategy(), 0..20),
        offset in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut db = Database::new();
        db.create_table(schema()).unwrap();
        db.create_index("t", "tag").unwrap();
        for r in &rows {
            db.insert("t", r.clone()).unwrap();
        }
        let mut snap = db.snapshot();
        let at = offset.index(snap.len());
        snap[at] ^= flip;
        prop_assert!(
            Database::restore(&snap).is_err(),
            "flip {flip:#04x} at byte {at}/{} was accepted",
            snap.len()
        );
    }

    /// Truncating a valid snapshot at any point must also fail cleanly.
    #[test]
    fn any_truncation_is_rejected(
        rows in proptest::collection::vec(row_strategy(), 0..20),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut db = Database::new();
        db.create_table(schema()).unwrap();
        for r in &rows {
            db.insert("t", r.clone()).unwrap();
        }
        let snap = db.snapshot();
        let at = cut.index(snap.len()); // always < len: a strict prefix
        prop_assert!(Database::restore(&snap[..at]).is_err(), "prefix of {at} bytes accepted");
    }
}
