//! CRC-sealed artifact files: run archives and other one-shot blobs.
//!
//! The WAL ([`crate::wal`]) frames a *stream* of records; an artifact
//! is the degenerate case — exactly one payload, written once, read
//! whole. `sor export` seals its [`sor_obs::RunArchive`] bytes this way
//! so a later `sor diff`/`sor query` can trust what it loads: a
//! magic-prefixed, CRC-framed envelope that detects truncation, bit
//! rot, and appended garbage before any archive parsing runs.
//!
//! Layout: `b"SORSEAL\x01"` (8 bytes: product tag + envelope version)
//! followed by one [`sor_proto::frame`] record (`[len][payload][crc]`).
//! Nothing may follow the frame — a sealed artifact is exactly one
//! payload, so trailing bytes are corruption, not extensibility.

use std::fs;
use std::path::Path;

use sor_proto::frame::{decode_frame, encode_frame_into, FrameError};

/// The 8-byte envelope prefix: product tag plus envelope version.
pub const SEAL_MAGIC: &[u8; 8] = b"SORSEAL\x01";

/// Why a sealed artifact could not be opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Reading or writing the file failed.
    Io(String),
    /// The file does not start with [`SEAL_MAGIC`] — not a sealed
    /// artifact (or a future envelope version).
    BadMagic,
    /// The CRC frame inside the envelope is torn or corrupt.
    Frame(FrameError),
    /// Valid frame, but bytes follow it — the file was appended to or
    /// spliced; a sealed artifact holds exactly one payload.
    TrailingBytes {
        /// How many unexpected bytes follow the frame.
        extra: usize,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(d) => write!(f, "artifact i/o error: {d}"),
            ArtifactError::BadMagic => write!(f, "not a sealed SOR artifact (bad magic)"),
            ArtifactError::Frame(e) => write!(f, "sealed payload unreadable: {e}"),
            ArtifactError::TrailingBytes { extra } => {
                write!(f, "{extra} byte(s) after the sealed payload")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Seals `payload` into a self-verifying artifact blob.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEAL_MAGIC.len() + payload.len() + 8);
    out.extend_from_slice(SEAL_MAGIC);
    encode_frame_into(&mut out, payload);
    out
}

/// Verifies and unwraps a sealed blob, returning the payload slice.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], ArtifactError> {
    let body = bytes.strip_prefix(SEAL_MAGIC.as_slice()).ok_or(ArtifactError::BadMagic)?;
    let (payload, consumed) = decode_frame(body).map_err(ArtifactError::Frame)?;
    if consumed != body.len() {
        return Err(ArtifactError::TrailingBytes { extra: body.len() - consumed });
    }
    Ok(payload)
}

/// Seals `payload` and writes it to `path` (via a same-directory temp
/// file + rename, so readers never observe a half-written artifact).
pub fn write_sealed(path: &Path, payload: &[u8]) -> Result<(), ArtifactError> {
    let blob = seal(payload);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &blob).map_err(|e| ArtifactError::Io(format!("{}: {e}", tmp.display())))?;
    fs::rename(&tmp, path)
        .map_err(|e| ArtifactError::Io(format!("{} -> {}: {e}", tmp.display(), path.display())))
}

/// Reads `path` and returns the verified payload.
pub fn read_sealed(path: &Path) -> Result<Vec<u8>, ArtifactError> {
    let bytes =
        fs::read(path).map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))?;
    unseal(&bytes).map(<[u8]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        for payload in [&b""[..], b"x", b"run archive bytes \x00\xff"] {
            let sealed = seal(payload);
            assert_eq!(unseal(&sealed).expect("roundtrip"), payload);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(unseal(b""), Err(ArtifactError::BadMagic));
        assert_eq!(unseal(b"SORSEAL"), Err(ArtifactError::BadMagic), "truncated magic");
        let mut sealed = seal(b"payload");
        sealed[7] = 2; // future envelope version
        assert_eq!(unseal(&sealed), Err(ArtifactError::BadMagic));
    }

    #[test]
    fn torn_and_corrupt_frames_are_rejected() {
        let sealed = seal(b"payload");
        // Torn: drop the last byte.
        match unseal(&sealed[..sealed.len() - 1]) {
            Err(ArtifactError::Frame(FrameError::Torn { .. })) => {}
            other => panic!("torn seal accepted: {other:?}"),
        }
        // Corrupt: flip a payload bit under the CRC.
        let mut flipped = sealed.clone();
        let mid = SEAL_MAGIC.len() + 4 + 2;
        flipped[mid] ^= 0x40;
        match unseal(&flipped) {
            Err(ArtifactError::Frame(FrameError::Corrupt { .. })) => {}
            other => panic!("corrupt seal accepted: {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut sealed = seal(b"payload");
        sealed.push(0);
        assert_eq!(unseal(&sealed), Err(ArtifactError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn file_roundtrip_and_io_errors() {
        let dir = std::env::temp_dir().join("sor_artifact_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.sorar");
        write_sealed(&path, b"archived run").expect("write");
        assert_eq!(read_sealed(&path).expect("read"), b"archived run");
        // The temp file did not survive the rename.
        assert!(!path.with_extension("tmp").exists());
        match read_sealed(&dir.join("absent.sorar")) {
            Err(ArtifactError::Io(_)) => {}
            other => panic!("missing file: {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }
}
