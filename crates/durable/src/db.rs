//! The durable database wrapper and crash recovery.

use sor_obs::Recorder;
use sor_proto::frame::{decode_frame, encode_frame};
use sor_proto::wire::{Reader, Writer};
use sor_store::{ChangeLog, Database};

use crate::storage::Storage;
use crate::wal::{encode_batch, replay_into, wal_file, TailState, CHECKPOINT_FILE};
use crate::DurableError;

/// Tuning knobs for the durability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Flush the log every N commits. 1 (the default) makes every
    /// acknowledged commit crash-proof; larger values batch flushes —
    /// the group-commit trade of a bounded loss window for throughput.
    pub group_commit: usize,
    /// Write a checkpoint (and retire the log) after this many logged
    /// ops, bounding both log growth and replay time.
    pub checkpoint_every_ops: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions { group_commit: 1, checkpoint_every_ops: 4096 }
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Whether a checkpoint existed.
    pub had_checkpoint: bool,
    /// Size of the checkpoint blob (0 without one).
    pub checkpoint_bytes: usize,
    /// Checkpoint epoch recovered into.
    pub epoch: u64,
    /// Log records replayed on top of the checkpoint.
    pub replayed_records: usize,
    /// Bytes cut off the log tail (0 on a clean shutdown).
    pub truncated_bytes: usize,
    /// How the log ended.
    pub tail: TailState,
}

impl RecoveryReport {
    /// One deterministic line for logs and smoke tests.
    pub fn summary(&self) -> String {
        format!(
            "recovery: checkpoint={} ({} B, epoch {}), replayed {} records, tail {} ({} B truncated)",
            if self.had_checkpoint { "yes" } else { "no" },
            self.checkpoint_bytes,
            self.epoch,
            self.replayed_records,
            self.tail,
            self.truncated_bytes,
        )
    }
}

/// A [`Database`] whose committed state survives crashes.
///
/// Mutations go through the inner database's facade (which captures
/// them as logical ops); [`DurableDatabase::commit`] is the durability
/// point — it appends the captured ops to the write-ahead log *before*
/// the caller acknowledges anything to a client. Construction is
/// either [`DurableDatabase::ephemeral`] (no logging, zero overhead —
/// the default for simulations that don't crash servers) or
/// [`DurableDatabase::open`], which recovers whatever the storage
/// holds.
#[derive(Debug)]
pub struct DurableDatabase {
    db: Database,
    changelog: ChangeLog,
    storage: Option<Box<dyn Storage>>,
    opts: DurableOptions,
    epoch: u64,
    unflushed_commits: usize,
    ops_since_checkpoint: u64,
    recorder: Recorder,
}

impl Default for DurableDatabase {
    fn default() -> Self {
        DurableDatabase::ephemeral()
    }
}

impl DurableDatabase {
    /// A database with durability disabled: no change capture, no log,
    /// [`DurableDatabase::commit`] is free. Behaviourally identical to
    /// a bare [`Database`].
    pub fn ephemeral() -> Self {
        DurableDatabase {
            db: Database::new(),
            changelog: ChangeLog::disabled(),
            storage: None,
            opts: DurableOptions::default(),
            epoch: 0,
            unflushed_commits: 0,
            ops_since_checkpoint: 0,
            recorder: Recorder::default(),
        }
    }

    /// Opens (or creates) a durable database on a storage backend,
    /// running crash recovery: restore the latest checkpoint, replay
    /// the valid log suffix, truncate the torn/corrupt tail. `now` is
    /// the sim-clock instant for the recovery trace span.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] from the backend,
    /// [`DurableError::CorruptCheckpoint`] if the checkpoint cannot be
    /// trusted, [`DurableError::Store`] if the log does not fit the
    /// checkpoint.
    pub fn open(
        mut storage: Box<dyn Storage>,
        opts: DurableOptions,
        recorder: Recorder,
        now: f64,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let wall = std::time::Instant::now();
        let span = recorder.span_start("durable.recovery", now);

        let corrupt = |d: String| DurableError::CorruptCheckpoint(d);
        let (mut db, epoch, had_checkpoint, checkpoint_bytes) =
            match storage.read(CHECKPOINT_FILE)? {
                Some(bytes) => {
                    let (payload, consumed) =
                        decode_frame(&bytes).map_err(|e| corrupt(e.to_string()))?;
                    if consumed != bytes.len() {
                        return Err(corrupt("trailing bytes after checkpoint".to_string()));
                    }
                    let mut r = Reader::new(payload);
                    let epoch = r.get_uvar().map_err(|e| corrupt(e.to_string()))?;
                    let snapshot = r.get_bytes().map_err(|e| corrupt(e.to_string()))?;
                    let db = Database::restore(snapshot).map_err(|e| corrupt(e.to_string()))?;
                    // Optional trailing field (absent in checkpoints
                    // written before flight recording existed): the
                    // flight recorder's ring, restored so a post-crash
                    // post-mortem still shows pre-checkpoint activity.
                    if r.remaining() != 0 {
                        let flight = r.get_bytes().map_err(|e| corrupt(e.to_string()))?;
                        if r.remaining() != 0 {
                            return Err(corrupt("trailing bytes after flight ring".to_string()));
                        }
                        if let Some(restored) = sor_obs::FlightRecorder::from_bytes(flight) {
                            recorder.flight_restore(restored);
                        }
                    }
                    (db, epoch, true, bytes.len())
                }
                None => (Database::new(), 0, false, 0),
            };

        let log = storage.read(&wal_file(epoch))?.unwrap_or_default();
        let outcome = replay_into(&mut db, &log)?;
        let truncated = log.len() - outcome.valid_len;
        if truncated > 0 {
            storage.truncate(&wal_file(epoch), outcome.valid_len as u64)?;
        }
        if epoch > 0 {
            // A crash between "write checkpoint" and "retire old log"
            // leaves the previous epoch's log behind; clean it up now.
            storage.remove(&wal_file(epoch - 1))?;
        }

        recorder.count("durable.recoveries_run", 1);
        recorder.count("durable.recovery_replayed_records", outcome.replayed as u64);
        recorder.count("durable.recovery_truncated_bytes", truncated as u64);
        if outcome.tail == TailState::Torn {
            recorder.count("durable.recovery_torn_tails", 1);
        }
        if outcome.tail == TailState::Corrupt {
            recorder.count("durable.recovery_corrupt_records", 1);
        }
        recorder.observe("durable.recovery_ms", wall.elapsed().as_secs_f64() * 1e3);
        recorder.span_attr(span, "replayed", &outcome.replayed.to_string());
        recorder.span_attr(span, "tail", &outcome.tail.to_string());
        recorder.span_end(span, now);

        let report = RecoveryReport {
            had_checkpoint,
            checkpoint_bytes,
            epoch,
            replayed_records: outcome.replayed,
            truncated_bytes: truncated,
            tail: outcome.tail,
        };
        let changelog = ChangeLog::enabled();
        db.set_changelog(changelog.clone());
        let this = DurableDatabase {
            db,
            changelog,
            storage: Some(storage),
            opts,
            epoch,
            unflushed_commits: 0,
            // Count the replayed log toward the next checkpoint so a
            // crash loop cannot grow the log without bound.
            ops_since_checkpoint: report.replayed_records as u64,
            recorder,
        };
        Ok((this, report))
    }

    /// Whether commits are actually being logged.
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// The wrapped database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the wrapped database. Mutations made through
    /// the database *facade* are captured for the log; direct
    /// [`Database::table_mut`] writes bypass durability — durable
    /// deployments must stay on the facade.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Ops captured but not yet committed to the log.
    pub fn pending_ops(&self) -> usize {
        self.changelog.pending()
    }

    /// The durability point: appends every captured op to the log and
    /// (per the group-commit knob) flushes. Call after each atomic unit
    /// of server work, *before* acknowledging it. No-op when ephemeral.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] from the backend.
    pub fn commit(&mut self) -> Result<(), DurableError> {
        let Some(storage) = &mut self.storage else {
            return Ok(());
        };
        let ops = self.changelog.drain();
        if ops.is_empty() {
            return Ok(());
        }
        let batch = encode_batch(&ops);
        storage.append(&wal_file(self.epoch), &batch)?;
        self.unflushed_commits += 1;
        if self.unflushed_commits >= self.opts.group_commit {
            storage.flush(&wal_file(self.epoch))?;
            self.unflushed_commits = 0;
            self.recorder.count("durable.wal_flushes", 1);
        }
        self.recorder.count("durable.commits_applied", 1);
        self.recorder.count("durable.wal_appends", ops.len() as u64);
        self.recorder.count("durable.wal_bytes", batch.len() as u64);
        self.ops_since_checkpoint += ops.len() as u64;
        if self.ops_since_checkpoint >= self.opts.checkpoint_every_ops {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Forces any group-commit-buffered appends to durable storage
    /// (e.g. on clean shutdown).
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] from the backend.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if let Some(storage) = &mut self.storage {
            if self.unflushed_commits > 0 {
                storage.flush(&wal_file(self.epoch))?;
                self.unflushed_commits = 0;
                self.recorder.count("durable.wal_flushes", 1);
            }
        }
        Ok(())
    }

    /// Writes a checkpoint and retires the log: snapshot the database,
    /// atomically replace the checkpoint blob (which names a fresh log
    /// epoch), then delete the old log. Crash-safe at every step — see
    /// [`crate::wal::wal_file`]. No-op when ephemeral.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] from the backend.
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        let Some(storage) = &mut self.storage else {
            return Ok(());
        };
        // Anything captured but uncommitted is part of the snapshot.
        self.changelog.drain();
        let snapshot = self.db.snapshot();
        let new_epoch = self.epoch + 1;
        let mut w = Writer::new();
        w.put_uvar(new_epoch);
        w.put_bytes(&snapshot);
        // Checkpoints from flight-recording deployments carry the ring
        // as a trailing field; plain deployments keep the legacy layout.
        if let Some(flight) = self.recorder.flight_bytes() {
            w.put_bytes(&flight);
        }
        storage.write_atomic(CHECKPOINT_FILE, &encode_frame(w.as_slice()))?;
        storage.remove(&wal_file(self.epoch))?;
        self.epoch = new_epoch;
        self.unflushed_commits = 0;
        self.ops_since_checkpoint = 0;
        self.recorder.count("durable.checkpoints_taken", 1);
        self.recorder.gauge("durable.checkpoint_bytes", snapshot.len() as f64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimDisk;
    use sor_store::{ColumnType, Predicate, Schema, Value};

    fn open_sim(disk: &SimDisk, opts: DurableOptions) -> (DurableDatabase, RecoveryReport) {
        DurableDatabase::open(Box::new(disk.clone()), opts, Recorder::default(), 0.0).unwrap()
    }

    fn seed_rows(ddb: &mut DurableDatabase, n: i64) {
        ddb.db_mut().create_table(Schema::new("t").column("n", ColumnType::Int)).unwrap();
        ddb.db_mut().create_index("t", "n").unwrap();
        ddb.commit().unwrap();
        for i in 0..n {
            ddb.db_mut().insert("t", vec![Value::Int(i)]).unwrap();
            ddb.commit().unwrap();
        }
    }

    fn count(ddb: &DurableDatabase) -> usize {
        ddb.db().scan("t", &Predicate::True).unwrap().len()
    }

    #[test]
    fn ephemeral_commit_is_a_noop() {
        let mut ddb = DurableDatabase::ephemeral();
        assert!(!ddb.is_durable());
        ddb.db_mut().create_table(Schema::new("t").column("n", ColumnType::Int)).unwrap();
        ddb.commit().unwrap();
        ddb.checkpoint().unwrap();
        assert_eq!(ddb.pending_ops(), 0);
    }

    #[test]
    fn committed_work_survives_a_crash() {
        let disk = SimDisk::new(11);
        let (mut ddb, report) = open_sim(&disk, DurableOptions::default());
        assert!(!report.had_checkpoint);
        seed_rows(&mut ddb, 10);
        drop(ddb);
        disk.crash();
        let (ddb, report) = open_sim(&disk, DurableOptions::default());
        assert_eq!(count(&ddb), 10, "every committed insert survives");
        assert_eq!(report.replayed_records, 12); // DDL + index + 10 inserts
        assert!(ddb.db().table("t").unwrap().has_index("n"));
    }

    #[test]
    fn uncommitted_work_does_not_survive() {
        let disk = SimDisk::new(13);
        let (mut ddb, _) = open_sim(&disk, DurableOptions::default());
        seed_rows(&mut ddb, 5);
        // Captured but never committed: lost on crash, by design.
        ddb.db_mut().insert("t", vec![Value::Int(99)]).unwrap();
        drop(ddb);
        disk.crash();
        let (ddb, _) = open_sim(&disk, DurableOptions::default());
        assert_eq!(count(&ddb), 5);
    }

    #[test]
    fn recovery_is_a_committed_prefix_under_group_commit() {
        // With group_commit > 1 a crash may lose the unflushed batch
        // tail, but what survives must be an exact prefix of commits.
        for seed in 0..40 {
            let disk = SimDisk::new(seed);
            let opts = DurableOptions { group_commit: 4, ..DurableOptions::default() };
            let (mut ddb, _) = open_sim(&disk, opts);
            seed_rows(&mut ddb, 17);
            drop(ddb);
            disk.crash();
            let (ddb, report) = open_sim(&disk, opts);
            let rows = ddb.db().scan("t", &Predicate::True).unwrap();
            let got: Vec<i64> = rows.iter().map(|r| r.values[0].as_int().unwrap()).collect();
            let expect: Vec<i64> = (0..got.len() as i64).collect();
            assert_eq!(got, expect, "seed {seed}: recovered rows are a prefix");
            assert!(
                report.tail != TailState::Corrupt,
                "seed {seed}: a torn write must never read as corruption"
            );
        }
    }

    #[test]
    fn flushed_commits_always_survive_group_commit_crashes() {
        let disk = SimDisk::new(3);
        let opts = DurableOptions { group_commit: 4, ..DurableOptions::default() };
        let (mut ddb, _) = open_sim(&disk, opts);
        seed_rows(&mut ddb, 10);
        ddb.sync().unwrap();
        drop(ddb);
        disk.crash();
        let (ddb, _) = open_sim(&disk, opts);
        assert_eq!(count(&ddb), 10, "sync() closes the group-commit loss window");
    }

    #[test]
    fn checkpoint_retires_the_log_and_recovery_uses_it() {
        let disk = SimDisk::new(17);
        let (mut ddb, _) = open_sim(&disk, DurableOptions::default());
        seed_rows(&mut ddb, 8);
        ddb.checkpoint().unwrap();
        // Post-checkpoint commits land in the new epoch's log.
        ddb.db_mut().insert("t", vec![Value::Int(100)]).unwrap();
        ddb.commit().unwrap();
        drop(ddb);
        disk.crash();
        let (ddb, report) = open_sim(&disk, DurableOptions::default());
        assert!(report.had_checkpoint);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.replayed_records, 1, "only the post-checkpoint insert replays");
        assert_eq!(count(&ddb), 9);
        assert!(ddb.db().table("t").unwrap().has_index("n"), "index restored from checkpoint");
    }

    #[test]
    fn automatic_checkpoint_bounds_log_replay() {
        let disk = SimDisk::new(19);
        let opts = DurableOptions { checkpoint_every_ops: 10, ..DurableOptions::default() };
        let (mut ddb, _) = open_sim(&disk, opts);
        seed_rows(&mut ddb, 50);
        drop(ddb);
        disk.crash();
        let (ddb, report) = open_sim(&disk, opts);
        assert!(report.had_checkpoint);
        assert!(report.replayed_records < 12, "replay bounded by checkpoints");
        assert_eq!(count(&ddb), 50);
    }

    #[test]
    fn bit_rot_in_the_log_is_detected_not_replayed() {
        let disk = SimDisk::new(23).with_bit_rot(1.0);
        let (mut ddb, _) = open_sim(&disk, DurableOptions::default());
        seed_rows(&mut ddb, 30);
        drop(ddb);
        disk.crash();
        match DurableDatabase::open(
            Box::new(disk.clone()),
            DurableOptions::default(),
            Recorder::default(),
            0.0,
        ) {
            Ok((ddb, report)) => {
                // The flip landed in the log: replay stops before it.
                assert_eq!(report.tail, TailState::Corrupt);
                let rows = ddb.db().scan("t", &Predicate::True).unwrap();
                let got: Vec<i64> = rows.iter().map(|r| r.values[0].as_int().unwrap()).collect();
                let expect: Vec<i64> = (0..got.len() as i64).collect();
                assert_eq!(got, expect, "state after corruption is still a committed prefix");
            }
            Err(DurableError::CorruptCheckpoint(_)) => {
                // The flip landed in the checkpoint: surfaced, not hidden.
            }
            Err(e) => panic!("unexpected recovery error: {e}"),
        }
    }

    #[test]
    fn double_crash_and_recover_is_stable() {
        let disk = SimDisk::new(29);
        let (mut ddb, _) = open_sim(&disk, DurableOptions::default());
        seed_rows(&mut ddb, 6);
        drop(ddb);
        disk.crash();
        let (mut ddb, _) = open_sim(&disk, DurableOptions::default());
        ddb.db_mut().insert("t", vec![Value::Int(6)]).unwrap();
        ddb.commit().unwrap();
        drop(ddb);
        disk.crash();
        let (ddb, _) = open_sim(&disk, DurableOptions::default());
        assert_eq!(count(&ddb), 7);
        // Recovered inserts continue the id sequence without reuse.
        let rows = ddb.db().scan("t", &Predicate::True).unwrap();
        let ids: Vec<u64> = rows.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn flight_ring_rides_the_checkpoint_and_survives_recovery() {
        let disk = SimDisk::new(37);
        let rec = Recorder::enabled().with_flight(8);
        let (mut ddb, _) = DurableDatabase::open(
            Box::new(disk.clone()),
            DurableOptions::default(),
            rec.clone(),
            0.0,
        )
        .unwrap();
        seed_rows(&mut ddb, 3);
        rec.span_start("server.handle_message", 1.0);
        ddb.checkpoint().unwrap();
        drop(ddb);
        disk.crash();
        // A fresh recorder with an empty ring: recovery refills it from
        // the checkpoint's trailing field.
        let rec2 = Recorder::enabled().with_flight(8);
        let (_, report) = DurableDatabase::open(
            Box::new(disk.clone()),
            DurableOptions::default(),
            rec2.clone(),
            2.0,
        )
        .unwrap();
        assert!(report.had_checkpoint);
        let dump = rec2.flight_render().unwrap();
        assert!(dump.contains("server.handle_message"), "restored ring lost the span:\n{dump}");
    }

    #[test]
    fn flightless_checkpoint_keeps_the_legacy_layout() {
        let disk = SimDisk::new(41);
        let (mut ddb, _) = open_sim(&disk, DurableOptions::default());
        seed_rows(&mut ddb, 2);
        ddb.checkpoint().unwrap();
        drop(ddb);
        disk.crash();
        let (ddb, report) = open_sim(&disk, DurableOptions::default());
        assert!(report.had_checkpoint);
        assert_eq!(count(&ddb), 2);
    }

    #[test]
    fn recovery_report_summary_is_deterministic() {
        let disk = SimDisk::new(31);
        let (mut ddb, _) = open_sim(&disk, DurableOptions::default());
        seed_rows(&mut ddb, 2);
        drop(ddb);
        let (_, report) = open_sim(&disk, DurableOptions::default());
        assert_eq!(
            report.summary(),
            "recovery: checkpoint=no (0 B, epoch 0), replayed 4 records, tail clean (0 B truncated)"
        );
    }
}
