//! Durability for the SOR sensing server.
//!
//! The paper's server keeps everything in PostgreSQL (§II-B) and simply
//! assumes the database survives restarts. This crate supplies that
//! assumption for the embedded `sor-store` database: a write-ahead log,
//! periodic checkpoints, and crash recovery, so a sensing server that
//! dies mid-period comes back with every committed upload intact.
//!
//! The design is the classic checkpoint + redo-log pair:
//!
//! - every mutation of the wrapped [`sor_store::Database`] is captured
//!   as a logical [`sor_store::LogOp`] and appended — CRC-framed via
//!   [`sor_proto::frame`] — to an append-only log *before* the commit
//!   is acknowledged ([`db`]);
//! - checkpoints serialise the whole database with
//!   [`sor_store::Database::snapshot`], atomically replace the previous
//!   checkpoint, and retire the log ([`wal`]);
//! - recovery restores the latest valid checkpoint and replays the
//!   valid log suffix, stopping cleanly at the first torn or corrupt
//!   record and truncating it ([`db::DurableDatabase::open`]).
//!
//! Two [`storage::Storage`] backends sit underneath: [`FileStorage`]
//! for real disks and [`SimDisk`], a deterministic in-memory disk that
//! injects torn writes, partial flushes and bit rot from a seeded hash
//! — the `sor-sim` world crashes servers against it and rebuilds them
//! mid-scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod db;
pub mod storage;
pub mod wal;

pub use artifact::{read_sealed, seal, unseal, write_sealed, ArtifactError, SEAL_MAGIC};
pub use db::{DurableDatabase, DurableOptions, RecoveryReport};
pub use storage::{FileStorage, SimDisk, Storage};
pub use wal::TailState;

use sor_store::StoreError;

/// Errors from the durability layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableError {
    /// The storage backend failed (I/O error on a real disk).
    Io(String),
    /// The checkpoint file exists but cannot be trusted. Unlike a bad
    /// log tail — which recovery truncates — a bad checkpoint means the
    /// durable state is gone; this is surfaced, never papered over.
    CorruptCheckpoint(String),
    /// Replaying the log against the checkpoint failed — the log and
    /// checkpoint do not belong together.
    Store(StoreError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(d) => write!(f, "storage error: {d}"),
            DurableError::CorruptCheckpoint(d) => write!(f, "corrupt checkpoint: {d}"),
            DurableError::Store(e) => write!(f, "log replay failed: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}
