//! Storage backends for the write-ahead log and checkpoints.
//!
//! The durability layer talks to named byte blobs through the
//! [`Storage`] trait; two implementations exist:
//!
//! - [`FileStorage`]: real files in a directory, with `fsync` on
//!   [`Storage::flush`] and write-then-rename for
//!   [`Storage::write_atomic`].
//! - [`SimDisk`]: a deterministic in-memory disk for the simulator.
//!   Appends are buffered until flushed — exactly the window a real OS
//!   page cache leaves open — and [`SimDisk::crash`] resolves that
//!   window with seeded [`HashNoise`]: unflushed bytes survive only as
//!   a torn prefix, and (optionally) bit rot flips a durable bit. The
//!   same seed always tears the same writes, so crash tests reproduce.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use sor_sensors::noise::HashNoise;

use crate::DurableError;

/// A flat namespace of durable byte blobs.
///
/// The contract mirrors the POSIX subset a WAL needs: appends are
/// buffered until [`Storage::flush`] (data loss window on crash),
/// while [`Storage::write_atomic`], [`Storage::truncate`] and
/// [`Storage::remove`] take effect durably and atomically.
pub trait Storage: std::fmt::Debug {
    /// Full contents of a blob, or `None` if it does not exist. Reads
    /// observe the writer's own unflushed appends.
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, DurableError>;

    /// Appends bytes (creating the blob if needed). Not durable until
    /// [`Storage::flush`].
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), DurableError>;

    /// Durability barrier: everything appended so far survives a crash.
    fn flush(&mut self, name: &str) -> Result<(), DurableError>;

    /// Atomically replaces a blob's contents (write + rename).
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), DurableError>;

    /// Durably cuts a blob to `len` bytes (no-op past the end).
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), DurableError>;

    /// Durably removes a blob (no-op if absent).
    fn remove(&mut self, name: &str) -> Result<(), DurableError>;
}

// ---------------------------------------------------------------------
// Real files.
// ---------------------------------------------------------------------

/// [`Storage`] over real files in one directory.
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    /// Open append handles, so repeated appends don't reopen the file.
    handles: BTreeMap<String, fs::File>,
}

impl FileStorage {
    /// Opens (creating if needed) a storage directory.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DurableError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir.display(), &e))?;
        Ok(FileStorage { dir, handles: BTreeMap::new() })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn handle(&mut self, name: &str) -> Result<&mut fs::File, DurableError> {
        if !self.handles.contains_key(name) {
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))
                .map_err(|e| io_err("open", &name, &e))?;
            self.handles.insert(name.to_string(), file);
        }
        Ok(self.handles.get_mut(name).expect("just inserted"))
    }
}

fn io_err(what: &str, name: &dyn std::fmt::Display, e: &dyn std::fmt::Display) -> DurableError {
    DurableError::Io(format!("{what} `{name}`: {e}"))
}

impl Storage for FileStorage {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, DurableError> {
        match fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &name, &e)),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        self.handle(name)?.write_all(bytes).map_err(|e| io_err("append", &name, &e))
    }

    fn flush(&mut self, name: &str) -> Result<(), DurableError> {
        if let Some(file) = self.handles.get_mut(name) {
            file.flush().map_err(|e| io_err("flush", &name, &e))?;
            file.sync_all().map_err(|e| io_err("fsync", &name, &e))?;
        }
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        self.handles.remove(name);
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", &name, &e))?;
            file.write_all(bytes).map_err(|e| io_err("write", &name, &e))?;
            file.sync_all().map_err(|e| io_err("fsync", &name, &e))?;
        }
        fs::rename(&tmp, self.path(name)).map_err(|e| io_err("rename", &name, &e))
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), DurableError> {
        self.handles.remove(name);
        match fs::OpenOptions::new().write(true).open(self.path(name)) {
            Ok(file) => {
                file.set_len(len).map_err(|e| io_err("truncate", &name, &e))?;
                file.sync_all().map_err(|e| io_err("fsync", &name, &e))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("open", &name, &e)),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), DurableError> {
        self.handles.remove(name);
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", &name, &e)),
        }
    }
}

// ---------------------------------------------------------------------
// Simulated disk.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct SimFile {
    /// Bytes that survive a crash.
    durable: Vec<u8>,
    /// Appended but unflushed bytes — at crash time only a noise-chosen
    /// prefix of these lands (a torn / partial write).
    pending: Vec<u8>,
}

#[derive(Debug)]
struct DiskInner {
    files: BTreeMap<String, SimFile>,
    noise: HashNoise,
    crashes: u64,
    /// Per-file probability, at each crash, of one durable bit
    /// flipping (media corruption, as opposed to the torn tail).
    bit_rot: f64,
}

/// Deterministic in-memory disk with crash-fault injection.
///
/// Cheap to clone; clones share the same state, so the simulator keeps
/// one handle while the server's durability layer owns another — after
/// [`SimDisk::crash`] the server is dropped and a fresh one recovers
/// from the same disk.
#[derive(Debug, Clone)]
pub struct SimDisk {
    inner: Arc<Mutex<DiskInner>>,
}

/// Stable per-file tag so fault decisions are pure in (seed, file, crash#).
fn name_tag(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SimDisk {
    /// A fresh empty disk whose fault decisions derive from `seed`.
    pub fn new(seed: u64) -> Self {
        SimDisk {
            inner: Arc::new(Mutex::new(DiskInner {
                files: BTreeMap::new(),
                noise: HashNoise::new(seed).fork(0x5d15c),
                crashes: 0,
                bit_rot: 0.0,
            })),
        }
    }

    /// Enables bit rot: at each crash, each file independently has this
    /// probability of one durable bit flipping.
    pub fn with_bit_rot(self, p: f64) -> Self {
        self.inner.lock().expect("simdisk poisoned").bit_rot = p;
        self
    }

    /// Simulates power loss. Unflushed appends survive only as a
    /// noise-chosen prefix (possibly empty, possibly whole — a torn
    /// write, a partial flush, or luck); flushed bytes always survive;
    /// with bit rot enabled a durable bit may flip. Deterministic in
    /// `(seed, crash index)`.
    pub fn crash(&self) {
        let mut inner = self.inner.lock().expect("simdisk poisoned");
        inner.crashes += 1;
        let k = inner.crashes as f64;
        let noise = inner.noise;
        let bit_rot = inner.bit_rot;
        for (name, file) in inner.files.iter_mut() {
            let tag = name_tag(name);
            if !file.pending.is_empty() {
                let u = noise.uniform(tag ^ 0x7ea2, k);
                let keep = ((u * (file.pending.len() + 1) as f64) as usize).min(file.pending.len());
                let kept: Vec<u8> = file.pending.drain(..).take(keep).collect();
                file.durable.extend_from_slice(&kept);
            }
            if bit_rot > 0.0 && !file.durable.is_empty() && noise.uniform(tag ^ 0xb117, k) < bit_rot
            {
                let pos = ((noise.uniform(tag ^ 0x905e, k) * file.durable.len() as f64) as usize)
                    .min(file.durable.len() - 1);
                let bit = (noise.uniform(tag ^ 0x0b17, k) * 8.0) as u32 % 8;
                file.durable[pos] ^= 1 << bit;
            }
        }
    }

    /// How many crashes this disk has absorbed.
    pub fn crashes(&self) -> u64 {
        self.inner.lock().expect("simdisk poisoned").crashes
    }

    /// Bytes of a blob that would survive a crash right now (flushed
    /// data only) — what invariant tests compare against.
    pub fn durable_len(&self, name: &str) -> usize {
        let inner = self.inner.lock().expect("simdisk poisoned");
        inner.files.get(name).map_or(0, |f| f.durable.len())
    }

    /// Unflushed bytes of a blob — the crash-loss window.
    pub fn pending_len(&self, name: &str) -> usize {
        let inner = self.inner.lock().expect("simdisk poisoned");
        inner.files.get(name).map_or(0, |f| f.pending.len())
    }
}

impl Storage for SimDisk {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, DurableError> {
        let inner = self.inner.lock().expect("simdisk poisoned");
        Ok(inner.files.get(name).map(|f| {
            let mut all = f.durable.clone();
            all.extend_from_slice(&f.pending);
            all
        }))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        let mut inner = self.inner.lock().expect("simdisk poisoned");
        inner.files.entry(name.to_string()).or_default().pending.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self, name: &str) -> Result<(), DurableError> {
        let mut inner = self.inner.lock().expect("simdisk poisoned");
        if let Some(file) = inner.files.get_mut(name) {
            let pending = std::mem::take(&mut file.pending);
            file.durable.extend_from_slice(&pending);
        }
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        let mut inner = self.inner.lock().expect("simdisk poisoned");
        let file = inner.files.entry(name.to_string()).or_default();
        file.durable = bytes.to_vec();
        file.pending.clear();
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), DurableError> {
        let mut inner = self.inner.lock().expect("simdisk poisoned");
        if let Some(file) = inner.files.get_mut(name) {
            let pending = std::mem::take(&mut file.pending);
            file.durable.extend_from_slice(&pending);
            file.durable.truncate(len as usize);
        }
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), DurableError> {
        let mut inner = self.inner.lock().expect("simdisk poisoned");
        inner.files.remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simdisk_flushed_bytes_survive_crashes() {
        let disk = SimDisk::new(7);
        let mut s: Box<dyn Storage> = Box::new(disk.clone());
        s.append("log", b"committed").unwrap();
        s.flush("log").unwrap();
        disk.crash();
        assert_eq!(s.read("log").unwrap().unwrap(), b"committed");
    }

    #[test]
    fn simdisk_crash_keeps_only_a_prefix_of_pending() {
        for seed in 0..64 {
            let disk = SimDisk::new(seed);
            let mut s: Box<dyn Storage> = Box::new(disk.clone());
            s.append("log", b"durable|").unwrap();
            s.flush("log").unwrap();
            s.append("log", b"pending-tail").unwrap();
            disk.crash();
            let after = s.read("log").unwrap().unwrap();
            assert!(after.starts_with(b"durable|"), "flushed prefix lost (seed {seed})");
            assert!(
                b"durable|pending-tail".starts_with(after.as_slice()),
                "crash invented bytes (seed {seed}): {after:?}"
            );
        }
    }

    #[test]
    fn simdisk_crash_outcomes_are_deterministic() {
        let run = |seed| {
            let disk = SimDisk::new(seed);
            let mut s: Box<dyn Storage> = Box::new(disk.clone());
            s.append("log", b"0123456789").unwrap();
            disk.crash();
            s.read("log").unwrap().unwrap()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn simdisk_tears_vary_with_seed() {
        // Across seeds the torn prefix length must actually vary —
        // otherwise the fault model degenerates to all-or-nothing.
        let lens: std::collections::BTreeSet<usize> = (0..32)
            .map(|seed| {
                let disk = SimDisk::new(seed);
                let mut s: Box<dyn Storage> = Box::new(disk.clone());
                s.append("log", &[0xAA; 64]).unwrap();
                disk.crash();
                s.read("log").unwrap().unwrap().len()
            })
            .collect();
        assert!(lens.len() > 3, "only saw torn lengths {lens:?}");
    }

    #[test]
    fn simdisk_bit_rot_flips_durable_bits() {
        let disk = SimDisk::new(5).with_bit_rot(1.0);
        let mut s: Box<dyn Storage> = Box::new(disk.clone());
        s.append("log", &[0u8; 32]).unwrap();
        s.flush("log").unwrap();
        disk.crash();
        let after = s.read("log").unwrap().unwrap();
        assert_eq!(after.len(), 32);
        assert!(after.iter().any(|&b| b != 0), "bit rot at p=1.0 must flip something");
    }

    #[test]
    fn simdisk_write_atomic_and_truncate_are_durable() {
        let disk = SimDisk::new(1);
        let mut s: Box<dyn Storage> = Box::new(disk.clone());
        s.write_atomic("ckpt", b"snapshot-v1").unwrap();
        s.append("log", b"abcdef").unwrap();
        s.flush("log").unwrap();
        s.truncate("log", 3).unwrap();
        disk.crash();
        assert_eq!(s.read("ckpt").unwrap().unwrap(), b"snapshot-v1");
        assert_eq!(s.read("log").unwrap().unwrap(), b"abc");
        s.remove("ckpt").unwrap();
        assert!(s.read("ckpt").unwrap().is_none());
    }

    #[test]
    fn file_storage_roundtrip() {
        // Keep test artifacts inside the workspace target dir.
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp/file_storage_roundtrip");
        let _ = fs::remove_dir_all(dir);
        let mut s = FileStorage::open(dir).unwrap();
        assert!(s.read("log").unwrap().is_none());
        s.append("log", b"one").unwrap();
        s.append("log", b"two").unwrap();
        s.flush("log").unwrap();
        assert_eq!(s.read("log").unwrap().unwrap(), b"onetwo");
        s.truncate("log", 4).unwrap();
        assert_eq!(s.read("log").unwrap().unwrap(), b"onet");
        s.write_atomic("ckpt", b"snap").unwrap();
        assert_eq!(s.read("ckpt").unwrap().unwrap(), b"snap");
        // Reopen: state persists across instances.
        let mut s2 = FileStorage::open(dir).unwrap();
        assert_eq!(s2.read("log").unwrap().unwrap(), b"onet");
        s2.remove("ckpt").unwrap();
        assert!(s2.read("ckpt").unwrap().is_none());
        let _ = fs::remove_dir_all(dir);
    }
}
