//! Log encoding and replay.
//!
//! The write-ahead log is a byte stream of CRC-framed
//! [`LogOp`](sor_store::LogOp) records ([`sor_proto::frame`]). One
//! commit appends one batch of frames; group commit concatenates
//! several batches into a single flush. Replay walks the stream,
//! applies every valid record, and reports how the stream ended — the
//! caller truncates anything past the valid prefix.

use sor_proto::frame::{encode_frame_into, FrameError, FrameScanner};
use sor_store::{Database, LogOp};

use crate::DurableError;

/// The checkpoint blob name.
pub const CHECKPOINT_FILE: &str = "checkpoint.sordb";

/// The log blob name for one checkpoint epoch. Each checkpoint starts
/// a fresh log; naming logs by epoch makes "checkpoint then retire the
/// log" crash-safe without multi-file atomicity (a crash between the
/// two steps leaves a stale log that recovery never reads).
pub fn wal_file(epoch: u64) -> String {
    format!("wal.{epoch:06}.sorlog")
}

/// How the scanned log ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// Every record intact.
    Clean,
    /// The log ends mid-record — the signature of a crash during an
    /// append. Expected; recovery truncates the tear.
    Torn,
    /// A structurally complete record failed its CRC or decoded to
    /// gibberish — media corruption rather than a crash.
    Corrupt,
}

impl std::fmt::Display for TailState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailState::Clean => write!(f, "clean"),
            TailState::Torn => write!(f, "torn"),
            TailState::Corrupt => write!(f, "corrupt"),
        }
    }
}

/// What [`replay_into`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Records applied.
    pub replayed: usize,
    /// Byte length of the valid prefix (what the log keeps).
    pub valid_len: usize,
    /// How the log ended.
    pub tail: TailState,
}

/// Serialises one commit's ops as a batch of framed records.
pub fn encode_batch(ops: &[LogOp]) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        encode_frame_into(&mut out, &op.encode());
    }
    out
}

/// Replays a log stream into a database, stopping at the first torn or
/// corrupt record. The database ends up at the committed prefix; the
/// outcome says where the prefix ends so the caller can truncate.
///
/// # Errors
///
/// [`DurableError::Store`] if a *valid* record does not apply — the log
/// was replayed against the wrong checkpoint, which is not survivable.
pub fn replay_into(db: &mut Database, log: &[u8]) -> Result<ReplayOutcome, DurableError> {
    let mut scanner = FrameScanner::new(log);
    let mut replayed = 0usize;
    let mut valid_len = 0usize;
    let tail = loop {
        let before = scanner.valid_len();
        match scanner.next_frame() {
            None => break TailState::Clean,
            Some(Ok(payload)) => match LogOp::decode(payload) {
                Ok(op) => {
                    db.apply_op(&op)?;
                    replayed += 1;
                    valid_len = scanner.valid_len();
                }
                Err(_) => {
                    // Frame CRC passed but the payload is not a log
                    // record: corruption the checksum happened to miss,
                    // or a foreign write. Stop before it.
                    valid_len = before;
                    break TailState::Corrupt;
                }
            },
            Some(Err(FrameError::Torn { .. })) => break TailState::Torn,
            Some(Err(FrameError::Corrupt { .. })) => break TailState::Corrupt,
        }
    };
    Ok(ReplayOutcome { replayed, valid_len, tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_store::{ChangeLog, ColumnType, Predicate, Schema, Value};

    fn scripted_ops() -> (Database, Vec<LogOp>) {
        let log = ChangeLog::enabled();
        let mut db = Database::new();
        db.set_changelog(log.clone());
        db.create_table(Schema::new("t").column("n", ColumnType::Int)).unwrap();
        db.create_index("t", "n").unwrap();
        for i in 0..20 {
            db.insert("t", vec![Value::Int(i)]).unwrap();
        }
        db.delete_where("t", &Predicate::eq("n", Value::Int(3))).unwrap();
        (db, log.drain())
    }

    #[test]
    fn clean_log_replays_to_identical_state() {
        let (db, ops) = scripted_ops();
        let log = encode_batch(&ops);
        let mut fresh = Database::new();
        let outcome = replay_into(&mut fresh, &log).unwrap();
        assert_eq!(outcome.tail, TailState::Clean);
        assert_eq!(outcome.replayed, ops.len());
        assert_eq!(outcome.valid_len, log.len());
        assert_eq!(fresh.snapshot(), db.snapshot());
    }

    #[test]
    fn every_truncation_point_yields_a_committed_prefix() {
        let (_, ops) = scripted_ops();
        let log = encode_batch(&ops);
        for cut in 0..log.len() {
            let mut db = Database::new();
            let outcome = replay_into(&mut db, &log[..cut]).unwrap();
            assert!(outcome.replayed <= ops.len());
            assert!(outcome.valid_len <= cut, "valid prefix can't exceed the input");
            if cut < log.len() {
                // A cut mid-stream is always a tear, never corruption.
                assert!(
                    outcome.tail == TailState::Torn || outcome.valid_len == cut,
                    "cut at {cut}: {outcome:?}"
                );
            }
            // The replayed ops are exactly the first `replayed` ops.
            let mut expect = Database::new();
            for op in &ops[..outcome.replayed] {
                expect.apply_op(op).unwrap();
            }
            assert_eq!(db.snapshot(), expect.snapshot(), "cut at {cut}");
        }
    }

    #[test]
    fn interior_bit_flip_stops_replay_as_corrupt() {
        let (_, ops) = scripted_ops();
        let mut log = encode_batch(&ops);
        let mid = log.len() / 2;
        log[mid] ^= 0x10;
        let mut db = Database::new();
        let outcome = replay_into(&mut db, &log).unwrap();
        assert_eq!(outcome.tail, TailState::Corrupt);
        assert!(outcome.replayed < ops.len());
    }

    #[test]
    fn wal_file_names_sort_by_epoch() {
        assert!(wal_file(2) < wal_file(10), "zero-padded names must sort numerically");
    }
}
