//! Flow-substrate benchmarks: min-cost flow vs Hungarian on assignment
//! instances of growing size.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sor_flow::assignment::{solve, Backend};

fn cost_matrix(n: usize) -> Vec<Vec<i64>> {
    let mut state = 0x0123_4567_89AB_CDEFu64;
    (0..n)
        .map(|_| {
            (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state % 1000) as i64
                })
                .collect()
        })
        .collect()
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow/assignment");
    for n in [5usize, 20, 50, 100] {
        let cost = cost_matrix(n);
        g.bench_with_input(BenchmarkId::new("mincost_flow", n), &cost, |b, cost| {
            b.iter(|| black_box(solve(cost, Backend::MinCostFlow).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("hungarian", n), &cost, |b, cost| {
            b.iter(|| black_box(solve(cost, Backend::Hungarian).unwrap()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_backends
}
criterion_main!(benches);
