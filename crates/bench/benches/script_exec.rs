//! Execution-engine throughput: one full phone-side dispatch (analyze +
//! execute) on the tree-walking interpreter vs the bytecode VM with a
//! cold and a warm compilation cache, plus a 64-phone fan-out of one
//! script — the fleet shape the [`sor_script::ScriptCache`] exists for.
//! `scripts/ci.sh` gates on `tree_walk / vm_warm >= 3x`, and
//! `scripts/bench.sh` records the `script_exec/*` figures into
//! `BENCH_pipeline.json`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use sor_script::analysis::{analyze, CapabilitySet};
use sor_script::{HostRegistry, Interpreter, Prepared, ScriptCache, Value, Vm};

/// The same representative sensing task as the interpreter bench: loops,
/// host acquisition calls, stdlib aggregation.
const SENSING_TASK: &str = r#"
    local samples = {}
    for i = 1, 10 do
        local batch = get_light_readings(5)
        insert(samples, mean(batch))
        sleep(1)
    end
    return stddev(samples)
"#;

fn fixed_host() -> HostRegistry {
    let mut host = HostRegistry::new();
    host.register("get_light_readings", |ctx, args| {
        let n = args.first().and_then(Value::as_number).unwrap_or(1.0) as usize;
        ctx.virtual_time += 0.1 * n as f64;
        Ok(Value::number_array(&(0..n).map(|i| 400.0 + (i as f64) * 3.5).collect::<Vec<_>>()))
    });
    host
}

fn caps() -> CapabilitySet {
    CapabilitySet::from_registry(&fixed_host())
}

/// One phone-side dispatch on the tree-walking path: re-verify with the
/// static analyzer (the phone does not trust the server), then parse
/// and execute the source.
fn dispatch_tree(caps: &CapabilitySet) -> Value {
    let verdict = analyze(SENSING_TASK, caps);
    assert!(!verdict.has_errors(), "bench task must pass analysis");
    let mut interp = Interpreter::with_host(fixed_host());
    interp.run(SENSING_TASK).expect("bench task runs")
}

/// One phone-side dispatch on the bytecode path: a cache lookup (which
/// analyzes and compiles on miss) and a VM run of the shared module.
fn dispatch_vm(caps: &CapabilitySet, cache: &ScriptCache) -> Value {
    let (prepared, _) = cache.get_or_prepare(SENSING_TASK, false, caps);
    let Prepared::Ready(p) = prepared else { panic!("bench task must compile") };
    let mut vm = Vm::with_host(fixed_host());
    vm.run_module(&p.module).expect("bench task runs")
}

fn bench_tree_walk(c: &mut Criterion) {
    let caps = caps();
    c.bench_function("script_exec/tree_walk", |b| b.iter(|| black_box(dispatch_tree(&caps))));
}

fn bench_vm_cold(c: &mut Criterion) {
    let caps = caps();
    c.bench_function("script_exec/vm_cold", |b| {
        b.iter(|| {
            // A fresh cache per dispatch: every run pays the full
            // analyze -> compile pipeline before executing.
            let cache = ScriptCache::new();
            black_box(dispatch_vm(&caps, &cache))
        })
    });
}

fn bench_vm_warm(c: &mut Criterion) {
    let caps = caps();
    let cache = ScriptCache::new();
    dispatch_vm(&caps, &cache); // warm the one entry
    c.bench_function("script_exec/vm_warm", |b| b.iter(|| black_box(dispatch_vm(&caps, &cache))));
}

fn bench_fanout(c: &mut Criterion) {
    let caps = caps();
    c.bench_function("script_exec/fanout64_tree", |b| {
        b.iter(|| {
            for _ in 0..64 {
                black_box(dispatch_tree(&caps));
            }
        })
    });
    c.bench_function("script_exec/fanout64_vm", |b| {
        b.iter(|| {
            // The server fans one script out to 64 phones sharing one
            // cache: the first dispatch compiles, the other 63 hit.
            let cache = ScriptCache::new();
            for _ in 0..64 {
                black_box(dispatch_vm(&caps, &cache));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_tree_walk, bench_vm_cold, bench_vm_warm, bench_fanout
}
criterion_main!(benches);
