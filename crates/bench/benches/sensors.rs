//! Sensor-stack benchmarks: environment sampling cost per sensor kind
//! and the buffered-provider fast path.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sor_sensors::environment::presets;
use sor_sensors::{BufferedProvider, Provider, SensorKind, SensorManager, SimulatedProvider};

fn bench_environment_sampling(c: &mut Criterion) {
    let shop = Arc::new(presets::starbucks(1));
    let trail = Arc::new(presets::cliff_trail(2));
    let mut g = c.benchmark_group("sensors/sample");
    for kind in [SensorKind::Temperature, SensorKind::Microphone, SensorKind::WifiRssi] {
        let shop = shop.clone();
        g.bench_with_input(BenchmarkId::new("shop", kind.name()), &kind, move |b, &k| {
            use sor_sensors::Environment;
            let mut t = 0.0;
            b.iter(|| {
                t += 1.0;
                black_box(shop.sample(k, t).unwrap())
            })
        });
    }
    for kind in [SensorKind::Gps, SensorKind::Accelerometer, SensorKind::Compass] {
        let trail = trail.clone();
        g.bench_with_input(BenchmarkId::new("trail", kind.name()), &kind, move |b, &k| {
            use sor_sensors::Environment;
            let mut t = 0.0;
            b.iter(|| {
                t += 1.0;
                black_box(trail.sample(k, t).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_manager_dispatch(c: &mut Criterion) {
    let env = Arc::new(presets::bn_cafe(3));
    let mut mgr = SensorManager::new();
    for kind in [SensorKind::Temperature, SensorKind::Light, SensorKind::Microphone] {
        mgr.register(SimulatedProvider::new(kind, env.clone()));
    }
    let mut t = 0.0;
    c.bench_function("sensors/manager_acquire_5", |b| {
        b.iter(|| {
            t += 1.0;
            black_box(mgr.acquire(SensorKind::Light, 5, t).unwrap())
        })
    });
}

fn bench_buffer_fast_path(c: &mut Criterion) {
    let env = Arc::new(presets::bn_cafe(4));
    let p = BufferedProvider::new(
        SimulatedProvider::new(SensorKind::Temperature, env),
        1e9, // never stale: pure cache-hit path
    );
    p.acquire(8, 0.0, 0.5).unwrap();
    c.bench_function("sensors/buffer_hit_8", |b| {
        b.iter(|| black_box(p.acquire(8, 0.0, 0.5).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_environment_sampling, bench_manager_dispatch, bench_buffer_fast_path
}
criterion_main!(benches);
