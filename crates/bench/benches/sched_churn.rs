//! The churn-replanning benchmark: what one arrival/departure costs.
//!
//! Drives the deterministic churn scenario at three grid scales under
//! both the full-replan (`exact`) and incremental CELF solvers, and
//! reports two figures per (solver, scale) point in the stub-criterion
//! line format `scripts/bench.sh` scrapes:
//!
//! - `sched_churn/{full,incr}/n=N` — wall nanoseconds per churn event;
//! - `sched_churn/{full,incr}_evals/n=N` — marginal-gain evaluations
//!   over the whole run (a deterministic work count smuggled through
//!   the same `~value ns/iter` line shape, not a time).
//!
//! The eval lines are what `scripts/ci.sh` guards: incremental
//! re-planning must do at most 10% of the full-replan evaluations at
//! `n=4096`. Work counts are exact and host-independent, so the guard
//! is safe on single-core CI hosts where wall time is noise.
//!
//! Hand-rolled `main` (no criterion harness): the eval counts come
//! from one run, and the big `exact` points are too slow for the stub
//! harness's fixed 20 iterations.

use std::time::Instant;

use sor_core::schedule::SolverKind;
use sor_sim::scenario::{run_churn_sim, ChurnConfig, ChurnOutcome};

fn report(label: &str, value: u128, note: &str) {
    println!("bench {label:<48} ~{value} ns/iter ({note})");
}

fn measure(n: usize, solver: SolverKind, tag: &str) -> ChurnOutcome {
    let cfg = ChurnConfig::at_scale(n, solver);
    let out = run_churn_sim(cfg); // warm-up; also the eval-count source
    let iters: u32 = if n >= 4096 { 2 } else { 10 };
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(run_churn_sim(cfg));
    }
    let per_event =
        start.elapsed().as_nanos() / u128::from(iters) / u128::from(out.stats.replans.max(1));
    report(&format!("sched_churn/{tag}/n={n}"), per_event, "wall ns per churn event");
    report(
        &format!("sched_churn/{tag}_evals/n={n}"),
        u128::from(out.stats.gain_evaluations),
        "gain evaluations per run, not time",
    );
    out
}

fn main() {
    for n in [64usize, 512, 4096] {
        let full = measure(n, SolverKind::Exact, "full");
        let incr = measure(n, SolverKind::Celf, "incr");
        assert_eq!(
            full.final_coverage.to_bits(),
            incr.final_coverage.to_bits(),
            "CELF diverged from exact at n={n}"
        );
    }
}
