//! Scheduling benchmarks: the compute cost behind Fig. 14, plus the
//! plain-vs-lazy greedy ablation and the interval baseline.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sor_core::coverage::GaussianCoverage;
use sor_core::schedule::{baseline, greedy, lazy_greedy, ScheduleProblem};
use sor_core::time::TimeGrid;
use sor_sim::scenario::{draw_participants, SchedulingConfig};

fn problem(users: usize, budget: usize) -> ScheduleProblem {
    let cfg = SchedulingConfig::paper(users, budget, 99);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = TimeGrid::new(0.0, cfg.period, cfg.instants).unwrap();
    ScheduleProblem::new(grid, GaussianCoverage::new(cfg.sigma), draw_participants(&cfg, &mut rng))
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule/solvers");
    g.sample_size(10);
    for users in [10usize, 25, 40] {
        let p = problem(users, 17);
        g.bench_with_input(BenchmarkId::new("greedy", users), &p, |b, p| {
            b.iter(|| black_box(greedy(p)))
        });
        g.bench_with_input(BenchmarkId::new("lazy_greedy", users), &p, |b, p| {
            b.iter(|| black_box(lazy_greedy(p)))
        });
        g.bench_with_input(BenchmarkId::new("baseline", users), &p, |b, p| {
            b.iter(|| black_box(baseline(p)))
        });
    }
    g.finish();
}

fn bench_budget_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule/budget");
    g.sample_size(10);
    for budget in [15usize, 20, 25] {
        let p = problem(40, budget);
        g.bench_with_input(BenchmarkId::new("lazy_greedy", budget), &p, |b, p| {
            b.iter(|| black_box(lazy_greedy(p)))
        });
    }
    g.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let p = problem(40, 17);
    let s = lazy_greedy(&p);
    c.bench_function("schedule/evaluate", |b| b.iter(|| black_box(p.evaluate(&s))));
    c.bench_function("schedule/coverage_profile", |b| b.iter(|| black_box(p.coverage_profile(&s))));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_solvers, bench_budget_scaling, bench_evaluation
}
criterion_main!(benches);
