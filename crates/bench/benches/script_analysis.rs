//! Static-analysis throughput: the full `analyze` pipeline (resolve,
//! CFG, dataflow fixpoints, cost bounding) and the optimizer lowering,
//! over a representative sensing task. `scripts/bench.sh` records the
//! `script_analysis/*` figures into `BENCH_pipeline.json` so analysis
//! cost at server admission stays visible across PRs.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use sor_script::analysis::{analyze, CapabilitySet};
use sor_script::optimize::optimize;
use sor_script::parser::parse;

/// A task exercising every pass: a derived loop bound for the interval
/// domain, helper calls for taint summaries, branches for liveness,
/// and foldable arithmetic for the optimizer.
const ANALYSIS_TASK: &str = r#"
    local function spread(xs)
        return max(xs) - min(xs)
    end
    local budget = 8
    local rounds = budget * 2
    local samples = {}
    local variability = 0
    for i = 1, rounds do
        local batch = get_light_readings(4 + 2)
        local noise = get_noise_readings(8)
        if spread(batch) > 100 then
            variability = variability + 1
        else
            variability = variability + 0
        end
        insert(samples, mean(batch))
        insert(samples, stddev(noise))
        sleep(1 * 1)
    end
    return mean(samples) + variability
"#;

fn bench_analyze(c: &mut Criterion) {
    let caps = CapabilitySet::standard_sensing();
    c.bench_function("script_analysis/analyze_full", |b| {
        b.iter(|| black_box(analyze(ANALYSIS_TASK, &caps)))
    });
}

fn bench_optimize(c: &mut Criterion) {
    let block = parse(ANALYSIS_TASK).expect("bench task parses");
    c.bench_function("script_analysis/optimize_lowering", |b| {
        b.iter(|| black_box(optimize(&block)))
    });
}

criterion_group!(benches, bench_analyze, bench_optimize);
criterion_main!(benches);
