//! Wire-protocol throughput: encode/decode of the message shapes that
//! dominate SOR traffic, supporting the paper's "minimize traffic load"
//! claim with byte counts in the bench names.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sor_proto::{Message, SensedRecord};

fn upload(records: usize, values: usize) -> Message {
    Message::SensedDataUpload {
        task_id: 42,
        records: (0..records)
            .map(|i| SensedRecord {
                timestamp: 1000.0 + i as f64,
                window: 3.0,
                sensor: (i % 8) as u16,
                values: (0..values).map(|v| v as f64 * 0.25 + 20.0).collect(),
            })
            .collect(),
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("proto/encode");
    for (records, values) in [(1usize, 5usize), (10, 10), (100, 40)] {
        let msg = upload(records, values);
        let size = msg.encode().len();
        g.bench_with_input(BenchmarkId::new(format!("upload_{size}B"), records), &msg, |b, msg| {
            b.iter(|| black_box(msg.encode()))
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("proto/decode");
    for (records, values) in [(1usize, 5usize), (10, 10), (100, 40)] {
        let frame = upload(records, values).encode();
        g.bench_with_input(
            BenchmarkId::new(format!("upload_{}B", frame.len()), records),
            &frame,
            |b, frame| b.iter(|| black_box(Message::decode(frame).unwrap())),
        );
    }
    g.finish();
}

fn bench_small_control_messages(c: &mut Criterion) {
    let msgs = [
        Message::WakeUp { token: 5 },
        Message::Ping { token: 5, uptime_ms: 123_456 },
        Message::TaskComplete { task_id: 9, status: 0 },
    ];
    c.bench_function("proto/control_roundtrip", |b| {
        b.iter(|| {
            for m in &msgs {
                black_box(Message::decode(&m.encode()).unwrap());
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_encode, bench_decode, bench_small_control_messages
}
criterion_main!(benches);
