//! Overhead guard for the durability layer: running the coffee-shop
//! field test on a durable server (write-ahead log on a simulated
//! disk, group commit of 1 — every ack flushed) must cost less than 5%
//! over the ephemeral server.
//!
//! Method: best-of-N wall time for each configuration. Each durable
//! iteration gets a fresh disk so no run pays for the previous run's
//! checkpoint or log replay.

use std::hint::black_box;
use std::time::Instant;

use sor_sim::scenario::{
    run_coffee_field_test, run_coffee_field_test_durable, DurableRun, FieldTestConfig,
};

const RUNS: usize = 5;

fn best_of<F: FnMut()>(mut f: F) -> f64 {
    (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let cfg = FieldTestConfig::quick(3);
    // Warm-up: fault in code paths for both configurations.
    black_box(run_coffee_field_test(cfg).unwrap());
    black_box(run_coffee_field_test_durable(cfg, DurableRun::crashes_at(&cfg, vec![])).unwrap());

    let ephemeral = best_of(|| {
        black_box(run_coffee_field_test(cfg).unwrap());
    });
    let durable = best_of(|| {
        let run = DurableRun::crashes_at(&cfg, vec![]);
        black_box(run_coffee_field_test_durable(cfg, run).unwrap());
    });

    let overhead = durable / ephemeral - 1.0;
    println!(
        "bench wal_overhead: ephemeral {:.1} ms, durable {:.1} ms → {:+.2}% overhead",
        ephemeral * 1e3,
        durable * 1e3,
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "write-ahead logging costs {:.2}% of the pipeline (limit 5%)",
        overhead * 100.0
    );
    println!("bench wal_overhead OK (< 5%)");
}
