//! Overhead guard for the observability layer: a *disabled* recorder
//! must cost the pipeline essentially nothing.
//!
//! Method: count every recorder operation one instrumented field test
//! performs (counter bumps, histogram observations, span starts/ends,
//! events), measure the per-operation cost of a disabled recorder in a
//! tight loop, and project the total against the measured untraced
//! pipeline time. The projection must stay under 2%.

use std::hint::black_box;
use std::time::Instant;

use sor_obs::Recorder;
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

fn main() {
    // 1. How many recorder operations does one run perform? Counter
    //    values over-count (some bumps add n > 1 in one call), which
    //    only makes the guard more conservative.
    let rec = Recorder::enabled();
    run_coffee_field_test_traced(FieldTestConfig::quick(3), rec.clone()).unwrap();
    let metrics = rec.metrics_snapshot().unwrap();
    let trace = rec.trace_snapshot().unwrap();
    let ops: u64 = metrics.counters().map(|(_, v)| v).sum::<u64>()
        + metrics.histograms().map(|(_, h)| h.count()).sum::<u64>()
        + metrics.gauges().count() as u64
        + trace.spans().len() as u64 * 3 // start + end + ~1 attr each
        + trace.events().len() as u64;

    // 2. Per-operation cost of a disabled recorder.
    const N: u64 = 1_000_000;
    let off = Recorder::default();
    let span = off.span_start("x", 0.0);
    let t0 = Instant::now();
    for i in 0..N {
        let r = black_box(&off);
        r.count(black_box("bench.counter"), 1);
        r.observe(black_box("bench.histogram"), i as f64);
        let s = r.span_start(black_box("bench.span"), 0.0);
        r.span_attr_with(s, "k", || unreachable!("disabled recorder must not format"));
        r.span_end(s, 1.0);
        black_box(span);
    }
    let per_op = t0.elapsed().as_secs_f64() / (N as f64 * 5.0);

    // 3. The untraced pipeline itself (best of a few runs).
    let pipeline = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            black_box(
                run_coffee_field_test_traced(FieldTestConfig::quick(3), Recorder::default())
                    .unwrap(),
            );
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    let projected = ops as f64 * per_op;
    let ratio = projected / pipeline;
    println!(
        "bench obs_overhead/disabled_recorder: {ops} ops × {:.1} ns = {:.1} µs projected \
         over a {:.1} ms pipeline → {:.3}%",
        per_op * 1e9,
        projected * 1e6,
        pipeline * 1e3,
        ratio * 100.0
    );
    assert!(
        ratio < 0.02,
        "disabled recorder projects to {:.2}% of the pipeline (limit 2%)",
        ratio * 100.0
    );
    println!("bench obs_overhead OK (< 2%)");
}
