//! Embedded-store benchmarks: insert throughput, indexed vs scanned
//! point lookups, snapshot costs — the Data Processor's hot paths.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sor_store::{ColumnType, Database, Predicate, Schema, Table, Value};

fn records_schema() -> Schema {
    Schema::new("records")
        .column("app_id", ColumnType::Int)
        .column("sensor", ColumnType::Int)
        .column("t", ColumnType::Float)
        .column("values", ColumnType::Bytes)
}

fn filled_table(rows: usize, indexed: bool) -> Table {
    let mut t = Table::new(records_schema());
    if indexed {
        t.create_index("app_id").unwrap();
    }
    for i in 0..rows {
        t.insert(vec![
            Value::Int((i % 10) as i64),
            Value::Int((i % 5) as i64),
            Value::Float(i as f64),
            Value::Bytes(vec![0u8; 64]),
        ])
        .unwrap();
    }
    t
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("store/insert_1k_rows", |b| b.iter(|| black_box(filled_table(1000, false))));
    c.bench_function("store/insert_1k_rows_indexed", |b| {
        b.iter(|| black_box(filled_table(1000, true)))
    });
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/point_lookup");
    for rows in [1_000usize, 10_000] {
        let plain = filled_table(rows, false);
        let indexed = filled_table(rows, true);
        let p = Predicate::eq("app_id", Value::Int(3));
        g.bench_with_input(BenchmarkId::new("scan", rows), &plain, |b, t| {
            b.iter(|| black_box(t.scan(&p).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("indexed", rows), &indexed, |b, t| {
            b.iter(|| black_box(t.scan(&p).unwrap()))
        });
    }
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut db = Database::new();
    db.create_table(records_schema()).unwrap();
    for i in 0..2_000 {
        db.insert(
            "records",
            vec![
                Value::Int(i % 10),
                Value::Int(i % 5),
                Value::Float(i as f64),
                Value::Bytes(vec![1u8; 64]),
            ],
        )
        .unwrap();
    }
    let bytes = db.snapshot();
    c.bench_function("store/snapshot_2k_rows", |b| b.iter(|| black_box(db.snapshot())));
    c.bench_function("store/restore_2k_rows", |b| {
        b.iter(|| black_box(Database::restore(&bytes).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_insert, bench_lookup, bench_snapshot
}
criterion_main!(benches);
