//! Batched-ranking scale benchmark: `rank_many` over 1/8/64 users on a
//! 32-place × 8-feature category, sequential vs the worker pool, plus
//! the warm [`sor_server::RankCache`] hit path against a cold rank.
//!
//! `scripts/ci.sh` parses this bench's output and enforces the PR's two
//! speedup guards: 64 users on 8 workers ≥ 1.5× over sequential, and a
//! warm cache hit ≥ 10× over a cold rank.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use sor_core::ranking::Preference;
use sor_core::UserPreferences;
use sor_server::processor::FEATURES_TABLE;
use sor_server::{ApplicationSpec, Extractor, FeatureSpec, SensingServer};
use sor_store::Value;

const N_PLACES: u64 = 32;
const N_FEATURES: usize = 8;

fn feature_specs() -> Vec<FeatureSpec> {
    (0..N_FEATURES)
        .map(|j| FeatureSpec::new(format!("f{j}"), "", Extractor::Mean { sensor: j as u16 }, 60.0))
        .collect()
}

/// A server with 32 registered places in one category and a fully
/// populated features table (values written directly — collection cost
/// is not what this bench measures).
fn populated_server() -> SensingServer {
    let mut s = SensingServer::new().unwrap();
    for app_id in 1..=N_PLACES {
        s.register_application(ApplicationSpec {
            app_id,
            name: format!("place {app_id}"),
            creator: "owner".into(),
            category: "coffee-shop".into(),
            latitude: 43.05,
            longitude: -76.15,
            radius_m: 150.0,
            script: "get_temperature_readings(1)".into(),
            period_seconds: 3600.0,
            instants: 360,
            features: feature_specs(),
        })
        .unwrap();
    }
    let db = s.durable_database().db_mut();
    for app_id in 1..=N_PLACES {
        for j in 0..N_FEATURES {
            // Deterministic spread so every profile induces a distinct order.
            let v = ((app_id as f64) * 1.7 + (j as f64) * 13.3) % 40.0 + 55.0;
            db.insert(
                FEATURES_TABLE,
                vec![Value::Int(app_id as i64), Value::text(format!("f{j}")), Value::Float(v)],
            )
            .unwrap();
        }
    }
    s
}

/// Monotone salt source shared by every bench in this binary: the
/// server (and so the rank cache) is shared too, and a reused salt
/// would turn an intended cold rank into a warm hit.
static SALT: AtomicU64 = AtomicU64::new(1);

fn fresh_salt() -> u64 {
    SALT.fetch_add(1, Ordering::Relaxed)
}

/// A preference profile parameterised by `salt` so every benchmark
/// iteration is a distinct cache key (cold path stays cold). The salt
/// lands in the f64 target at full resolution: distinct salt, distinct
/// fingerprint.
fn prefs(salt: u64) -> UserPreferences {
    let target = 55.0 + (salt as f64) * 1e-6;
    UserPreferences::new(
        "bench",
        (0..N_FEATURES).map(|j| Preference::value(target + j as f64, (j % 5 + 1) as u8)).collect(),
    )
}

fn bench_rank_many(c: &mut Criterion) {
    let server = populated_server();
    let mut g = c.benchmark_group("rank_scale");
    g.sample_size(10);
    for users in [1usize, 8, 64] {
        for (mode, threads) in [("seq", 1usize), ("par8", 8)] {
            g.bench_function(format!("{mode}/users={users}"), |b| {
                sor_par::set_threads(threads);
                b.iter(|| {
                    // Fresh profiles every iteration: every request
                    // misses the cache and is actually computed.
                    let salt = fresh_salt();
                    let profiles: Vec<UserPreferences> =
                        (0..users).map(|u| prefs(salt * 1000 + u as u64)).collect();
                    let requests: Vec<(&str, &UserPreferences)> =
                        profiles.iter().map(|p| ("coffee-shop", p)).collect();
                    black_box(server.rank_many(&requests))
                });
                sor_par::set_threads(0);
            });
        }
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let server = populated_server();
    let mut g = c.benchmark_group("rank_scale");
    g.bench_function("cold", |b| {
        b.iter(|| black_box(server.rank("coffee-shop", &prefs(fresh_salt() * 1000)).unwrap()))
    });
    let warm = prefs(0);
    server.rank("coffee-shop", &warm).unwrap();
    g.bench_function("cache_hit", |b| {
        b.iter(|| black_box(server.rank("coffee-shop", &warm).unwrap()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_rank_many, bench_cache
}
criterion_main!(benches);
