//! Metro-scale observability guard: the always-on sampled layer must
//! cost <2% of the field-test pipeline at 10× the quick user count.
//!
//! The "always-on layer" is what PR 7 adds so observability survives
//! metro scale: the tail sampler's whole-trace keep/drop pass, the
//! per-period window rolls, and the O(k) top-k offers. Each is measured
//! for real (tight loops over the actual artifacts of a traced 10× run)
//! and the summed cost is compared against the measured untraced
//! pipeline time at the same scale. The *disabled-recorder* cost of the
//! base tracer has its own guard (`obs_overhead`); this bench guards
//! the new bounded machinery.

use std::hint::black_box;
use std::time::Instant;

use sor_obs::sample::{sample_trace, SamplePolicy};
use sor_obs::{Recorder, SpaceSaving, WindowRing};
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

fn main() {
    let mut cfg = FieldTestConfig::quick(3);
    cfg.phones_per_place *= 10; // 10× users: 30 phones per place, 90 total

    // 1. The untraced pipeline at 10× (best of 3 — the denominator).
    let pipeline = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            black_box(run_coffee_field_test_traced(cfg, Recorder::default()).unwrap());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    // 2. One traced 10× run: the real artifacts the layer processes.
    let rec = Recorder::enabled();
    let out = run_coffee_field_test_traced(cfg, rec.clone()).unwrap();
    let trace = rec.trace_snapshot().unwrap();
    let metrics = rec.metrics_snapshot().unwrap();

    // 3a. Tail-sampler pass over the whole 10× trace, sampling on.
    let policy = SamplePolicy::representative(0.05, cfg.seed);
    let reps = 10u32;
    let t0 = Instant::now();
    let mut kept = 0;
    for _ in 0..reps {
        let (sampled, stats) = sample_trace(black_box(&trace), black_box(&policy));
        kept = stats.traces_kept;
        black_box(sampled);
    }
    let sampler_pass = t0.elapsed().as_secs_f64() / f64::from(reps);

    // 3b. Window rolls: cost of one roll on the run's real cumulative
    //     snapshot, times the rolls the run actually performed.
    let rolls = out.windows.as_ref().map_or(0, |w| w.len() as u64 + w.evicted()).max(1);
    let t0 = Instant::now();
    let mut ring = WindowRing::default();
    for i in 0..reps {
        ring.roll(f64::from(i), black_box(&metrics));
    }
    let per_roll = t0.elapsed().as_secs_f64() / f64::from(reps);

    // 3c. Top-k offers: uploads + dispatches (server sketches) and
    //     script runs (per-phone sketches), at the measured per-offer
    //     cost on a warm k=8 sketch with realistic churning keys.
    let offers = metrics.counter("pipeline.uploads_accepted")
        + metrics.counter("server.schedules_distributed")
        + metrics.counter("script.runs_started");
    let mut sketch = SpaceSaving::new(8);
    let keys: Vec<String> = (0..16).map(|i| format!("app{i}")).collect();
    let n = 100_000u64;
    let t0 = Instant::now();
    for i in 0..n {
        sketch.offer(black_box(&keys[(i % 16) as usize]), 1);
    }
    let per_offer = t0.elapsed().as_secs_f64() / n as f64;
    black_box(&sketch);

    let obs_cost = sampler_pass + rolls as f64 * per_roll + offers as f64 * per_offer;
    let ratio = obs_cost / pipeline;

    println!("bench obs_scale/pipeline_10x ~{:.0} ns/iter (untraced, best of 3)", pipeline * 1e9);
    println!(
        "bench obs_scale/sampled_layer ~{:.0} ns/iter (sampler {} spans -> {} trees kept, \
         {} rolls, {} offers)",
        obs_cost * 1e9,
        trace.spans().len(),
        kept,
        rolls,
        offers
    );
    println!(
        "obs_scale: sampler {:.1} µs + windows {:.1} µs + topk {:.1} µs = {:.1} µs \
         over a {:.1} ms pipeline -> {:.3}%",
        sampler_pass * 1e6,
        rolls as f64 * per_roll * 1e6,
        offers as f64 * per_offer * 1e6,
        obs_cost * 1e6,
        pipeline * 1e3,
        ratio * 100.0
    );
    assert!(
        ratio < 0.02,
        "always-on sampled observability costs {:.2}% of the 10x pipeline (limit 2%)",
        ratio * 100.0
    );
    println!("bench obs_scale OK (< 2%)");
}
