//! SenseScript interpreter throughput: parse cost, loop throughput, and
//! a representative sensing task with host-function calls.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use sor_script::{Interpreter, Value};

const SENSING_TASK: &str = r#"
    local samples = {}
    for i = 1, 10 do
        local batch = get_light_readings(5)
        insert(samples, mean(batch))
        sleep(1)
    end
    return stddev(samples)
"#;

fn interpreter_with_host() -> Interpreter {
    let mut interp = Interpreter::new();
    interp.host_mut().register("get_light_readings", |ctx, args| {
        let n = args.first().and_then(Value::as_number).unwrap_or(1.0) as usize;
        ctx.virtual_time += 0.1 * n as f64;
        Ok(Value::number_array(&(0..n).map(|i| 400.0 + (i as f64) * 3.5).collect::<Vec<_>>()))
    });
    interp
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("script/parse_sensing_task", |b| {
        b.iter(|| black_box(sor_script::parser::parse(SENSING_TASK).unwrap()))
    });
}

fn bench_run(c: &mut Criterion) {
    let mut interp = interpreter_with_host();
    c.bench_function("script/run_sensing_task", |b| {
        b.iter(|| black_box(interp.run(SENSING_TASK).unwrap()))
    });
}

fn bench_arithmetic_loop(c: &mut Criterion) {
    let src = "local s = 0\nfor i = 1, 10000 do s = s + i * 2 - 1 end\nreturn s";
    let mut interp = Interpreter::new();
    interp.set_budget(10_000_000);
    c.bench_function("script/arithmetic_10k_iters", |b| {
        b.iter(|| black_box(interp.run(src).unwrap()))
    });
}

fn bench_recursion(c: &mut Criterion) {
    let src = r#"
        local function fib(n)
            if n < 2 then return n end
            return fib(n - 1) + fib(n - 2)
        end
        return fib(15)
    "#;
    let mut interp = Interpreter::new();
    interp.set_budget(10_000_000);
    c.bench_function("script/fib15", |b| b.iter(|| black_box(interp.run(src).unwrap())));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_parse, bench_run, bench_arithmetic_loop, bench_recursion
}
criterion_main!(benches);
