//! End-to-end pipeline benchmark: a compact field test through the full
//! stack (phones → wire → server → features → ranking), the compute
//! budget behind one §V field experiment.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use sor_sim::scenario::{david, run_coffee_field_test, FieldTestConfig};

fn bench_field_test(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("quick_coffee_field_test", |b| {
        b.iter(|| black_box(run_coffee_field_test(FieldTestConfig::quick(3)).unwrap()))
    });
    g.finish();
}

fn bench_rank_after_collection(c: &mut Criterion) {
    let out = run_coffee_field_test(FieldTestConfig::quick(5)).unwrap();
    let prefs = david();
    // Identical repeated requests are warm rank-cache hits, so this is
    // the steady-state request cost; `rank_scale/cold` measures the
    // uncached compute.
    c.bench_function("pipeline/rank_category", |b| {
        b.iter(|| black_box(out.server.rank("coffee-shop", &prefs).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_field_test, bench_rank_after_collection
}
criterion_main!(benches);
