//! Ranking benchmarks: the aggregation cost behind Tables I/II, across
//! place counts and aggregation methods (the solver ablation of
//! DESIGN.md).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sor_core::ranking::{aggregate, AggregationMethod, Ranking};

/// Deterministic pseudo-random permutations without an RNG dependency.
fn permutation(n: usize, salt: u64) -> Ranking {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.swap(i, (state as usize) % (i + 1));
    }
    Ranking::from_order(order).unwrap()
}

fn rankings(n_places: usize, m_features: usize) -> (Vec<Ranking>, Vec<f64>) {
    let rankings: Vec<Ranking> =
        (0..m_features).map(|j| permutation(n_places, j as u64 + 1)).collect();
    let weights: Vec<f64> = (0..m_features).map(|j| (j % 5 + 1) as f64).collect();
    (rankings, weights)
}

fn bench_aggregation_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranking/methods");
    let (r, w) = rankings(8, 5);
    for (name, method) in [
        ("footrule_flow", AggregationMethod::FootruleFlow),
        ("footrule_hungarian", AggregationMethod::FootruleHungarian),
        ("kemeny_exact", AggregationMethod::KemenyExact),
        ("borda", AggregationMethod::Borda),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(aggregate(&r, &w, method).unwrap())));
    }
    g.finish();
}

fn bench_place_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranking/places");
    for n in [3usize, 10, 30, 100] {
        let (r, w) = rankings(n, 5);
        g.bench_with_input(BenchmarkId::new("footrule_flow", n), &n, |b, _| {
            b.iter(|| black_box(aggregate(&r, &w, AggregationMethod::FootruleFlow).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("footrule_hungarian", n), &n, |b, _| {
            b.iter(|| black_box(aggregate(&r, &w, AggregationMethod::FootruleHungarian).unwrap()))
        });
    }
    g.finish();
}

fn bench_feature_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranking/features");
    for m in [2usize, 8, 32] {
        let (r, w) = rankings(10, m);
        g.bench_with_input(BenchmarkId::new("footrule_flow", m), &m, |b, _| {
            b.iter(|| black_box(aggregate(&r, &w, AggregationMethod::FootruleFlow).unwrap()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = bench_aggregation_methods, bench_place_scaling, bench_feature_scaling
}
criterion_main!(benches);
