//! Shared helpers for the experiment binaries.

use sor_core::ranking::{FeatureId, FeatureMatrix, PlaceId};
use sor_server::viz::FeaturePanel;

/// Builds one Fig.-style panel per feature column of a matrix.
pub fn panels_of(matrix: &FeatureMatrix) -> Vec<FeaturePanel> {
    (0..matrix.n_features())
        .map(|j| {
            let bars: Vec<(String, f64)> = (0..matrix.n_places())
                .map(|i| {
                    (
                        matrix.place_name(PlaceId(i)).to_string(),
                        matrix.value(PlaceId(i), FeatureId(j)),
                    )
                })
                .collect();
            FeaturePanel::new(matrix.feature(FeatureId(j)).to_string(), bars)
        })
        .collect()
}

/// Prints a paper-style ranking table.
pub fn print_ranking_table(title: &str, rows: &[(String, Vec<String>)]) {
    println!("{title}");
    println!("  {:<8} {:<20} {:<20} {:<20}", "User", "No. 1", "No. 2", "No. 3");
    for (user, order) in rows {
        println!(
            "  {:<8} {:<20} {:<20} {:<20}",
            user,
            order.first().map(String::as_str).unwrap_or("-"),
            order.get(1).map(String::as_str).unwrap_or("-"),
            order.get(2).map(String::as_str).unwrap_or("-"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sor_core::ranking::Feature;

    #[test]
    fn panels_cover_all_features() {
        let m = FeatureMatrix::new(
            vec!["a".into(), "b".into()],
            vec![Feature::new("x", ""), Feature::new("y", "u")],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        )
        .unwrap();
        let panels = panels_of(&m);
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[1].bars[1], ("b".to_string(), 4.0));
    }
}
