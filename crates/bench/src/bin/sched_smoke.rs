//! CI smoke check for the scheduler solver knob: runs the traced
//! coffee-shop field test under whatever `SOR_SCHED_SOLVER` selects and
//! prints an outcome-level digest — final ranking, transport stats,
//! per-place energy. `scripts/ci.sh` runs it once with the exact greedy
//! and once with CELF and byte-compares the stdout (CELF is
//! bit-identical to plain greedy, so nothing user-visible may diverge),
//! then once with the stochastic solver, which may schedule differently
//! but must still pass the SLO health grade enforced here.
//!
//! The digest deliberately covers *outcomes only*, never `sched.*`
//! work metrics: solvers legitimately differ in heap pops and
//! marginal-gain evaluations — that is the point — but must agree on
//! what the fleet actually did.
//!
//! ```sh
//! SOR_SCHED_SOLVER=celf cargo run --release -p sor-bench --bin sched_smoke
//! ```

use sor_obs::Recorder;
use sor_sim::scenario::{emma, run_coffee_field_test_traced, FieldTestConfig};

fn check(cond: bool, what: &str) {
    if cond {
        println!("ok   {what}");
    } else {
        eprintln!("FAIL {what}");
        std::process::exit(1);
    }
}

fn main() {
    let rec = Recorder::enabled();
    let out = run_coffee_field_test_traced(FieldTestConfig::quick(3), rec.clone())
        .expect("field test runs");
    check(out.stats.uploads_accepted > 0, "field test accepted uploads");
    check(out.stats.decode_failures == 0, "no frames lost integrity");
    let health = out.health.as_ref().expect("traced run grades health");
    check(health.healthy(), "SLO health grade passes under this solver");

    let order = out.server.rank("coffee-shop", &emma()).expect("rank").app_order;
    println!("final ranking: {order:?}");
    println!(
        "stats: uploads={} rejections={} pages={}",
        out.stats.uploads_accepted, out.stats.server_rejections, out.stats.pages_sent
    );
    // FNV over the outcome-level payloads (app ids, energy spend).
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for id in &out.app_ids {
        id.to_le_bytes().into_iter().for_each(&mut eat);
    }
    for e in &out.energy_mj_per_place {
        e.to_bits().to_le_bytes().into_iter().for_each(&mut eat);
    }
    println!("outcome digest: {digest:016x}");
    println!("sched smoke OK");
}
