//! Regenerates **Fig. 10**: feature data for the three coffee shops —
//! (a) temperature, (b) brightness, (c) background noise, (d) WiFi.
//!
//! With `--report`, instruments the whole deployment and appends the
//! observability report (span tree, timeline, metrics) to stderr.
//! With `--health`, appends the SLO health grade and any alerts the
//! online health engine fired during the run (implies instrumentation).
//!
//! ```sh
//! cargo run --release -p sor-bench --bin fig10
//! cargo run --release -p sor-bench --bin fig10 -- --report
//! cargo run --release -p sor-bench --bin fig10 -- --health
//! ```

use sor_bench::panels_of;
use sor_obs::Recorder;
use sor_server::viz::to_csv;
use sor_sim::scenario::{run_coffee_field_test_traced, FieldTestConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let want_report = std::env::args().any(|a| a == "--report");
    let want_health = std::env::args().any(|a| a == "--health");
    let rec = if want_report || want_health { Recorder::enabled() } else { Recorder::default() };
    eprintln!("# Fig. 10 — coffee-shop feature data (3 shops × 12 phones × 3 h)");
    let out = run_coffee_field_test_traced(FieldTestConfig::coffee(), rec.clone())?;
    eprintln!(
        "# uploads accepted: {}, decode failures: {}",
        out.stats.uploads_accepted, out.stats.decode_failures
    );
    eprintln!(
        "# sensing energy per place (mJ): {:?}",
        out.energy_mj_per_place.iter().map(|e| e.round()).collect::<Vec<_>>()
    );
    let panels = panels_of(&out.matrix);
    for (tag, p) in ["(a)", "(b)", "(c)", "(d)"].iter().zip(&panels) {
        println!("Fig. 10{tag} {}", p.render(40));
    }
    println!("CSV:\n{}", to_csv(&panels));
    if want_report {
        if let Some(report) = rec.report() {
            eprintln!("{report}");
        }
    }
    if want_health {
        if let Some(health) = &out.health {
            eprintln!("{}", health.render());
        }
        for alert in &out.alerts {
            eprintln!("ALERT t={:.1}s {}: {}", alert.time, alert.slo, alert.detail);
        }
        if out.alerts.is_empty() {
            eprintln!("# no SLO alerts fired");
        }
    }
    Ok(())
}
