//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! - **A. Coverage σ sensitivity** — the per-feature kernel width of
//!   §III: slow features (large σ) saturate with few readings; fast
//!   features need many.
//! - **B. Lazy vs plain greedy** — identical schedules, very different
//!   wall time.
//! - **C. Aggregation quality** — footrule-flow and Borda vs the exact
//!   weighted Kemeny optimum on random instances (the paper's
//!   2-approximation in practice).
//! - **D. Online vs oracle scheduling** — the cost of not knowing
//!   future arrivals.
//! - **E. Provider buffers** — the §II-A energy-saving claim, in
//!   millijoules.
//! - **F. Fairness** — the budget matroid's stated purpose ("ensure
//!   fairness by preventing certain mobile users from being abused"),
//!   measured with Jain's index on per-user load.
//!
//! ```sh
//! cargo run --release -p sor-bench --bin ablation
//! ```

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sor_core::coverage::GaussianCoverage;
use sor_core::ranking::{aggregate, weighted_kemeny, AggregationMethod, Ranking};
use sor_core::schedule::online::OnlineScheduler;
use sor_core::schedule::{greedy_seeded_stats, lazy_greedy, lazy_greedy_stats, ScheduleProblem};
use sor_core::time::TimeGrid;
use sor_sensors::environment::presets;
use sor_sensors::{BufferedProvider, EnergyMeter, Provider, SensorKind, SimulatedProvider};
use sor_sim::scenario::{draw_participants, SchedulingConfig};

fn main() {
    sigma_sensitivity();
    lazy_vs_plain();
    aggregation_quality();
    online_vs_oracle();
    buffer_energy();
    fairness();
}

// -------------------------------------------------------------------
// A. σ sensitivity
// -------------------------------------------------------------------
fn sigma_sensitivity() {
    println!("A. coverage σ sensitivity (20 users, budget 17, N=1080):");
    let cfg = SchedulingConfig::paper(20, 17, 11);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let participants = draw_participants(&cfg, &mut rng);
    let grid = TimeGrid::new(0.0, cfg.period, cfg.instants).unwrap();
    for sigma in [2.0, 5.0, 10.0, 20.0, 60.0] {
        let problem =
            ScheduleProblem::new(grid, GaussianCoverage::new(sigma), participants.clone());
        let cov = problem.average_coverage(&lazy_greedy(&problem));
        println!("  σ = {sigma:>4.0} s  → average coverage {cov:.3}");
    }
    println!();
}

// -------------------------------------------------------------------
// B. lazy vs plain greedy
// -------------------------------------------------------------------
fn lazy_vs_plain() {
    println!("B. lazy vs plain greedy (identical output, different cost):");
    for users in [10usize, 25, 40] {
        let cfg = SchedulingConfig::paper(users, 17, 23);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let grid = TimeGrid::new(0.0, cfg.period, cfg.instants).unwrap();
        let problem = ScheduleProblem::new(
            grid,
            GaussianCoverage::new(cfg.sigma),
            draw_participants(&cfg, &mut rng),
        );
        let t0 = Instant::now();
        let (plain, plain_stats) = greedy_seeded_stats(&problem, &[]);
        let t_plain = t0.elapsed();
        let t0 = Instant::now();
        let (lazy, lazy_stats) = lazy_greedy_stats(&problem);
        let t_lazy = t0.elapsed();
        assert_eq!(plain, lazy, "ablation invariant: schedules must match");
        println!(
            "  users = {users:<3} plain {:>8.1?} ({:>8} evals)  lazy {:>8.1?} ({:>6} evals)  \
             speedup {:>4.1}×  evals cut {:>4.1}×",
            t_plain,
            plain_stats.gain_evaluations,
            t_lazy,
            lazy_stats.gain_evaluations,
            t_plain.as_secs_f64() / t_lazy.as_secs_f64().max(1e-9),
            plain_stats.gain_evaluations as f64 / lazy_stats.gain_evaluations.max(1) as f64
        );
    }
    println!();
}

// -------------------------------------------------------------------
// C. aggregation quality
// -------------------------------------------------------------------
fn random_ranking(n: usize, rng: &mut StdRng) -> Ranking {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    Ranking::from_order(order).unwrap()
}

fn aggregation_quality() {
    println!("C. aggregation quality vs exact weighted Kemeny (100 random instances, N=7, M=5):");
    let mut rng = StdRng::seed_from_u64(37);
    let mut ratios_foot = Vec::new();
    let mut ratios_kem = Vec::new();
    let mut ratios_borda = Vec::new();
    for _ in 0..100 {
        let rankings: Vec<Ranking> = (0..5).map(|_| random_ranking(7, &mut rng)).collect();
        let weights: Vec<f64> = (0..5).map(|_| rng.random_range(1..=5) as f64).collect();
        let exact = aggregate(&rankings, &weights, AggregationMethod::KemenyExact).unwrap();
        let foot = aggregate(&rankings, &weights, AggregationMethod::FootruleFlow).unwrap();
        let kem = aggregate(&rankings, &weights, AggregationMethod::FootruleKemenized).unwrap();
        let borda = aggregate(&rankings, &weights, AggregationMethod::Borda).unwrap();
        let opt = weighted_kemeny(&exact, &rankings, &weights).max(1e-9);
        ratios_foot.push(weighted_kemeny(&foot, &rankings, &weights) / opt);
        ratios_kem.push(weighted_kemeny(&kem, &rankings, &weights) / opt);
        ratios_borda.push(weighted_kemeny(&borda, &rankings, &weights) / opt);
    }
    let stats = |xs: &[f64]| {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (mean, max)
    };
    let (fm, fx) = stats(&ratios_foot);
    let (km, kx) = stats(&ratios_kem);
    let (bm, bx) = stats(&ratios_borda);
    println!("  footrule-flow    κ_K / optimal: mean {fm:.3}, worst {fx:.3} (bound: 2.0)");
    println!("  + kemenization   κ_K / optimal: mean {km:.3}, worst {kx:.3} (bound: 2.0)");
    println!("  borda            κ_K / optimal: mean {bm:.3}, worst {bx:.3} (no bound)");
    println!();
}

// -------------------------------------------------------------------
// D. online vs oracle
// -------------------------------------------------------------------
fn online_vs_oracle() {
    println!("D. online arrival-driven scheduling vs offline oracle (25 users, budget 17):");
    let cfg = SchedulingConfig::paper(25, 17, 51);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let grid = TimeGrid::new(0.0, cfg.period, cfg.instants).unwrap();
    let mut participants = draw_participants(&cfg, &mut rng);
    participants.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));

    // Oracle: sees everyone up front.
    let oracle_problem =
        ScheduleProblem::new(grid, GaussianCoverage::new(cfg.sigma), participants.clone());
    let oracle_cov = oracle_problem.average_coverage(&lazy_greedy(&oracle_problem));

    // Online: learns of each user at their arrival instant.
    let mut online = OnlineScheduler::new(grid, GaussianCoverage::new(cfg.sigma));
    for p in &participants {
        online.arrive(p.user, p.arrival, p.departure, p.budget);
    }
    online.advance_to(cfg.period);
    let online_cov = online.coverage() / grid.len() as f64;

    println!("  oracle  : {oracle_cov:.3}");
    println!("  online  : {online_cov:.3}");
    println!("  gap     : {:.1}%", 100.0 * (1.0 - online_cov / oracle_cov));
    println!();
}

// -------------------------------------------------------------------
// E. provider buffers
// -------------------------------------------------------------------
fn buffer_energy() {
    println!("E. provider buffers: energy for 30 task requests, 3 concurrent tasks per instant:");
    let env = Arc::new(presets::starbucks(1));
    for (label, freshness) in [("no buffer", 0.0f64), ("5 s buffer", 5.0)] {
        let meter = EnergyMeter::new();
        let provider = BufferedProvider::new(
            SimulatedProvider::new(SensorKind::WifiRssi, env.clone()).with_meter(meter.clone()),
            freshness.max(1e-9),
        );
        // Three tasks sampling at (almost) the same times — the sharing
        // scenario of §II-A.
        for round in 0..10 {
            let t = round as f64 * 60.0;
            for task in 0..3 {
                provider.acquire(5, t + task as f64 * 0.5, 0.5).unwrap();
            }
        }
        println!(
            "  {label:<12} real acquisitions {:>2}, served from buffer {:>2}, energy {:>7.1} mJ",
            provider.real_acquisitions(),
            provider.served_from_cache(),
            meter.total_mj()
        );
    }
}

// -------------------------------------------------------------------
// F. fairness
// -------------------------------------------------------------------
fn fairness() {
    use sor_core::schedule::{baseline, UserId};
    println!("\nF. fairness of per-user load (Jain's index; 1.0 = perfectly even):");
    for (users, budget) in [(20usize, 17usize), (40, 17), (40, 25)] {
        let cfg = SchedulingConfig::paper(users, budget, 77);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let grid = TimeGrid::new(0.0, cfg.period, cfg.instants).unwrap();
        let participants = draw_participants(&cfg, &mut rng);
        let ids: Vec<UserId> = participants.iter().map(|p| p.user).collect();
        let problem = ScheduleProblem::new(grid, GaussianCoverage::new(cfg.sigma), participants);
        let g = lazy_greedy(&problem);
        let b = baseline(&problem);
        println!(
            "  users={users:<3} budget={budget:<3} greedy {:.3} ({} readings)   baseline {:.3} ({} readings)",
            g.fairness_index(&ids),
            g.len(),
            b.fairness_index(&ids),
            b.len(),
        );
    }
}
