//! CI smoke check for the durability layer: crashes the coffee-shop
//! field test at evenly spaced instants, recovers from the simulated
//! disk each time, and validates the recovery invariants. Everything is
//! seeded, so the summary printed here is deterministic run to run.
//! Exits non-zero on any failure.
//!
//! ```sh
//! cargo run --release -p sor-bench --bin recovery_smoke
//! cargo run --release -p sor-bench --bin recovery_smoke -- --crashes 4 --seed 11
//! ```
//!
//! Flags: `--crashes <k>` server deaths, evenly spaced across the test
//! window (default 2); `--seed <s>` environment/disk seed (default 3).

use sor_sim::scenario::{
    emma, run_coffee_field_test, run_coffee_field_test_durable, DurableRun, FieldTestConfig,
};

fn check(cond: bool, what: &str) {
    if cond {
        println!("ok   {what}");
    } else {
        eprintln!("FAIL {what}");
        std::process::exit(1);
    }
}

fn flag(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs an integer value"));
        }
    }
    default
}

fn main() {
    let crashes = flag("--crashes", 2) as usize;
    let cfg = FieldTestConfig::quick(flag("--seed", 3));
    println!("recovery smoke: {crashes} crash(es), seed {}", cfg.seed);

    let crash_times: Vec<f64> =
        (1..=crashes).map(|i| i as f64 * cfg.duration / (crashes as f64 + 1.0)).collect();
    let crashed = run_coffee_field_test_durable(cfg, DurableRun::crashes_at(&cfg, crash_times))
        .expect("crashed field test recovers and completes");

    check(crashed.stats.server_crashes as usize == crashes, "every scheduled crash happened");
    check(crashed.recoveries.len() == crashes, "each crash produced a recovery report");
    for (i, summary) in crashed.recoveries.iter().enumerate() {
        check(summary.starts_with("recovery:"), "recovery summary is well-formed");
        println!("     crash {i}: {summary}");
    }
    check(crashed.stats.uploads_accepted > 0, "uploads survived across restarts");
    check(crashed.matrix.n_places() == 3, "all three shops still rank");

    let baseline = run_coffee_field_test(cfg).expect("crash-free field test runs");
    let prefs = emma();
    let crashed_order = crashed.server.rank("coffee-shop", &prefs).expect("rank").app_order;
    let baseline_order = baseline.server.rank("coffee-shop", &prefs).expect("rank").app_order;
    check(
        crashed_order == baseline_order,
        "ranking after crash/recover cycles matches the crash-free run",
    );
    // Deterministic summary line: scripts/ci.sh diffs it between its
    // SOR_THREADS=1 and SOR_THREADS=4 passes.
    println!("deterministic final ranking: {crashed_order:?}");
    println!("recovery smoke OK");
}
